//! `bmp-serve` — the hardened characterization service.
//!
//! Serves simulation jobs over HTTP/1.1 with admission control, request
//! coalescing, per-job deadlines, bounded retry, panic isolation and
//! graceful drain (see `docs/SERVING.md` and `bmp_bench::serve`).
//!
//! ```text
//! bmp-serve [--addr HOST:PORT] [--results DIR] [--queue-depth N]
//!           [--handlers N] [--deadline-ms N]
//! ```
//!
//! Environment: `BMP_OPS` / `BMP_SEED` set the default job scale,
//! `BMP_THREADS` the handler count, `BMP_ATTEMPTS` the retry budget,
//! `BMP_STORE` attaches the crash-safe persistent artifact store
//! (`BMP_STORE_MAX_BYTES` bounds it), and `BMP_FAULT` arms the fault
//! schedule (`torn-write`/`corrupt` kinds target the store's writes).
//!
//! The service drains on `POST /drain` or when stdin reaches EOF —
//! closing the pipe the supervisor holds is the portable shutdown
//! signal in this `#![forbid(unsafe_code)]` workspace (no raw signal
//! handlers). Draining stops admission (`/readyz` answers 503, new
//! connections get 503), completes queued and in-flight jobs, then
//! exits 0.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use bmp_bench::engine::Ctx;
use bmp_bench::serve::{ServeConfig, Server};
use bmp_bench::{FaultPlan, Scale};
use bmp_core::{DiskStore, StoreConfig};

const USAGE: &str = "\
bmp-serve — characterization-as-a-service for the mispredict workspace

usage:
  bmp-serve [--addr HOST:PORT] [--results DIR] [--queue-depth N]
            [--handlers N] [--deadline-ms N]

  --addr        bind address (default 127.0.0.1:7090; :0 = ephemeral)
  --results     results directory for /results and /report (default results)
  --queue-depth accepted-connection queue bound; beyond it: 429 (default 64)
  --handlers    worker threads (default: BMP_THREADS or the CPU count)
  --deadline-ms default per-job deadline (default 30000)

endpoints:
  GET  /healthz /readyz /metrics /experiments /results/<name> /report
  POST /jobs    {\"experiment\": NAME, \"ops\"?, \"seed\"?, \"deadline_ms\"?}
  POST /drain   stop admission, finish in-flight work, exit

shutdown: POST /drain, or close the process's stdin.
";

fn main() -> ExitCode {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7090".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--help" | "-h" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                "--addr" => cfg.addr = take("--addr")?,
                "--results" => cfg.results_dir = PathBuf::from(take("--results")?),
                "--queue-depth" => {
                    cfg.queue_depth = parse_num(&take("--queue-depth")?, "--queue-depth")?;
                }
                "--handlers" => cfg.handlers = parse_num(&take("--handlers")?, "--handlers")?,
                "--deadline-ms" => {
                    cfg.default_deadline_ms = parse_num(&take("--deadline-ms")?, "--deadline-ms")?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let faults = match FaultPlan::from_env() {
        Ok(plan) => Arc::new(plan),
        Err(e) => {
            eprintln!("error: bad BMP_FAULT spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !faults.is_empty() {
        eprintln!("fault injection active: {faults}");
    }

    let ctx = Arc::new(Ctx::new());
    attach_store(&ctx, &faults);

    let scale = Scale::from_env();
    let server = match Server::bind(cfg, Arc::clone(&ctx), scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Machine-readable first line: tests and supervisors parse the
    // actual address (the port is ephemeral under `--addr ...:0`).
    println!("listening on http://{addr}");
    eprintln!(
        "scale: {} ops, seed {} (BMP_OPS / BMP_SEED)",
        scale.ops, scale.seed
    );

    // Portable shutdown without signal handlers: when whoever spawned
    // us closes our stdin (or exits), drain and leave.
    let state = server.state();
    std::thread::spawn(move || {
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin().lock();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        eprintln!("stdin closed; draining");
        state.begin_drain();
    });

    server.run();
    eprintln!("drained; bye");
    ExitCode::SUCCESS
}

/// Parses one numeric flag value.
fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{what} needs a number, got {v:?}"))
}

/// `BMP_STORE=<dir>`: open the persistent artifact store (running its
/// recovery scan), arm the fault hook, and attach it under the cache.
/// Open failure degrades to in-memory-only service, never a dead start.
fn attach_store(ctx: &Arc<Ctx>, faults: &Arc<FaultPlan>) {
    let Ok(dir) = std::env::var("BMP_STORE") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let config = StoreConfig {
        max_bytes: std::env::var("BMP_STORE_MAX_BYTES")
            .ok()
            .and_then(|v| v.parse().ok()),
    };
    match DiskStore::open(Path::new(&dir), config) {
        Ok((store, recovery)) => {
            eprintln!(
                "store {dir}: {} valid record(s), {} quarantined, \
                 {} temp file(s) swept, {} live byte(s)",
                recovery.valid, recovery.quarantined, recovery.temps_removed, recovery.live_bytes
            );
            store.set_fault_hook(FaultPlan::store_hook(Arc::clone(faults)));
            ctx.set_store(Arc::new(store));
        }
        Err(e) => {
            eprintln!("warning: cannot open store {dir}: {e}; running without persistence");
        }
    }
}
