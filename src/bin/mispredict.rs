//! The `mispredict` command-line tool.
//!
//! ```text
//! mispredict list
//! mispredict run --profile twolf --ops 200000 --depth 20 --predictor gshare
//! mispredict gen --profile gcc --ops 1000000 --out gcc.bmpt
//! mispredict analyze --trace gcc.bmpt --window 128
//! ```

use std::process::ExitCode;

const USAGE: &str = "\
mispredict — interval-analysis characterization of the branch misprediction penalty

usage:
  mispredict list
      List the available workload profiles.
  mispredict run --profile NAME [--ops N] [--seed S] [--depth D] [--width W]
                 [--window W] [--predictor NAME] [--markdown] [--warmup N]
      Synthesize a workload, simulate it, and print the measured and
      modeled penalty with its five-contributor decomposition.
  mispredict gen --profile NAME --out FILE [--ops N] [--seed S]
      Synthesize a workload and save it as a binary trace.
  mispredict analyze --trace FILE [machine flags as for run]
      Analyze a previously saved trace.

predictors: bimodal, gshare, local, tournament, perceptron, tage,
            perfect, taken, not-taken
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cmd = match mispredict::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match mispredict::cli::execute(&cmd, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
