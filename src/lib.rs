//! `mispredict` — a reproduction of Eyerman, Smith & Eeckhout,
//! *"Characterizing the branch misprediction penalty"* (ISPASS 2006), as a
//! Rust workspace.
//!
//! This umbrella crate re-exports the workspace's public API under short
//! module names so applications need a single dependency:
//!
//! * [`uarch`] — machine configuration (widths, pipeline depth,
//!   functional units, caches, predictor);
//! * [`trace`] — dynamic instruction traces and dependence-graph
//!   utilities;
//! * [`branch`] — branch predictors, BTB, RAS;
//! * [`cache`] — cache and memory-hierarchy models;
//! * [`workloads`] — SPECint2000-like statistical workload synthesis and
//!   controlled microbenchmarks;
//! * [`sim`] — the cycle-level out-of-order superscalar simulator;
//! * [`core`] — interval analysis: the branch misprediction penalty
//!   model, its five-contributor decomposition, and the CPI stack.
//!
//! # Quickstart
//!
//! ```
//! use mispredict::core::PenaltyModel;
//! use mispredict::sim::Simulator;
//! use mispredict::uarch::presets;
//! use mispredict::workloads::spec;
//!
//! // Synthesize a twolf-like workload and measure it.
//! let trace = spec::by_name("twolf").unwrap().generate(20_000, 42);
//! let machine = presets::baseline_4wide();
//! let measured = Simulator::new(machine.clone()).run(&trace);
//!
//! // Model the same machine analytically.
//! let modeled = PenaltyModel::new(machine).analyze(&trace);
//!
//! // The paper's point: the penalty exceeds the frontend depth.
//! if let (Some(m), Some(a)) = (measured.mean_penalty(), modeled.mean_penalty()) {
//!     assert!(m > 5.0);
//!     assert!(a > 5.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use bmp_branch as branch;
pub use bmp_cache as cache;
pub use bmp_core as core;
pub use bmp_sim as sim;
pub use bmp_trace as trace;
pub use bmp_uarch as uarch;
pub use bmp_workloads as workloads;
