//! The `mispredict` command-line interface.
//!
//! A thin, dependency-free front end over the workspace:
//!
//! ```text
//! mispredict list
//! mispredict run --profile twolf --ops 200000 [--depth 20] [--predictor gshare] [--window 128]
//! mispredict gen --profile gcc --ops 1000000 --out gcc.bmpt
//! mispredict analyze --trace gcc.bmpt [--depth 20] ...
//! ```
//!
//! Parsing and execution are separated ([`parse`] / [`execute`]) and
//! `execute` writes to any `io::Write`, so the whole CLI is unit-testable
//! without spawning processes.

use std::io::Write;

use bmp_core::PenaltyModel;
use bmp_sim::Simulator;
use bmp_trace::Trace;
use bmp_uarch::{MachineConfig, PredictorConfig};
use bmp_workloads::{spec, WorkloadProfile};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// No subcommand or an unknown one.
    UnknownCommand(String),
    /// A flag was repeated, unknown, or missing its value.
    BadFlag(String),
    /// A flag value failed to parse.
    BadValue(&'static str, String),
    /// A required flag was missing.
    Missing(&'static str),
    /// The requested workload profile does not exist.
    UnknownProfile(String),
    /// The requested predictor name does not exist.
    UnknownPredictor(String),
    /// Building the machine configuration failed.
    Config(bmp_uarch::ConfigError),
    /// Reading or writing a trace file failed.
    TraceIo(bmp_trace::io::TraceIoError),
    /// Plain I/O failure (e.g. writing the report).
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?}; try list, run, gen, or analyze")
            }
            CliError::BadFlag(flag) => write!(f, "unknown or malformed flag {flag:?}"),
            CliError::BadValue(what, v) => write!(f, "cannot parse {what} from {v:?}"),
            CliError::Missing(what) => write!(f, "missing required flag --{what}"),
            CliError::UnknownProfile(p) => write!(
                f,
                "unknown profile {p:?}; run `mispredict list` for the available ones"
            ),
            CliError::UnknownPredictor(p) => write!(
                f,
                "unknown predictor {p:?}; expected one of bimodal, gshare, local, \
                 tournament, perceptron, tage, perfect, taken, not-taken"
            ),
            CliError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            CliError::TraceIo(e) => write!(f, "trace file error: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<bmp_uarch::ConfigError> for CliError {
    fn from(e: bmp_uarch::ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<bmp_trace::io::TraceIoError> for CliError {
    fn from(e: bmp_trace::io::TraceIoError) -> Self {
        CliError::TraceIo(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Machine-configuration overrides shared by `run` and `analyze`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineArgs {
    /// `--depth N`: frontend pipeline depth.
    pub depth: Option<u32>,
    /// `--predictor NAME`.
    pub predictor: Option<String>,
    /// `--window N`: issue-window size (ROB scales to 2×).
    pub window: Option<u32>,
    /// `--width N`: all pipeline widths.
    pub width: Option<u32>,
}

impl MachineArgs {
    /// Builds the machine from the baseline plus the overrides.
    pub fn build(&self) -> Result<MachineConfig, CliError> {
        let mut b = bmp_uarch::presets::baseline_4wide().to_builder();
        if let Some(d) = self.depth {
            b.frontend_depth(d);
        }
        if let Some(w) = self.window {
            b.window_size(w).rob_size(w * 2);
        }
        if let Some(w) = self.width {
            b.width(w);
        }
        if let Some(p) = &self.predictor {
            b.predictor(parse_predictor(p)?);
        }
        Ok(b.build()?)
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mispredict list`
    List,
    /// `mispredict run --profile P [--ops N] [--seed S] [--markdown]
    /// [machine flags]`
    Run {
        /// Workload profile name.
        profile: String,
        /// Trace length.
        ops: usize,
        /// Synthesis seed.
        seed: u64,
        /// Machine overrides.
        machine: MachineArgs,
        /// Emit the full markdown report instead of the plain summary.
        markdown: bool,
        /// Instructions of warmup before statistics count.
        warmup: u64,
    },
    /// `mispredict gen --profile P --out FILE [--ops N] [--seed S]`
    Gen {
        /// Workload profile name.
        profile: String,
        /// Trace length.
        ops: usize,
        /// Synthesis seed.
        seed: u64,
        /// Output path.
        out: String,
    },
    /// `mispredict analyze --trace FILE [--markdown] [machine flags]`
    Analyze {
        /// Input trace path.
        trace: String,
        /// Machine overrides.
        machine: MachineArgs,
        /// Emit the full markdown report instead of the plain summary.
        markdown: bool,
    },
}

fn parse_predictor(name: &str) -> Result<PredictorConfig, CliError> {
    Ok(match name {
        "bimodal" => PredictorConfig::Bimodal { entries: 4096 },
        "gshare" => PredictorConfig::GShare {
            entries: 4096,
            history_bits: 12,
        },
        "local" => PredictorConfig::Local {
            history_entries: 1024,
            history_bits: 10,
            pattern_entries: 1024,
        },
        "tournament" => PredictorConfig::Tournament {
            entries: 4096,
            history_bits: 12,
        },
        "perceptron" => PredictorConfig::Perceptron {
            entries: 512,
            history_bits: 24,
        },
        "tage" => PredictorConfig::Tage {
            base_entries: 4096,
            tagged_entries: 1024,
            tag_bits: 8,
            num_tables: 4,
            min_history: 4,
            max_history: 32,
        },
        "perfect" => PredictorConfig::Perfect,
        "taken" => PredictorConfig::AlwaysTaken,
        "not-taken" => PredictorConfig::AlwaysNotTaken,
        other => return Err(CliError::UnknownPredictor(other.to_owned())),
    })
}

struct Flags<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Flags<'a> {
    fn next_flag(&mut self) -> Option<&'a str> {
        let f = self.args.get(self.i)?;
        self.i += 1;
        Some(f)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        let v = self
            .args
            .get(self.i)
            .ok_or_else(|| CliError::BadFlag(flag.to_owned()))?;
        self.i += 1;
        Ok(v)
    }
}

fn parse_num<T: std::str::FromStr>(what: &'static str, v: &str) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| CliError::BadValue(what, v.to_owned()))
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first problem found.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::UnknownCommand(String::new()));
    };
    let mut flags = Flags { args, i: 1 };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "run" => {
            let mut profile = None;
            let mut ops = 200_000usize;
            let mut seed = 42u64;
            let mut machine = MachineArgs::default();
            let mut markdown = false;
            let mut warmup = 0u64;
            while let Some(f) = flags.next_flag() {
                match f {
                    "--profile" => profile = Some(flags.value(f)?.to_owned()),
                    "--ops" => ops = parse_num("ops", flags.value(f)?)?,
                    "--seed" => seed = parse_num("seed", flags.value(f)?)?,
                    "--warmup" => warmup = parse_num("warmup", flags.value(f)?)?,
                    "--markdown" => markdown = true,
                    _ => parse_machine_flag(f, &mut flags, &mut machine)?,
                }
            }
            Ok(Command::Run {
                profile: profile.ok_or(CliError::Missing("profile"))?,
                ops,
                seed,
                machine,
                markdown,
                warmup,
            })
        }
        "gen" => {
            let mut profile = None;
            let mut out = None;
            let mut ops = 200_000usize;
            let mut seed = 42u64;
            while let Some(f) = flags.next_flag() {
                match f {
                    "--profile" => profile = Some(flags.value(f)?.to_owned()),
                    "--out" => out = Some(flags.value(f)?.to_owned()),
                    "--ops" => ops = parse_num("ops", flags.value(f)?)?,
                    "--seed" => seed = parse_num("seed", flags.value(f)?)?,
                    other => return Err(CliError::BadFlag(other.to_owned())),
                }
            }
            Ok(Command::Gen {
                profile: profile.ok_or(CliError::Missing("profile"))?,
                ops,
                seed,
                out: out.ok_or(CliError::Missing("out"))?,
            })
        }
        "analyze" => {
            let mut trace = None;
            let mut machine = MachineArgs::default();
            let mut markdown = false;
            while let Some(f) = flags.next_flag() {
                match f {
                    "--trace" => trace = Some(flags.value(f)?.to_owned()),
                    "--markdown" => markdown = true,
                    _ => parse_machine_flag(f, &mut flags, &mut machine)?,
                }
            }
            Ok(Command::Analyze {
                trace: trace.ok_or(CliError::Missing("trace"))?,
                machine,
                markdown,
            })
        }
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

fn parse_machine_flag(
    flag: &str,
    flags: &mut Flags<'_>,
    machine: &mut MachineArgs,
) -> Result<(), CliError> {
    match flag {
        "--depth" => machine.depth = Some(parse_num("depth", flags.value(flag)?)?),
        "--window" => machine.window = Some(parse_num("window", flags.value(flag)?)?),
        "--width" => machine.width = Some(parse_num("width", flags.value(flag)?)?),
        "--predictor" => machine.predictor = Some(flags.value(flag)?.to_owned()),
        other => return Err(CliError::BadFlag(other.to_owned())),
    }
    Ok(())
}

fn lookup_profile(name: &str) -> Result<WorkloadProfile, CliError> {
    spec::by_name(name).ok_or_else(|| CliError::UnknownProfile(name.to_owned()))
}

/// Runs a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] on any failure; nothing is printed to stderr.
pub fn execute(cmd: &Command, out: &mut dyn Write) -> Result<(), CliError> {
    match cmd {
        Command::List => {
            writeln!(out, "available workload profiles:")?;
            for p in spec::all_profiles() {
                writeln!(
                    out,
                    "  {:<8}  code {:>4} KiB  block {:>4.1}  hot {:>3} KiB",
                    p.name,
                    p.branches.code_footprint / 1024,
                    p.branches.avg_block_size,
                    p.memory.hot_bytes / 1024,
                )?;
            }
            Ok(())
        }
        Command::Run {
            profile,
            ops,
            seed,
            machine,
            markdown,
            warmup,
        } => {
            let cfg = machine.build()?;
            let trace = lookup_profile(profile)?.generate(*ops, *seed);
            if *markdown {
                markdown_report(&trace, &cfg, profile, out)
            } else {
                report_with_warmup(&trace, &cfg, profile, *warmup, out)
            }
        }
        Command::Gen {
            profile,
            ops,
            seed,
            out: path,
        } => {
            let trace = lookup_profile(profile)?.generate(*ops, *seed);
            let file = std::fs::File::create(path)?;
            bmp_trace::io::write_trace(&trace, std::io::BufWriter::new(file))?;
            writeln!(out, "wrote {} instructions to {path}", trace.len())?;
            Ok(())
        }
        Command::Analyze {
            trace: path,
            machine,
            markdown,
        } => {
            let cfg = machine.build()?;
            let file = std::fs::File::open(path)?;
            let trace = bmp_trace::io::read_trace(std::io::BufReader::new(file))?;
            if *markdown {
                markdown_report(&trace, &cfg, path, out)
            } else {
                report(&trace, &cfg, path, out)
            }
        }
    }
}

/// The full markdown report: simulate, analyze, render via
/// `bmp_core::report`.
fn markdown_report(
    trace: &Trace,
    cfg: &MachineConfig,
    label: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let res = Simulator::new(cfg.clone()).run(trace);
    let analysis = PenaltyModel::new(cfg.clone()).analyze(trace);
    let stack = bmp_core::cpi::predict(trace, cfg);
    let measured = bmp_core::report::MeasuredSummary {
        cpi: res.cpi(),
        mean_penalty: res.mean_penalty(),
        mispredictions: res.mispredicts.len() as u64,
    };
    let md = bmp_core::report::render(
        label,
        &analysis,
        Some(&stack),
        Some(&measured),
        bmp_core::report::ReportOptions::default(),
    );
    out.write_all(md.as_bytes())?;
    Ok(())
}

/// The shared run/analyze report: simulation, model, decomposition.
fn report(
    trace: &Trace,
    cfg: &MachineConfig,
    label: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    report_with_warmup(trace, cfg, label, 0, out)
}

/// [`report`] with a warmup prefix excluded from the simulator's
/// statistics (the model's analysis remains whole-trace).
fn report_with_warmup(
    trace: &Trace,
    cfg: &MachineConfig,
    label: &str,
    warmup: u64,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let opts = bmp_sim::SimOptions {
        warmup_ops: warmup,
        ..bmp_sim::SimOptions::default()
    };
    let res = Simulator::with_options(cfg.clone(), opts).run(trace);
    let analysis = PenaltyModel::new(cfg.clone()).analyze(trace);

    writeln!(out, "workload   : {label} ({} instructions)", trace.len())?;
    writeln!(
        out,
        "machine    : {}-wide, depth {}, window {}, {}",
        cfg.dispatch_width, cfg.frontend_depth, cfg.window_size, cfg.predictor
    )?;
    writeln!(out)?;
    writeln!(out, "-- measured (cycle-level simulation) --")?;
    writeln!(out, "cycles               {:>12}", res.cycles)?;
    writeln!(out, "IPC                  {:>12.3}", res.ipc())?;
    writeln!(
        out,
        "branch miss rate     {:>11.2}%  ({} mispredictions)",
        res.branch_stats.miss_rate() * 100.0,
        res.branch_stats.mispredictions()
    )?;
    writeln!(
        out,
        "mean penalty         {:>12.1}  (frontend depth alone: {})",
        res.mean_penalty().unwrap_or(0.0),
        cfg.frontend_depth
    )?;
    let s = res.slots;
    writeln!(
        out,
        "dispatch slots       {:>11.1}% used ({:.1}% frontend, {:.1}% rob, {:.1}% window)",
        s.utilization() * 100.0,
        s.frontend_starved as f64 / s.total().max(1) as f64 * 100.0,
        s.rob_full as f64 / s.total().max(1) as f64 * 100.0,
        s.window_full as f64 / s.total().max(1) as f64 * 100.0,
    )?;
    writeln!(out)?;
    writeln!(out, "-- modeled (interval analysis) --")?;
    writeln!(
        out,
        "mean penalty         {:>12.1}",
        analysis.mean_penalty().unwrap_or(0.0)
    )?;
    if let Some((base, ilp, fu, dmiss)) = analysis.mean_contributions() {
        let n = analysis.breakdowns.len() as f64;
        let carry: f64 = analysis
            .breakdowns
            .iter()
            .map(|b| b.carryover as f64)
            .sum::<f64>()
            / n;
        writeln!(
            out,
            "  frontend (i)       {:>12.1}",
            f64::from(cfg.frontend_depth)
        )?;
        writeln!(out, "  base execution     {base:>12.1}")?;
        writeln!(out, "  inherent ILP (iii) {ilp:>12.1}")?;
        writeln!(out, "  FU latency (iv)    {fu:>12.1}")?;
        writeln!(out, "  short D-miss (v)   {dmiss:>12.1}")?;
        writeln!(out, "  window state (ii)  {carry:>12.1}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_list() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
    }

    #[test]
    fn parses_run_with_defaults_and_overrides() {
        let cmd = parse(&argv(
            "run --profile twolf --ops 1000 --seed 7 --depth 20 --predictor gshare --window 128",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                profile,
                ops,
                seed,
                machine,
                markdown,
                warmup,
            } => {
                assert!(!markdown);
                assert_eq!(warmup, 0);
                assert_eq!(profile, "twolf");
                assert_eq!(ops, 1000);
                assert_eq!(seed, 7);
                assert_eq!(machine.depth, Some(20));
                assert_eq!(machine.window, Some(128));
                assert_eq!(machine.predictor.as_deref(), Some("gshare"));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn run_requires_profile() {
        assert!(matches!(
            parse(&argv("run --ops 100")),
            Err(CliError::Missing("profile"))
        ));
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&argv("run --profile x --bogus 3")),
            Err(CliError::BadFlag(_))
        ));
        assert!(matches!(
            parse(&argv("run --profile x --ops notanumber")),
            Err(CliError::BadValue("ops", _))
        ));
    }

    #[test]
    fn machine_args_build() {
        let m = MachineArgs {
            depth: Some(12),
            predictor: Some("perceptron".into()),
            window: Some(128),
            width: Some(8),
        };
        let cfg = m.build().unwrap();
        assert_eq!(cfg.frontend_depth, 12);
        assert_eq!(cfg.window_size, 128);
        assert_eq!(cfg.rob_size, 256);
        assert_eq!(cfg.dispatch_width, 8);
        assert_eq!(cfg.predictor.name(), "perceptron");
    }

    #[test]
    fn tage_predictor_parses_to_the_generation_config() {
        let m = MachineArgs {
            predictor: Some("tage".into()),
            ..MachineArgs::default()
        };
        let cfg = m.build().unwrap();
        assert_eq!(cfg.predictor.name(), "tage");
        assert_eq!(
            cfg.predictor,
            bmp_uarch::presets::generation_predictor("tage").unwrap()
        );
    }

    #[test]
    fn bad_predictor_name_errors() {
        let m = MachineArgs {
            predictor: Some("psychic".into()),
            ..MachineArgs::default()
        };
        assert!(matches!(m.build(), Err(CliError::UnknownPredictor(_))));
    }

    #[test]
    fn list_executes() {
        let mut buf = Vec::new();
        execute(&Command::List, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("twolf"));
        assert!(s.contains("mcf"));
    }

    #[test]
    fn run_executes_end_to_end() {
        let cmd = parse(&argv("run --profile gzip --ops 5000 --seed 3")).unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("IPC"));
        assert!(s.contains("mean penalty"));
        assert!(s.contains("window state (ii)"));
    }

    #[test]
    fn gen_then_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("mispredict-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bmpt");
        let path_s = path.to_str().unwrap().to_owned();

        let gen = Command::Gen {
            profile: "gzip".into(),
            ops: 3_000,
            seed: 1,
            out: path_s.clone(),
        };
        let mut buf = Vec::new();
        execute(&gen, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("wrote 3000"));

        let analyze = Command::Analyze {
            trace: path_s,
            machine: MachineArgs::default(),
            markdown: false,
        };
        let mut buf = Vec::new();
        execute(&analyze, &mut buf).unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("3000 instructions"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_profile_reported() {
        let cmd = Command::Run {
            profile: "spectre".into(),
            ops: 10,
            seed: 1,
            machine: MachineArgs::default(),
            markdown: false,
            warmup: 0,
        };
        let mut buf = Vec::new();
        assert!(matches!(
            execute(&cmd, &mut buf),
            Err(CliError::UnknownProfile(_))
        ));
    }

    #[test]
    fn warmup_flag_parses_and_runs() {
        let cmd = parse(&argv("run --profile gzip --ops 6000 --warmup 2000")).unwrap();
        match &cmd {
            Command::Run { warmup, .. } => assert_eq!(*warmup, 2000),
            other => panic!("wrong command {other:?}"),
        }
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        // Post-warmup instruction count is reported.
        assert!(s.contains("IPC"));
    }

    #[test]
    fn markdown_flag_produces_report() {
        let cmd = parse(&argv("run --profile gzip --ops 4000 --seed 3 --markdown")).unwrap();
        let mut buf = Vec::new();
        execute(&cmd, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("# Misprediction-penalty report: gzip"));
        assert!(s.contains("## CPI stack"));
    }

    #[test]
    fn error_messages_are_helpful() {
        assert!(CliError::Missing("profile")
            .to_string()
            .contains("--profile"));
        assert!(CliError::UnknownPredictor("x".into())
            .to_string()
            .contains("tournament"));
    }
}
