//! Versioned binary codec for persisted simulation artifacts.
//!
//! The persistent store ([`bmp_core::store`]) moves opaque byte
//! payloads; this module defines what those bytes *are* for the one
//! artifact class worth persisting — [`SimResult`], the output of a
//! cycle-level simulation (~20 ms to recompute, dominated by everything
//! downstream of it). Analyses and traces are cheap to rebuild and stay
//! memory-only.
//!
//! The format is little-endian, length-prefixed and **strict**: decode
//! fails on a version mismatch, on truncation, and on trailing bytes.
//! Corruption *within* a record is the store's problem (FNV checksum);
//! the codec's failure mode is *skew* — a record written by an older
//! binary whose layout changed. A failed decode is treated exactly like
//! a store miss: the caller quarantines the record and recomputes, so a
//! version bump never serves garbage and never aborts a run.
//!
//! Layout (all integers LE):
//!
//! ```text
//! u32  codec version (CODEC_VERSION)
//! u64  cycles                u64 instructions
//! u64×2 branch stats         u64×2 ×3 + u64×4  hierarchy
//! u64  event count,    then per event:   u64 trace_idx, u64 cycle, u8 kind
//! u64  mispredict count, then per record: u64 branch_idx, u64×3 cycles, u32 occupancy
//! u64  interval count, then per record:  u8 kind, u64×5, u32×2, u64×4, i64
//! u8   timeline flag [+ u64 len + bytes]
//! u32  frontend_depth
//! u64×4 slots                u64×2 fetch
//! u64  rob_occupancy len + entries
//! (u64×2)×9 class_issue
//! ```

use bmp_branch::BranchStats;
use bmp_cache::{CacheStats, HierarchyStats};
use bmp_core::{IntervalEventKind, IntervalRecord};
use bmp_sim::{
    ClassIssueStats, FetchAccounting, MispredictRecord, MissEvent, MissEventKind, SimResult,
    SlotAccounting,
};
use std::fmt;

/// Version written by this build; readers reject every other value.
pub const CODEC_VERSION: u32 = 1;

/// Why a persisted artifact could not be decoded. Always means
/// "recompute", never "abort".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact decode failed: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Little-endian byte sink.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

/// Strict little-endian byte source with bounds checking.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CodecError::new(format!("truncated at {what}")))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    fn i64(&mut self, what: &str) -> Result<i64, CodecError> {
        Ok(self.u64(what)? as i64)
    }

    fn usize(&mut self, what: &str) -> Result<usize, CodecError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| CodecError::new(format!("{what} count overflows usize")))
    }

    /// A length prefix that is about to size a `Vec` allocation: bound
    /// it by what the remaining bytes could possibly hold, so a
    /// corrupted-but-checksum-colliding length can't OOM the process.
    fn len_prefix(&mut self, elem_min_bytes: usize, what: &str) -> Result<usize, CodecError> {
        let n = self.usize(what)?;
        let remaining = self.bytes.len() - self.at;
        if n.saturating_mul(elem_min_bytes) > remaining {
            return Err(CodecError::new(format!(
                "{what} count {n} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.at != self.bytes.len() {
            return Err(CodecError::new(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

fn cache_stats(w: &mut Writer, s: &CacheStats) {
    w.u64(s.accesses());
    w.u64(s.misses());
}

fn read_cache_stats(r: &mut Reader<'_>, what: &str) -> Result<CacheStats, CodecError> {
    let accesses = r.u64(what)?;
    let misses = r.u64(what)?;
    Ok(CacheStats::from_raw(accesses, misses))
}

fn miss_kind_tag(k: MissEventKind) -> u8 {
    match k {
        MissEventKind::BranchMispredict => 0,
        MissEventKind::ICacheMiss => 1,
        MissEventKind::ICacheLongMiss => 2,
        MissEventKind::LongDCacheMiss => 3,
    }
}

fn miss_kind_from_tag(tag: u8) -> Result<MissEventKind, CodecError> {
    match tag {
        0 => Ok(MissEventKind::BranchMispredict),
        1 => Ok(MissEventKind::ICacheMiss),
        2 => Ok(MissEventKind::ICacheLongMiss),
        3 => Ok(MissEventKind::LongDCacheMiss),
        other => Err(CodecError::new(format!("unknown miss-event kind {other}"))),
    }
}

fn interval_kind_tag(k: IntervalEventKind) -> u8 {
    match k {
        IntervalEventKind::BranchMispredict => 0,
        IntervalEventKind::ICacheMiss => 1,
        IntervalEventKind::ICacheLongMiss => 2,
        IntervalEventKind::LongDCacheMiss => 3,
    }
}

fn interval_kind_from_tag(tag: u8) -> Result<IntervalEventKind, CodecError> {
    match tag {
        0 => Ok(IntervalEventKind::BranchMispredict),
        1 => Ok(IntervalEventKind::ICacheMiss),
        2 => Ok(IntervalEventKind::ICacheLongMiss),
        3 => Ok(IntervalEventKind::LongDCacheMiss),
        other => Err(CodecError::new(format!("unknown interval kind {other}"))),
    }
}

/// Serializes a [`SimResult`] for the persistent store.
pub fn encode_sim_result(r: &SimResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(CODEC_VERSION);
    w.u64(r.cycles);
    w.u64(r.instructions);
    w.u64(r.branch_stats.predictions());
    w.u64(r.branch_stats.mispredictions());
    cache_stats(&mut w, &r.hierarchy.l1i);
    cache_stats(&mut w, &r.hierarchy.l1d);
    cache_stats(&mut w, &r.hierarchy.l2);
    w.u64(r.hierarchy.short_dmisses);
    w.u64(r.hierarchy.long_dmisses);
    w.u64(r.hierarchy.dprefetches);
    w.u64(r.hierarchy.iprefetches);
    w.usize(r.events.len());
    for e in &r.events {
        w.usize(e.trace_idx);
        w.u64(e.cycle);
        w.u8(miss_kind_tag(e.kind));
    }
    w.usize(r.mispredicts.len());
    for m in &r.mispredicts {
        w.usize(m.branch_idx);
        w.u64(m.fetch_cycle);
        w.u64(m.dispatch_cycle);
        w.u64(m.resolve_cycle);
        w.u32(m.window_occupancy);
    }
    w.usize(r.interval_records.len());
    for iv in &r.interval_records {
        w.u8(interval_kind_tag(iv.kind));
        w.u64(iv.start);
        w.u64(iv.pos);
        w.u64(iv.commit_cycle);
        w.u64(iv.resolution);
        w.u32(iv.refill);
        w.u32(iv.occupancy);
        w.u64(iv.base);
        w.u64(iv.ilp);
        w.u64(iv.fu_latency);
        w.u64(iv.short_dmiss);
        w.i64(iv.carryover);
    }
    match &r.dispatch_timeline {
        None => w.u8(0),
        Some(t) => {
            w.u8(1);
            w.usize(t.len());
            w.buf.extend_from_slice(t);
        }
    }
    w.u32(r.frontend_depth);
    w.u64(r.slots.used);
    w.u64(r.slots.frontend_starved);
    w.u64(r.slots.rob_full);
    w.u64(r.slots.window_full);
    w.u64(r.fetch.redirect_wait);
    w.u64(r.fetch.stall);
    w.usize(r.rob_occupancy.len());
    for &c in &r.rob_occupancy {
        w.u64(c);
    }
    for s in &r.class_issue {
        w.u64(s.issued);
        w.u64(s.wait_cycles);
    }
    w.buf
}

/// Deserializes a [`SimResult`] written by [`encode_sim_result`].
///
/// # Errors
///
/// [`CodecError`] on version mismatch, truncation, unknown enum tags or
/// trailing bytes — all of which the caller treats as a cache miss.
pub fn decode_sim_result(bytes: &[u8]) -> Result<SimResult, CodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u32("version")?;
    if version != CODEC_VERSION {
        return Err(CodecError::new(format!(
            "codec version {version} (this build reads {CODEC_VERSION})"
        )));
    }
    let cycles = r.u64("cycles")?;
    let instructions = r.u64("instructions")?;
    let predictions = r.u64("branch stats")?;
    let mispredictions = r.u64("branch stats")?;
    let branch_stats = BranchStats::from_raw(predictions, mispredictions);
    let hierarchy = HierarchyStats {
        l1i: read_cache_stats(&mut r, "l1i stats")?,
        l1d: read_cache_stats(&mut r, "l1d stats")?,
        l2: read_cache_stats(&mut r, "l2 stats")?,
        short_dmisses: r.u64("hierarchy")?,
        long_dmisses: r.u64("hierarchy")?,
        dprefetches: r.u64("hierarchy")?,
        iprefetches: r.u64("hierarchy")?,
    };
    let n_events = r.len_prefix(17, "events")?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        events.push(MissEvent {
            trace_idx: r.usize("event")?,
            cycle: r.u64("event")?,
            kind: miss_kind_from_tag(r.u8("event")?)?,
        });
    }
    let n_misp = r.len_prefix(36, "mispredicts")?;
    let mut mispredicts = Vec::with_capacity(n_misp);
    for _ in 0..n_misp {
        mispredicts.push(MispredictRecord {
            branch_idx: r.usize("mispredict")?,
            fetch_cycle: r.u64("mispredict")?,
            dispatch_cycle: r.u64("mispredict")?,
            resolve_cycle: r.u64("mispredict")?,
            window_occupancy: r.u32("mispredict")?,
        });
    }
    let n_intervals = r.len_prefix(65, "intervals")?;
    let mut interval_records = Vec::with_capacity(n_intervals);
    for _ in 0..n_intervals {
        interval_records.push(IntervalRecord {
            kind: interval_kind_from_tag(r.u8("interval")?)?,
            start: r.u64("interval")?,
            pos: r.u64("interval")?,
            commit_cycle: r.u64("interval")?,
            resolution: r.u64("interval")?,
            refill: r.u32("interval")?,
            occupancy: r.u32("interval")?,
            base: r.u64("interval")?,
            ilp: r.u64("interval")?,
            fu_latency: r.u64("interval")?,
            short_dmiss: r.u64("interval")?,
            carryover: r.i64("interval")?,
        });
    }
    let dispatch_timeline = match r.u8("timeline flag")? {
        0 => None,
        1 => {
            let n = r.len_prefix(1, "timeline")?;
            Some(r.take(n, "timeline")?.to_vec())
        }
        other => {
            return Err(CodecError::new(format!("bad timeline flag {other}")));
        }
    };
    let frontend_depth = r.u32("frontend depth")?;
    let slots = SlotAccounting {
        used: r.u64("slots")?,
        frontend_starved: r.u64("slots")?,
        rob_full: r.u64("slots")?,
        window_full: r.u64("slots")?,
    };
    let fetch = FetchAccounting {
        redirect_wait: r.u64("fetch")?,
        stall: r.u64("fetch")?,
    };
    let n_rob = r.len_prefix(8, "rob occupancy")?;
    let mut rob_occupancy = Vec::with_capacity(n_rob);
    for _ in 0..n_rob {
        rob_occupancy.push(r.u64("rob occupancy")?);
    }
    let mut class_issue = [ClassIssueStats::default(); 9];
    for s in &mut class_issue {
        s.issued = r.u64("class issue")?;
        s.wait_cycles = r.u64("class issue")?;
    }
    r.finish()?;
    Ok(SimResult {
        cycles,
        instructions,
        branch_stats,
        hierarchy,
        events,
        mispredicts,
        interval_records,
        dispatch_timeline,
        frontend_depth,
        slots,
        fetch,
        rob_occupancy,
        class_issue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A result exercising every field, including the optional ones.
    fn busy_result() -> SimResult {
        let mut branch_stats = BranchStats::new();
        branch_stats.record(true, false);
        branch_stats.record(true, true);
        let mut l1d = CacheStats::new();
        l1d.record(false);
        l1d.record(true);
        SimResult {
            cycles: 123_456,
            instructions: 200_000,
            branch_stats,
            hierarchy: HierarchyStats {
                l1i: CacheStats::from_raw(10, 2),
                l1d,
                l2: CacheStats::from_raw(5, 1),
                short_dmisses: 4,
                long_dmisses: 2,
                dprefetches: 7,
                iprefetches: 3,
            },
            events: vec![
                MissEvent {
                    trace_idx: 17,
                    cycle: 40,
                    kind: MissEventKind::BranchMispredict,
                },
                MissEvent {
                    trace_idx: 90,
                    cycle: 300,
                    kind: MissEventKind::LongDCacheMiss,
                },
            ],
            mispredicts: vec![MispredictRecord {
                branch_idx: 17,
                fetch_cycle: 30,
                dispatch_cycle: 35,
                resolve_cycle: 52,
                window_occupancy: 21,
            }],
            interval_records: vec![IntervalRecord {
                kind: IntervalEventKind::BranchMispredict,
                start: 0,
                pos: 17,
                commit_cycle: 60,
                resolution: 17,
                refill: 5,
                occupancy: 21,
                base: 3,
                ilp: 8,
                fu_latency: 4,
                short_dmiss: 2,
                carryover: -3,
            }],
            dispatch_timeline: Some(vec![0, 4, 4, 2, 0, 1]),
            frontend_depth: 5,
            slots: SlotAccounting {
                used: 1000,
                frontend_starved: 300,
                rob_full: 50,
                window_full: 10,
            },
            fetch: FetchAccounting {
                redirect_wait: 60,
                stall: 12,
            },
            rob_occupancy: vec![3, 1, 4, 1, 5],
            class_issue: {
                let mut c = [ClassIssueStats::default(); 9];
                c[0] = ClassIssueStats {
                    issued: 9,
                    wait_cycles: 27,
                };
                c[8] = ClassIssueStats {
                    issued: 1,
                    wait_cycles: 2,
                };
                c
            },
        }
    }

    /// The degenerate empty run.
    fn empty_result() -> SimResult {
        SimResult {
            cycles: 0,
            instructions: 0,
            branch_stats: BranchStats::default(),
            hierarchy: HierarchyStats::default(),
            events: vec![],
            mispredicts: vec![],
            interval_records: vec![],
            dispatch_timeline: None,
            frontend_depth: 5,
            slots: SlotAccounting::default(),
            fetch: FetchAccounting::default(),
            rob_occupancy: vec![],
            class_issue: [ClassIssueStats::default(); 9],
        }
    }

    #[test]
    fn round_trips_every_field() {
        for r in [busy_result(), empty_result()] {
            let bytes = encode_sim_result(&r);
            let back = decode_sim_result(&bytes).unwrap();
            assert_eq!(back, r);
            // Deterministic: same result, same bytes.
            assert_eq!(encode_sim_result(&back), bytes);
        }
    }

    #[test]
    fn rejects_version_skew() {
        let mut bytes = encode_sim_result(&empty_result());
        bytes[0] = 99;
        let err = decode_sim_result(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode_sim_result(&busy_result());
        for cut in 0..bytes.len() {
            assert!(
                decode_sim_result(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode_sim_result(&busy_result());
        bytes.push(0);
        let err = decode_sim_result(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_unknown_enum_tags() {
        let r = busy_result();
        let bytes = encode_sim_result(&r);
        // The fixed header is the u32 version plus 14 u64 counters
        // (cycles, instructions, 2 branch, 3×2 cache, 4 hierarchy);
        // the first event's kind tag sits after that block + the event
        // count + trace_idx + cycle.
        let kind_at = 4 + 8 * 14 + 8 + 8 + 8;
        let mut bad = bytes.clone();
        bad[kind_at] = 200;
        assert!(decode_sim_result(&bad).is_err());
    }

    #[test]
    fn hostile_length_prefix_cannot_oom() {
        // A record claiming u64::MAX events must fail fast on the
        // length sanity bound, not try to allocate.
        let mut bytes = encode_sim_result(&empty_result());
        let events_len_at = 4 + 8 * 14;
        bytes[events_len_at..events_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_sim_result(&bytes).is_err());
    }
}
