//! Minimal HTTP/1.1 plumbing for `bmp-serve`.
//!
//! Hand-rolled on `std::net::TcpStream` — the workspace carries no
//! registry dependencies, and the service needs exactly one shape of
//! conversation: read one request (line + headers + optional
//! `Content-Length` body), write one response, close. Every limit is
//! explicit so a hostile or broken client cannot make the server
//! allocate unboundedly or block forever (the caller sets socket
//! timeouts; this module enforces the byte budgets).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body (job submissions are small JSON).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read, with the status the peer should see.
#[derive(Debug)]
pub struct BadRequest {
    /// HTTP status to answer with (400, 408, 413 …).
    pub status: u16,
    /// Human-readable reason, sent in the body.
    pub reason: String,
}

impl BadRequest {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        Self {
            status,
            reason: reason.into(),
        }
    }
}

/// Reads one request from the stream, enforcing the byte budgets.
/// Socket-level timeouts are the caller's job (`set_read_timeout`); a
/// timeout surfaces as a 408.
///
/// # Errors
///
/// [`BadRequest`] carrying the status to respond with: 400 for
/// malformed syntax, 408 for a read timeout, 413 for an oversized head
/// or body.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, BadRequest> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut head_bytes = 0usize;

    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                BadRequest::new(408, "request read timed out")
            } else {
                BadRequest::new(400, format!("read error: {e}"))
            }
        })?;
        if n == 0 {
            return Err(BadRequest::new(400, "connection closed mid-request"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(BadRequest::new(413, "request head too large"));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }

    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| BadRequest::new(400, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| BadRequest::new(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| BadRequest::new(400, "missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for h in lines {
        let Some((name, value)) = h.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| BadRequest::new(400, "bad content-length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(BadRequest::new(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                BadRequest::new(408, "body read timed out")
            } else {
                BadRequest::new(400, format!("short body: {e}"))
            }
        })?;
    }
    Ok(Request { method, path, body })
}

/// One response, ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A `text/csv` response.
    pub fn csv(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/csv; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// Serializes and writes the response; errors are returned so the
    /// handler can count them, but a failed write needs no recovery —
    /// the connection is closed either way.
    ///
    /// # Errors
    ///
    /// The underlying socket write error.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips one raw request through a real socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, BadRequest> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_get_and_post() {
        let r = parse_raw(b"GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());

        let r = parse_raw(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 7\r\nContent-Type: application/json\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse_raw(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_raw(b"\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_raw(b"GET\r\n\r\n").unwrap_err().status,
            400,
            "a request line without a target is malformed"
        );
    }

    #[test]
    fn response_serializes_with_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::text(429, "busy\n")
            .write_to(&mut server_side)
            .unwrap();
        drop(server_side);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert!(
            got.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{got}"
        );
        assert!(got.contains("Content-Length: 5\r\n"));
        assert!(got.ends_with("busy\n"));
    }
}
