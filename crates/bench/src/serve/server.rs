//! The `bmp-serve` server: admission control, job coalescing, deadlines,
//! retries, panic isolation and graceful drain around the shared [`Ctx`].

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::engine::{experiment_defs, experiment_fingerprint, Ctx, ExperimentDef};
use crate::error::CellError;
use crate::{report, Scale};
use bmp_core::json::{self, ObjectExt};

use super::http::{read_request, Request, Response};

/// Tunables for one server instance. Every knob has a service-shaped
/// default; tests shrink the queue and deadlines to force the edges.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Handler threads — the compute concurrency bound.
    pub handlers: usize,
    /// Accepted-connection queue depth; a full queue answers 429
    /// immediately (admission control, never unbounded buffering).
    pub queue_depth: usize,
    /// Default per-job deadline when a submission names none.
    pub default_deadline_ms: u64,
    /// Attempts per job (1 = no retry) for transient failures.
    pub attempts: u32,
    /// Directory the run's CSVs/metrics live in (`/results/<name>` and
    /// `/report` read it).
    pub results_dir: PathBuf,
    /// Per-socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            handlers: crate::engine::threads_from_env().max(2),
            queue_depth: 64,
            default_deadline_ms: 30_000,
            attempts: crate::engine::attempts_from_env(),
            results_dir: PathBuf::from("results"),
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotonic service counters, exported verbatim by `/metrics`.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Requests fully read and dispatched.
    pub requests: AtomicU64,
    /// Jobs that returned a table (200).
    pub jobs_completed: AtomicU64,
    /// Jobs whose every attempt failed (500).
    pub jobs_failed: AtomicU64,
    /// Connections rejected by admission control (429).
    pub rejected_busy: AtomicU64,
    /// Connections rejected while draining (503).
    pub rejected_draining: AtomicU64,
    /// Jobs (or waits on a coalesced job) past their deadline (504).
    pub deadline_expired: AtomicU64,
    /// Job submissions that attached to an in-flight identical job.
    pub coalesced: AtomicU64,
    /// Retry attempts consumed beyond each job's first attempt.
    pub retries: AtomicU64,
    /// Requests answered 500 after a handler panic was isolated.
    pub panics: AtomicU64,
    /// Malformed requests (400/408/413).
    pub bad_requests: AtomicU64,
}

/// What a finished job leaves for coalesced waiters: the CSV, or the
/// rendered error of the final attempt.
type JobResult = Result<Arc<String>, String>;

/// Rendezvous for one in-flight job fingerprint.
struct JobSlot {
    done: Mutex<Option<JobResult>>,
    cv: Condvar,
}

impl JobSlot {
    fn new() -> Self {
        Self {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, result: JobResult) {
        *self.done.lock().expect("job slot poisoned") = Some(result);
        self.cv.notify_all();
    }

    /// Waits until the job settles or `deadline` passes.
    fn wait_until(&self, deadline: Instant) -> Option<JobResult> {
        let mut done = self.done.lock().expect("job slot poisoned");
        loop {
            if let Some(r) = done.as_ref() {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(done, deadline - now)
                .expect("job slot poisoned");
            done = guard;
        }
    }
}

/// An accepted connection waiting for a handler.
struct Conn {
    stream: TcpStream,
    arrived: Instant,
}

/// Shared server state; the handle `/drain` and the stdin watcher use.
pub struct ServerState {
    cfg: ServeConfig,
    ctx: Arc<Ctx>,
    scale: Scale,
    defs: Vec<ExperimentDef>,
    draining: AtomicBool,
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
    jobs: Mutex<HashMap<u64, Arc<JobSlot>>>,
    /// Counters for `/metrics`.
    pub counters: ServeCounters,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("cfg", &self.cfg)
            .field("draining", &self.draining)
            .finish()
    }
}

impl ServerState {
    /// Flips the server into draining mode: `/readyz` turns 503, new
    /// connections are refused, queued and in-flight jobs complete, and
    /// [`Server::run`] returns once the queue is empty. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Whether a drain was requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The `/metrics` text exposition: service counters plus the
    /// artifact-cache and persistent-store accounting.
    pub fn metrics_text(&self) -> String {
        let c = &self.counters;
        let cache = self.ctx.cache_stats();
        let mut out = String::new();
        for (name, v) in [
            ("requests_total", c.requests.load(Ordering::Relaxed)),
            (
                "jobs_completed_total",
                c.jobs_completed.load(Ordering::Relaxed),
            ),
            ("jobs_failed_total", c.jobs_failed.load(Ordering::Relaxed)),
            (
                "rejected_busy_total",
                c.rejected_busy.load(Ordering::Relaxed),
            ),
            (
                "rejected_draining_total",
                c.rejected_draining.load(Ordering::Relaxed),
            ),
            (
                "deadline_expired_total",
                c.deadline_expired.load(Ordering::Relaxed),
            ),
            ("coalesced_total", c.coalesced.load(Ordering::Relaxed)),
            ("retries_total", c.retries.load(Ordering::Relaxed)),
            ("panics_total", c.panics.load(Ordering::Relaxed)),
            ("bad_requests_total", c.bad_requests.load(Ordering::Relaxed)),
            ("cache_sim_hits", cache.sim_hits),
            ("cache_sim_misses", cache.sim_misses),
            ("store_sim_hits", self.ctx.store_hits()),
        ] {
            out.push_str(&format!("bmp_serve_{name} {v}\n"));
        }
        if let Some(store) = self.ctx.store() {
            let s = store.stats();
            out.push_str(&format!("bmp_store_gets {}\n", s.gets()));
            out.push_str(&format!("bmp_store_hits {}\n", s.hits()));
            out.push_str(&format!("bmp_store_puts {}\n", s.puts()));
            out.push_str(&format!("bmp_store_quarantined {}\n", s.quarantined()));
            out.push_str(&format!("bmp_store_evicted {}\n", s.evicted()));
            out.push_str(&format!("bmp_store_live_bytes {}\n", store.live_bytes()));
        }
        out
    }
}

/// A parsed `POST /jobs` submission.
struct JobSpec {
    name: String,
    scale: Scale,
    deadline: Duration,
}

/// The `bmp-serve` server. Bind, then [`run`](Self::run); the returned
/// [`ServerState`] handle drains it from another thread.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and assembles the shared state. The scale
    /// (`ops`/`seed`) is the server-wide default for jobs that name
    /// none — identical fingerprints coalesce regardless of origin.
    ///
    /// # Errors
    ///
    /// The bind error.
    pub fn bind(cfg: ServeConfig, ctx: Arc<Ctx>, scale: Scale) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Non-blocking accept so the acceptor can observe a drain
        // request promptly without a wake-up connection.
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            cfg,
            ctx,
            scale,
            defs: experiment_defs(),
            draining: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            counters: ServeCounters::default(),
        });
        Ok(Self { listener, state })
    }

    /// The bound address (the ephemeral port when `addr` ended in `:0`).
    ///
    /// # Errors
    ///
    /// The underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state handle, for `begin_drain` from other threads.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until drained: accepts with admission control on the
    /// calling thread, handles requests on `cfg.handlers` worker
    /// threads, and returns once a drain was requested *and* every
    /// queued and in-flight request has completed — the graceful-drain
    /// guarantee.
    pub fn run(self) {
        let Server { listener, state } = self;
        let mut workers = Vec::new();
        for _ in 0..state.cfg.handlers.max(1) {
            let st = Arc::clone(&state);
            workers.push(std::thread::spawn(move || handler_loop(&st)));
        }

        loop {
            if state.draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let mut queue = state.queue.lock().expect("queue poisoned");
                    if queue.len() >= state.cfg.queue_depth {
                        drop(queue);
                        state.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        reject(stream, &Response::text(429, "queue full, retry later\n"));
                    } else {
                        queue.push_back(Conn {
                            stream,
                            arrived: Instant::now(),
                        });
                        drop(queue);
                        state.queue_cv.notify_one();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }

        // Drain: no new connections are being accepted; wake every
        // handler so they observe the flag, finish the queue, and exit.
        state.queue_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// Rejects a connection without reading its request: write the
/// response, half-close, then drain whatever the client already sent.
/// Closing with unread bytes in the receive buffer makes the kernel
/// send RST, which would destroy the very response we just wrote — the
/// bounded drain (100 ms) lets a well-behaved client read its 429/503.
fn reject(mut stream: TcpStream, response: &Response) {
    use std::io::Read as _;
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 512];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// One handler thread: pop, serve, repeat; exit when draining and empty.
fn handler_loop(state: &Arc<ServerState>) {
    loop {
        let conn = {
            let mut queue = state.queue.lock().expect("queue poisoned");
            loop {
                if let Some(c) = queue.pop_front() {
                    break Some(c);
                }
                if state.draining() {
                    break None;
                }
                let (guard, _) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(mut conn) = conn else {
            return; // drained dry
        };
        // Panic isolation per request: a handler bug (or an experiment
        // panic escaping the retry loop) downs one connection, not the
        // service.
        let result = catch_unwind(AssertUnwindSafe(|| {
            serve_connection(state, &mut conn);
        }));
        if result.is_err() {
            state.counters.panics.fetch_add(1, Ordering::Relaxed);
            let _ = Response::text(500, "internal error (isolated)\n").write_to(&mut conn.stream);
        }
    }
}

/// Reads one request off the connection and routes it.
fn serve_connection(state: &Arc<ServerState>, conn: &mut Conn) {
    let _ = conn.stream.set_read_timeout(Some(state.cfg.read_timeout));
    let request = match read_request(&mut conn.stream) {
        Ok(r) => r,
        Err(bad) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ =
                Response::text(bad.status, format!("{}\n", bad.reason)).write_to(&mut conn.stream);
            return;
        }
    };
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let response = route(state, &request, conn.arrived);
    let _ = response.write_to(&mut conn.stream);
}

/// The endpoint table.
fn route(state: &Arc<ServerState>, req: &Request, arrived: Instant) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if state.draining() {
                state
                    .counters
                    .rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => Response::text(200, state.metrics_text()),
        ("GET", "/experiments") => {
            let mut body = String::new();
            for d in &state.defs {
                body.push_str(d.name);
                body.push('\n');
            }
            Response::text(200, body)
        }
        ("GET", "/report") => report_endpoint(state),
        ("POST", "/drain") => {
            state.begin_drain();
            Response::text(202, "draining; in-flight jobs will complete\n")
        }
        ("POST", "/jobs") => jobs_endpoint(state, req, arrived),
        ("GET", path) if path.starts_with("/results/") => results_endpoint(state, path),
        ("GET", _) => Response::text(404, "unknown path\n"),
        _ => Response::text(405, "method not allowed\n"),
    }
}

/// `GET /results/<name>` — a CSV previously persisted under the run's
/// results directory. The name is allowlisted against the experiment
/// registry, so the path cannot traverse anywhere.
fn results_endpoint(state: &Arc<ServerState>, path: &str) -> Response {
    let name = path.trim_start_matches("/results/");
    if !state.defs.iter().any(|d| d.name == name) {
        return Response::text(404, "unknown experiment\n");
    }
    match std::fs::read_to_string(state.cfg.results_dir.join(format!("{name}.csv"))) {
        Ok(csv) => Response::csv(200, csv),
        Err(_) => Response::text(404, "no stored result; POST /jobs to compute it\n"),
    }
}

/// `GET /report` — the `bmp-report` summary rendering of the metrics
/// files under the results directory, when a metrics-on run produced
/// them.
fn report_endpoint(state: &Arc<ServerState>) -> Response {
    let dir = state.cfg.results_dir.join("metrics");
    if !dir.is_dir() {
        return Response::text(
            404,
            "no metrics found; run with BMP_METRICS=1 to populate the report\n",
        );
    }
    match report::load_dir(&dir) {
        Ok(docs) if !docs.is_empty() => {
            let mut body = String::new();
            for t in report::summary_tables(&docs) {
                body.push_str(&t.to_markdown());
                body.push('\n');
            }
            Response::text(200, body)
        }
        Ok(_) => Response::text(
            404,
            "no metrics found; run with BMP_METRICS=1 to populate the report\n",
        ),
        Err(e) => Response::text(500, format!("metrics unreadable: {e}\n")),
    }
}

/// `POST /jobs` — parse, admission-check the deadline, coalesce, run.
fn jobs_endpoint(state: &Arc<ServerState>, req: &Request, arrived: Instant) -> Response {
    let spec = match parse_job(state, &req.body) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    if !state.defs.iter().any(|d| d.name == spec.name) {
        return Response::text(404, format!("unknown experiment {:?}\n", spec.name));
    }
    let deadline = arrived + spec.deadline;
    if Instant::now() >= deadline {
        state
            .counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        return Response::text(504, "deadline expired while queued\n");
    }

    let key = experiment_fingerprint(&spec.name, spec.scale);
    // Coalesce: one computation per fingerprint; identical submissions
    // attach to the in-flight slot (the Memo underneath collapses the
    // shared artifacts too — this layer dedups the *table* work).
    let (slot, leader) = {
        let mut jobs = state.jobs.lock().expect("jobs poisoned");
        match jobs.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Arc::new(JobSlot::new());
                jobs.insert(key, Arc::clone(&slot));
                (slot, true)
            }
        }
    };

    if !leader {
        state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
        return match slot.wait_until(deadline) {
            Some(Ok(csv)) => {
                state
                    .counters
                    .jobs_completed
                    .fetch_add(1, Ordering::Relaxed);
                Response::csv(200, csv.as_str())
            }
            Some(Err(e)) => {
                state.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
                Response::text(500, format!("job failed: {e}\n"))
            }
            None => {
                state
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                Response::text(504, "deadline expired waiting on coalesced job\n")
            }
        };
    }

    let result = run_job(state, &spec, deadline);
    slot.fill(result.clone());
    state.jobs.lock().expect("jobs poisoned").remove(&key);
    match result {
        Ok(csv) => {
            if Instant::now() >= deadline {
                // The work finished late: the cache is warm for the
                // next submission, but this request gets the honest
                // answer.
                state
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                Response::text(504, "deadline expired during compute (result cached)\n")
            } else {
                state
                    .counters
                    .jobs_completed
                    .fetch_add(1, Ordering::Relaxed);
                Response::csv(200, csv.as_str())
            }
        }
        Err(e) => {
            state.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
            Response::text(500, format!("job failed: {e}\n"))
        }
    }
}

/// Runs one job with panic isolation and bounded retry-with-backoff.
/// Retries stop early when the deadline has passed — a doomed request
/// should not hold a handler thread.
fn run_job(state: &Arc<ServerState>, spec: &JobSpec, deadline: Instant) -> JobResult {
    let def = state
        .defs
        .iter()
        .find(|d| d.name == spec.name)
        .expect("existence checked by caller");
    let attempts = state.cfg.attempts.max(1);
    let mut last_err = String::new();
    for attempt in 1..=attempts {
        if attempt > 1 {
            state.counters.retries.fetch_add(1, Ordering::Relaxed);
            // Deterministic linear backoff, capped well under typical
            // deadlines; transient failures (a poisoned cache slot, an
            // injected fault budget) clear on recompute.
            let pause = Duration::from_millis(25 * u64::from(attempt - 1));
            if Instant::now() + pause >= deadline {
                break;
            }
            std::thread::sleep(pause);
        }
        match catch_unwind(AssertUnwindSafe(|| (def.run)(&state.ctx, spec.scale))) {
            Ok(table) => return Ok(Arc::new(table.to_csv())),
            Err(payload) => {
                let err = CellError::from_panic_payload(def.name, payload);
                last_err = err.to_string();
            }
        }
    }
    Err(last_err)
}

/// Parses the `POST /jobs` JSON body:
/// `{"experiment": "...", "ops": N?, "seed": N?, "deadline_ms": N?}`.
fn parse_job(state: &Arc<ServerState>, body: &[u8]) -> Result<JobSpec, Response> {
    let text = std::str::from_utf8(body).map_err(|_| Response::text(400, "body is not UTF-8\n"))?;
    let value = json::parse(text)
        .map_err(|e| Response::text(400, format!("bad JSON: {}\n", e.message())))?;
    let obj = value
        .as_object("job")
        .map_err(|_| Response::text(400, "job body must be a JSON object\n"))?;
    let name = obj
        .get_string("experiment")
        .map_err(|_| Response::text(400, "missing \"experiment\"\n"))?
        .to_string();
    let mut scale = state.scale;
    if let Some(v) = obj.get("ops") {
        let ops = v
            .as_u64("ops")
            .map_err(|_| Response::text(400, "\"ops\" must be a positive integer\n"))?;
        if ops == 0 {
            return Err(Response::text(400, "\"ops\" must be positive\n"));
        }
        scale.ops = ops as usize;
    }
    if let Some(v) = obj.get("seed") {
        scale.seed = v
            .as_u64("seed")
            .map_err(|_| Response::text(400, "\"seed\" must be an integer\n"))?;
    }
    let mut deadline = Duration::from_millis(state.cfg.default_deadline_ms);
    if let Some(v) = obj.get("deadline_ms") {
        let ms = v
            .as_u64("deadline_ms")
            .map_err(|_| Response::text(400, "\"deadline_ms\" must be an integer\n"))?;
        deadline = Duration::from_millis(ms);
    }
    Ok(JobSpec {
        name,
        scale,
        deadline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineChoice;
    use std::io::{Read as _, Write as _};

    fn tiny_server() -> (
        std::net::SocketAddr,
        Arc<ServerState>,
        std::thread::JoinHandle<()>,
    ) {
        let cfg = ServeConfig {
            handlers: 2,
            queue_depth: 4,
            default_deadline_ms: 10_000,
            attempts: 1,
            ..ServeConfig::default()
        };
        let ctx = Arc::new(Ctx::with_settings(EngineChoice::EventDriven, false));
        let server = Server::bind(cfg, ctx, Scale { ops: 500, seed: 7 }).unwrap();
        let addr = server.local_addr().unwrap();
        let state = server.state();
        let join = std::thread::spawn(move || server.run());
        (addr, state, join)
    }

    fn talk(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn health_endpoints_and_drain_lifecycle() {
        let (addr, state, join) = tiny_server();

        let got = talk(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 200"), "{got}");

        let got = talk(addr, "GET /readyz HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 200"), "{got}");

        let got = talk(addr, "GET /experiments HTTP/1.1\r\n\r\n");
        assert!(got.contains("table1_config"), "{got}");
        assert!(got.contains("fig5_contributor_breakdown"), "{got}");

        let got = talk(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 404"), "{got}");

        let got = talk(addr, "DELETE /healthz HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 405"), "{got}");

        let got = talk(
            addr,
            "POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!",
        );
        assert!(got.starts_with("HTTP/1.1 400"), "{got}");

        let got = talk(
            addr,
            "POST /jobs HTTP/1.1\r\nContent-Length: 28\r\n\r\n{\"experiment\": \"no_such_e\"}\n",
        );
        assert!(got.starts_with("HTTP/1.1 404"), "{got}");

        let got = talk(addr, "POST /drain HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 202"), "{got}");
        assert!(state.draining());
        join.join().unwrap();
    }

    #[test]
    fn small_job_round_trips_as_csv() {
        let (addr, state, join) = tiny_server();
        let body = "{\"experiment\": \"table1_config\"}";
        let got = talk(
            addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(got.starts_with("HTTP/1.1 200"), "{got}");
        assert!(got.contains("text/csv"), "{got}");

        let got = talk(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(got.contains("bmp_serve_jobs_completed_total 1"), "{got}");

        state.begin_drain();
        join.join().unwrap();
    }
}
