//! `bmp-serve`: the hardened characterization service.
//!
//! Accepts simulation jobs over HTTP/1.1 on a loopback (or any) TCP
//! address and answers with the experiment's CSV table. The service
//! layers the robustness properties the CLI cannot give a long-lived
//! process:
//!
//! - **Admission control** — a bounded accept queue; when full, new
//!   connections get an immediate `429` instead of unbounded buffering.
//! - **Backpressure & coalescing** — identical job fingerprints share
//!   one computation; duplicates attach to the in-flight slot.
//! - **Deadlines** — every job carries a deadline (client-set or the
//!   server default); expiry anywhere in the pipeline answers `504`.
//! - **Bounded retry** — transient failures recompute with linear
//!   backoff, never past the deadline.
//! - **Panic isolation** — a panicking experiment downs one request,
//!   answered `500`, never the process.
//! - **Graceful drain** — `POST /drain` (or stdin EOF in the binary)
//!   stops admission, completes queued and in-flight work, then exits.
//!
//! See `docs/SERVING.md` for the endpoint reference and operational
//! notes; [`http`] holds the wire plumbing, [`server`] the service
//! logic.

pub mod http;
pub mod server;

pub use server::{ServeConfig, Server, ServerState};
