//! Rendering of `results/metrics/*.json` into human tables, flat CSV,
//! and run-to-run diffs — the library behind the `bmp-report` binary.
//!
//! Everything here is deterministic: documents are processed in
//! name order and floats are formatted with fixed precision, so two
//! renders of the same files are byte-identical (the golden diff test
//! relies on this).

use std::path::Path;

use bmp_core::{ExperimentMetrics, WorkloadMetrics};

use crate::Table;

/// Loads and parses every `*.json` under `dir`, sorted by file name.
///
/// # Errors
///
/// Returns a description naming the offending file when the directory
/// cannot be read or a file fails to parse — partial reports would
/// silently hide regressions, so one bad file fails the load.
pub fn load_dir(dir: &Path) -> Result<Vec<ExperimentMetrics>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut docs = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc =
            ExperimentMetrics::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        docs.push(doc);
    }
    Ok(docs)
}

fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

fn opt3(v: Option<f64>) -> String {
    v.map(fmt3).unwrap_or_else(|| "-".into())
}

/// One summary table per experiment: the per-workload measured epoch
/// and interval counts (the simulator's side of the accounting).
pub fn summary_tables(docs: &[ExperimentMetrics]) -> Vec<Table> {
    let mut tables = Vec::new();
    for doc in docs {
        if doc.workloads.is_empty() {
            continue;
        }
        let mut t = Table::new(
            &format!("metrics_{}", doc.name),
            &format!("Metrics: {} (ops={}, seed={})", doc.name, doc.ops, doc.seed),
            &[
                "workload",
                "predictor",
                "instructions",
                "cycles",
                "cpi",
                "mispredicts",
                "bmiss",
                "il1",
                "il2",
                "dlong",
                "mean_penalty",
            ],
        );
        for w in &doc.workloads {
            t.push_row(vec![
                w.workload.clone(),
                if w.predictor.is_empty() {
                    "-".into() // v1 document: predictor unrecorded
                } else {
                    w.predictor.clone()
                },
                w.instructions.to_string(),
                w.cycles.to_string(),
                if w.cycles == 0 {
                    "-".into() // model-only entry: no measured epoch
                } else {
                    fmt3(w.measured_cpi())
                },
                w.mispredicts.to_string(),
                w.intervals.bmiss.to_string(),
                w.intervals.il1.to_string(),
                w.intervals.il2.to_string(),
                w.intervals.dlong.to_string(),
                opt3(w.mean_penalty()),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// One CPI-stack table per experiment that carries model sections: the
/// analytical model's first-order CPI decomposition plus the penalty
/// contributor totals.
pub fn cpi_stack_tables(docs: &[ExperimentMetrics]) -> Vec<Table> {
    let mut tables = Vec::new();
    for doc in docs {
        let modeled: Vec<&WorkloadMetrics> =
            doc.workloads.iter().filter(|w| w.model.is_some()).collect();
        if modeled.is_empty() {
            continue;
        }
        let mut t = Table::new(
            &format!("cpi_stack_{}", doc.name),
            &format!("CPI stack: {}", doc.name),
            &[
                "workload",
                "base_cpi",
                "branch_cpi",
                "icache_cpi",
                "dmiss_cpi",
                "model_cpi",
                "base",
                "ilp",
                "fu_latency",
                "short_dmiss",
                "carryover",
            ],
        );
        for w in modeled {
            let m = w.model.as_ref().expect("filtered to modeled workloads");
            let s = &m.cpi_stack;
            let n = s.instructions.max(1) as f64;
            t.push_row(vec![
                workload_key(w),
                fmt3(s.base_cycles / n),
                fmt3(s.branch_cycles / n),
                fmt3(s.icache_cycles / n),
                fmt3(s.long_dmiss_cycles / n),
                fmt3(s.cpi()),
                m.base.to_string(),
                m.ilp.to_string(),
                m.fu_latency.to_string(),
                m.short_dmiss.to_string(),
                m.carryover.to_string(),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// The `workload[predictor]` display key telling per-predictor entries
/// of the same workload apart; plain workload name for v1 documents
/// (empty `predictor`).
fn workload_key(w: &WorkloadMetrics) -> String {
    if w.predictor.is_empty() {
        w.workload.clone()
    } else {
        format!("{}[{}]", w.workload, w.predictor)
    }
}

/// One per-branch-class CPI-stack table per experiment that carries
/// `branch_classes` attributions (metrics schema v2): for each
/// `(workload, predictor)` entry, the static sites, charged intervals,
/// and exact local-resolution/refill cycles of every branch class —
/// the H2P-vs-easy split of the misprediction penalty.
pub fn class_stack_tables(docs: &[ExperimentMetrics]) -> Vec<Table> {
    let mut tables = Vec::new();
    for doc in docs {
        let classed: Vec<&WorkloadMetrics> = doc
            .workloads
            .iter()
            .filter(|w| !w.branch_classes.is_empty())
            .collect();
        if classed.is_empty() {
            continue;
        }
        let mut t = Table::new(
            &format!("class_stack_{}", doc.name),
            &format!("Per-class penalty: {}", doc.name),
            &[
                "workload",
                "predictor",
                "class",
                "sites",
                "intervals",
                "local_resolution",
                "refill",
                "total",
            ],
        );
        for w in classed {
            for c in &w.branch_classes {
                t.push_row(vec![
                    w.workload.clone(),
                    if w.predictor.is_empty() {
                        "-".into()
                    } else {
                        w.predictor.clone()
                    },
                    c.class.clone(),
                    c.sites.to_string(),
                    c.intervals.to_string(),
                    c.local_resolution.to_string(),
                    c.refill.to_string(),
                    c.total().to_string(),
                ]);
            }
        }
        tables.push(t);
    }
    tables
}

/// The whole run as one flat CSV (a row per experiment × workload),
/// for spreadsheet and scripting use. Model columns are empty for
/// workloads without a model section.
pub fn to_csv(docs: &[ExperimentMetrics]) -> String {
    let mut out = String::from(
        "experiment,workload,predictor,instructions,cycles,cpi,mispredicts,\
         bmiss,il1,il2,dlong,resolution_total,refill_total,occupancy_total,mean_penalty,\
         model_base,model_ilp,model_fu_latency,model_short_dmiss,model_carryover,model_cpi\n",
    );
    for doc in docs {
        for w in &doc.workloads {
            let (base, ilp, fu, sd, co, mcpi) = match &w.model {
                Some(m) => (
                    m.base.to_string(),
                    m.ilp.to_string(),
                    m.fu_latency.to_string(),
                    m.short_dmiss.to_string(),
                    m.carryover.to_string(),
                    fmt3(m.cpi_stack.cpi()),
                ),
                None => Default::default(),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{base},{ilp},{fu},{sd},{co},{mcpi}\n",
                doc.name,
                w.workload,
                w.predictor,
                w.instructions,
                w.cycles,
                if w.cycles == 0 {
                    String::new()
                } else {
                    fmt3(w.measured_cpi())
                },
                w.mispredicts,
                w.intervals.bmiss,
                w.intervals.il1,
                w.intervals.il2,
                w.intervals.dlong,
                w.resolution_total,
                w.refill_total,
                w.occupancy_total,
                w.mean_penalty().map(fmt3).unwrap_or_default(),
            ));
        }
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt3(v: Option<f64>) -> String {
    v.map(fmt3).unwrap_or_else(|| "null".into())
}

/// The whole run as one JSON document mirroring the rendered tables:
/// per experiment, the per-workload summary quantities
/// ([`summary_tables`]) plus, when present, the model's CPI stack and
/// contributor totals ([`cpi_stack_tables`]). Key order and float
/// formatting are fixed, so two renders of the same files are
/// byte-identical. The schema is documented in `docs/OBSERVABILITY.md`.
pub fn to_json(docs: &[ExperimentMetrics]) -> String {
    let mut out = String::from("{\n  \"experiments\": [");
    for (di, doc) in docs.iter().enumerate() {
        if di > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"experiment\": {}, \"ops\": {}, \"seed\": {}, \"workloads\": [",
            json_str(&doc.name),
            doc.ops,
            doc.seed
        ));
        for (wi, w) in doc.workloads.iter().enumerate() {
            if wi > 0 {
                out.push(',');
            }
            let cpi = if w.cycles == 0 {
                "null".into() // model-only entry: no measured epoch
            } else {
                fmt3(w.measured_cpi())
            };
            out.push_str(&format!(
                "\n      {{ \"workload\": {}, \"predictor\": {}, \"instructions\": {}, \
                 \"cycles\": {}, \
                 \"cpi\": {cpi}, \"mispredicts\": {}, \"frontend_depth\": {}, \
                 \"intervals\": {{ \"bmiss\": {}, \"il1\": {}, \"il2\": {}, \"dlong\": {} }}, \
                 \"resolution_total\": {}, \"refill_total\": {}, \"occupancy_total\": {}, \
                 \"mean_penalty\": {}",
                json_str(&w.workload),
                json_str(&w.predictor),
                w.instructions,
                w.cycles,
                w.mispredicts,
                w.frontend_depth,
                w.intervals.bmiss,
                w.intervals.il1,
                w.intervals.il2,
                w.intervals.dlong,
                w.resolution_total,
                w.refill_total,
                w.occupancy_total,
                json_opt3(w.mean_penalty())
            ));
            out.push_str(", \"branch_classes\": [");
            for (ci, c) in w.branch_classes.iter().enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{ \"class\": {}, \"sites\": {}, \"intervals\": {}, \
                     \"local_resolution\": {}, \"refill\": {}, \"total\": {} }}",
                    json_str(&c.class),
                    c.sites,
                    c.intervals,
                    c.local_resolution,
                    c.refill,
                    c.total()
                ));
            }
            out.push(']');
            match &w.model {
                Some(m) => {
                    let s = &m.cpi_stack;
                    let n = s.instructions.max(1) as f64;
                    out.push_str(&format!(
                        ", \"model\": {{ \"intervals\": {}, \
                         \"cpi_stack\": {{ \"base\": {}, \"branch\": {}, \"icache\": {}, \
                         \"dmiss\": {}, \"total\": {} }}, \
                         \"contributors\": {{ \"base\": {}, \"ilp\": {}, \"fu_latency\": {}, \
                         \"short_dmiss\": {}, \"carryover\": {}, \"resolution\": {}, \
                         \"refill\": {} }} }} }}",
                        m.intervals,
                        fmt3(s.base_cycles / n),
                        fmt3(s.branch_cycles / n),
                        fmt3(s.icache_cycles / n),
                        fmt3(s.long_dmiss_cycles / n),
                        fmt3(s.cpi()),
                        m.base,
                        m.ilp,
                        m.fu_latency,
                        m.short_dmiss,
                        m.carryover,
                        m.resolution,
                        m.refill
                    ));
                }
                None => out.push_str(", \"model\": null }"),
            }
        }
        out.push_str("\n    ] }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The outcome of comparing two metrics runs.
#[derive(Debug, Default)]
pub struct Diff {
    /// One line per changed per-workload quantity
    /// (`experiment/workload: field old -> new`).
    pub changes: Vec<String>,
    /// Experiments or workloads present only in the new run.
    pub added: Vec<String>,
    /// Experiments or workloads present only in the old run.
    pub removed: Vec<String>,
}

impl Diff {
    /// True when the runs are metrically identical.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }

    /// Renders the diff for the terminal: change lines, then
    /// added/removed entries, then a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.changes {
            out.push_str(c);
            out.push('\n');
        }
        for a in &self.added {
            out.push_str(&format!("added: {a}\n"));
        }
        for r in &self.removed {
            out.push_str(&format!("removed: {r}\n"));
        }
        out.push_str(&format!(
            "{} changed value(s), {} added, {} removed\n",
            self.changes.len(),
            self.added.len(),
            self.removed.len()
        ));
        out
    }
}

fn pct(old: f64, new: f64) -> String {
    if old == 0.0 {
        String::new()
    } else {
        format!(" ({:+.2}%)", (new - old) / old * 100.0)
    }
}

fn diff_u64(changes: &mut Vec<String>, locus: &str, field: &str, old: u64, new: u64) {
    if old != new {
        changes.push(format!(
            "{locus}: {field} {old} -> {new}{}",
            pct(old as f64, new as f64)
        ));
    }
}

fn diff_workload(
    changes: &mut Vec<String>,
    locus: &str,
    old: &WorkloadMetrics,
    new: &WorkloadMetrics,
) {
    diff_u64(
        changes,
        locus,
        "instructions",
        old.instructions,
        new.instructions,
    );
    diff_u64(changes, locus, "cycles", old.cycles, new.cycles);
    diff_u64(
        changes,
        locus,
        "mispredicts",
        old.mispredicts,
        new.mispredicts,
    );
    diff_u64(
        changes,
        locus,
        "bmiss_intervals",
        old.intervals.bmiss,
        new.intervals.bmiss,
    );
    diff_u64(
        changes,
        locus,
        "il1_intervals",
        old.intervals.il1,
        new.intervals.il1,
    );
    diff_u64(
        changes,
        locus,
        "il2_intervals",
        old.intervals.il2,
        new.intervals.il2,
    );
    diff_u64(
        changes,
        locus,
        "dlong_intervals",
        old.intervals.dlong,
        new.intervals.dlong,
    );
    diff_u64(
        changes,
        locus,
        "resolution_total",
        old.resolution_total,
        new.resolution_total,
    );
    diff_u64(
        changes,
        locus,
        "refill_total",
        old.refill_total,
        new.refill_total,
    );
    diff_u64(
        changes,
        locus,
        "occupancy_total",
        old.occupancy_total,
        new.occupancy_total,
    );
    // Per-class attributions: compare class rows by label; a class
    // gained or lost between runs is itself a reportable change.
    for oc in &old.branch_classes {
        match new.branch_classes.iter().find(|nc| nc.class == oc.class) {
            Some(nc) => {
                let f = |name: &str| format!("class.{}.{name}", oc.class);
                diff_u64(changes, locus, &f("sites"), oc.sites, nc.sites);
                diff_u64(changes, locus, &f("intervals"), oc.intervals, nc.intervals);
                diff_u64(
                    changes,
                    locus,
                    &f("local_resolution"),
                    oc.local_resolution,
                    nc.local_resolution,
                );
                diff_u64(changes, locus, &f("refill"), oc.refill, nc.refill);
            }
            None => changes.push(format!("{locus}: class {} disappeared", oc.class)),
        }
    }
    for nc in &new.branch_classes {
        if !old.branch_classes.iter().any(|oc| oc.class == nc.class) {
            changes.push(format!("{locus}: class {} appeared", nc.class));
        }
    }
    match (&old.model, &new.model) {
        (Some(om), Some(nm)) => {
            diff_u64(
                changes,
                locus,
                "model.resolution",
                om.resolution,
                nm.resolution,
            );
            diff_u64(changes, locus, "model.base", om.base, nm.base);
            diff_u64(changes, locus, "model.ilp", om.ilp, nm.ilp);
            diff_u64(
                changes,
                locus,
                "model.fu_latency",
                om.fu_latency,
                nm.fu_latency,
            );
            diff_u64(
                changes,
                locus,
                "model.short_dmiss",
                om.short_dmiss,
                nm.short_dmiss,
            );
            if om.carryover != nm.carryover {
                changes.push(format!(
                    "{locus}: model.carryover {} -> {}",
                    om.carryover, nm.carryover
                ));
            }
            let (oc, nc) = (om.cpi_stack.cpi(), nm.cpi_stack.cpi());
            if fmt3(oc) != fmt3(nc) {
                changes.push(format!(
                    "{locus}: model.cpi {} -> {}{}",
                    fmt3(oc),
                    fmt3(nc),
                    pct(oc, nc)
                ));
            }
        }
        (None, Some(_)) => changes.push(format!("{locus}: model section appeared")),
        (Some(_), None) => changes.push(format!("{locus}: model section disappeared")),
        (None, None) => {}
    }
}

/// Compares two metrics runs (each a set of per-experiment documents)
/// workload by workload.
pub fn diff(old: &[ExperimentMetrics], new: &[ExperimentMetrics]) -> Diff {
    let mut d = Diff::default();
    for o in old {
        let Some(n) = new.iter().find(|n| n.name == o.name) else {
            d.removed.push(o.name.clone());
            continue;
        };
        if o.ops != n.ops || o.seed != n.seed {
            d.changes.push(format!(
                "{}: scale changed (ops {} seed {}) -> (ops {} seed {}); value diffs below \
                 compare different runs",
                o.name, o.ops, o.seed, n.ops, n.seed
            ));
        }
        // Entries are keyed `(workload, predictor)`: per-predictor runs
        // of the same workload are distinct loci, and a v1→v2 rerun
        // (predictor newly recorded) reads as removed + added rather
        // than a spurious value diff.
        for ow in &o.workloads {
            let locus = format!("{}/{}", o.name, workload_key(ow));
            match n
                .workloads
                .iter()
                .find(|nw| nw.workload == ow.workload && nw.predictor == ow.predictor)
            {
                Some(nw) => diff_workload(&mut d.changes, &locus, ow, nw),
                None => d.removed.push(locus),
            }
        }
        for nw in &n.workloads {
            if !o
                .workloads
                .iter()
                .any(|ow| ow.workload == nw.workload && ow.predictor == nw.predictor)
            {
                d.added.push(format!("{}/{}", n.name, workload_key(nw)));
            }
        }
    }
    for n in new {
        if !old.iter().any(|o| o.name == n.name) {
            d.added.push(n.name.clone());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::intervals::IntervalEventKind;
    use bmp_core::metrics::HISTOGRAM_BUCKETS;
    use bmp_core::IntervalRecord;
    use bmp_core::WorkloadMetrics;

    fn sample_doc(name: &str, cycles: u64) -> ExperimentMetrics {
        let records = vec![
            IntervalRecord {
                kind: IntervalEventKind::BranchMispredict,
                start: 0,
                pos: 24,
                commit_cycle: 30,
                resolution: 11,
                refill: 5,
                occupancy: 17,
                base: 0,
                ilp: 0,
                fu_latency: 0,
                short_dmiss: 0,
                carryover: 0,
            },
            IntervalRecord {
                kind: IntervalEventKind::ICacheMiss,
                start: 25,
                pos: 99,
                commit_cycle: 140,
                resolution: 0,
                refill: 0,
                occupancy: 0,
                base: 0,
                ilp: 0,
                fu_latency: 0,
                short_dmiss: 0,
                carryover: 0,
            },
        ];
        let mut doc = ExperimentMetrics::new(name, 2_000, 42);
        doc.workloads.push(WorkloadMetrics::from_records(
            "gzip", 2_000, cycles, 5, 1, &records,
        ));
        doc
    }

    #[test]
    fn summary_and_stack_tables_render() {
        let doc = sample_doc("fig2_penalty_per_benchmark", 4_000);
        let tables = summary_tables(std::slice::from_ref(&doc));
        assert_eq!(tables.len(), 1);
        let csv = tables[0].to_csv();
        assert!(csv.contains("gzip"));
        assert!(csv.contains("2.000"), "cpi column: {csv}");
        // No model sections: no CPI-stack table.
        assert!(cpi_stack_tables(&[doc]).is_empty());
    }

    #[test]
    fn flat_csv_has_one_row_per_workload() {
        let docs = [sample_doc("a", 100), sample_doc("b", 200)];
        let csv = to_csv(&docs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[1].starts_with("a,gzip,"));
        assert!(lines[2].starts_with("b,gzip,"));
    }

    #[test]
    fn json_mirrors_the_tables_and_is_deterministic() {
        let docs = [sample_doc("a", 4_000), sample_doc("b", 200)];
        let j = to_json(&docs);
        assert_eq!(j, to_json(&docs), "byte-identical renders");
        assert!(j.contains("\"experiment\": \"a\""));
        assert!(j.contains("\"workload\": \"gzip\""));
        // Same derived cpi value as the summary table.
        assert!(j.contains("\"cpi\": 2.000"), "{j}");
        // No model sections in the sample docs.
        assert!(j.contains("\"model\": null"));
        assert!(!j.contains("cpi_stack"));
        // Totals surfaced with interval counts.
        assert!(j.contains("\"resolution_total\": 11"));
        assert!(j.contains("\"intervals\": { \"bmiss\": 1, \"il1\": 1, \"il2\": 0, \"dlong\": 0 }"));
    }

    fn classed_doc(name: &str) -> ExperimentMetrics {
        use bmp_core::metrics::ClassPenalty;
        let mut doc = sample_doc(name, 4_000);
        doc.workloads[0].predictor = "tage".into();
        doc.workloads[0].branch_classes = vec![
            ClassPenalty {
                class: "h2p".into(),
                sites: 2,
                intervals: 9,
                local_resolution: 90,
                refill: 45,
            },
            ClassPenalty {
                class: "biased".into(),
                sites: 7,
                intervals: 1,
                local_resolution: 4,
                refill: 5,
            },
        ];
        doc
    }

    #[test]
    fn class_stack_table_and_json_mirror_the_v2_fields() {
        let doc = classed_doc("ex_h2p_contributors");
        let tables = class_stack_tables(std::slice::from_ref(&doc));
        assert_eq!(tables.len(), 1);
        let csv = tables[0].to_csv();
        assert!(csv.contains("gzip,tage,h2p,2,9,90,45,135"), "{csv}");
        assert!(csv.contains("gzip,tage,biased,7,1,4,5,9"), "{csv}");
        // The summary table shows the predictor; the JSON mirrors both
        // v2 fields.
        let summary = summary_tables(std::slice::from_ref(&doc))[0].to_csv();
        assert!(summary.contains("gzip,tage,"), "{summary}");
        let j = to_json(std::slice::from_ref(&doc));
        assert!(j.contains("\"predictor\": \"tage\""), "{j}");
        assert!(
            j.contains(
                "{ \"class\": \"h2p\", \"sites\": 2, \"intervals\": 9, \
                 \"local_resolution\": 90, \"refill\": 45, \"total\": 135 }"
            ),
            "{j}"
        );
        // No attributions → no class table, and an empty JSON array.
        let plain = sample_doc("a", 100);
        assert!(class_stack_tables(std::slice::from_ref(&plain)).is_empty());
        assert!(to_json(&[plain]).contains("\"branch_classes\": []"));
    }

    #[test]
    fn diff_tells_predictors_apart_and_reports_class_changes() {
        let old = [classed_doc("a")];
        let mut newer = classed_doc("a");
        newer.workloads[0].branch_classes[0].intervals = 11;
        newer.workloads[0].branch_classes.remove(1);
        let d = diff(&old, &[newer]);
        assert!(
            d.changes
                .iter()
                .any(|c| c.contains("a/gzip[tage]: class.h2p.intervals 9 -> 11")),
            "{:?}",
            d.changes
        );
        assert!(
            d.changes
                .iter()
                .any(|c| c.contains("class biased disappeared")),
            "{:?}",
            d.changes
        );
        // A different predictor under the same workload name is a
        // distinct entry, not a value diff.
        let mut other = classed_doc("a");
        other.workloads[0].predictor = "bimodal".into();
        let d = diff(&old, &[other]);
        assert!(d.changes.is_empty(), "{:?}", d.changes);
        assert_eq!(d.removed, vec!["a/gzip[tage]".to_string()]);
        assert_eq!(d.added, vec!["a/gzip[bimodal]".to_string()]);
    }

    #[test]
    fn identical_runs_diff_empty() {
        let docs = [sample_doc("a", 100)];
        let d = diff(&docs, &docs);
        assert!(d.is_empty(), "{:?}", d);
        assert!(d
            .render()
            .contains("0 changed value(s), 0 added, 0 removed"));
    }

    #[test]
    fn changed_added_and_removed_are_reported() {
        let old = [sample_doc("a", 100), sample_doc("gone", 50)];
        let mut newer = sample_doc("a", 120);
        newer.workloads[0].mispredicts += 1;
        newer.workloads[0].intervals.bmiss += 1;
        let new = [newer, sample_doc("fresh", 70)];
        let d = diff(&old, &new);
        assert!(!d.is_empty());
        assert!(
            d.changes
                .iter()
                .any(|c| c.contains("a/gzip: cycles 100 -> 120 (+20.00%)")),
            "{:?}",
            d.changes
        );
        assert!(d.changes.iter().any(|c| c.contains("mispredicts 1 -> 2")));
        assert_eq!(d.removed, vec!["gone".to_string()]);
        assert_eq!(d.added, vec!["fresh".to_string()]);
    }

    #[test]
    fn histograms_do_not_drive_diffs_but_totals_do() {
        // Two runs with identical totals diff empty even though the
        // histogram vectors exist (HISTOGRAM_BUCKETS entries each) —
        // the diff compares aggregate quantities, not bucket noise.
        let doc = sample_doc("a", 100);
        assert_eq!(doc.workloads[0].length_histogram.len(), HISTOGRAM_BUCKETS);
        assert!(diff(std::slice::from_ref(&doc), std::slice::from_ref(&doc)).is_empty());
    }
}
