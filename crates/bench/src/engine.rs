//! The parallel experiment engine.
//!
//! `run_all` used to execute the 21 experiments strictly sequentially,
//! each re-synthesizing and re-simulating the same twelve SPECint-like
//! traces from scratch. The engine replaces that with a two-phase job
//! graph over a [`ThreadPool`]:
//!
//! 1. **Cell fan-out** — every experiment declares its shared
//!    `(experiment × workload × config)` cells (trace synthesis, baseline /
//!    oracle / warmup simulations, interval-model analyses). The engine
//!    deduplicates them by content key and computes each exactly once,
//!    spread across the pool, into the shared [`Ctx`] cache.
//! 2. **Experiments** — the 25 experiment functions run on the pool,
//!    hitting the warm cache for the shared work and computing only their
//!    experiment-specific sweeps.
//!
//! Results are **merged by stable experiment index, never by completion
//! order**, and every artifact is a pure function of its cache key, so
//! the produced tables are byte-identical for any thread count — the
//! determinism test in `tests/determinism.rs` locks this down.
//!
//! `BMP_THREADS=1` (see [`threads_from_env`]) skips the fan-out phase and
//! runs the experiments inline in order: the exact legacy path.

use std::collections::HashSet;
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use bmp_analyze::StaticBounds;
use bmp_core::store::DiskStore;
use bmp_core::{PenaltyAnalysis, PenaltyModel};
use bmp_sim::{SimOptions, SimResult, Simulator};
use bmp_uarch::{presets, MachineConfig, OpClass, PredictorConfig};
use bmp_workloads::{micro, spec, WorkloadProfile};

use crate::artifacts::{cache_key, Memo};
use crate::error::CellError;
use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::pool::ThreadPool;
use crate::{experiments, Scale, Table};

/// A synthesized trace plus its content key, so downstream simulation and
/// analysis lookups can address results as `(machine key, trace key)`.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    key: u64,
    trace: Arc<bmp_trace::Trace>,
}

impl TraceHandle {
    /// The content key addressing this trace in the cache.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The shared trace.
    pub fn trace(&self) -> &Arc<bmp_trace::Trace> {
        &self.trace
    }
}

impl Deref for TraceHandle {
    type Target = bmp_trace::Trace;

    fn deref(&self) -> &Self::Target {
        &self.trace
    }
}

/// Which simulator engine a [`Ctx`] routes its simulations through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The event-driven engine over cached [`CompiledTrace`]s (default).
    EventDriven,
    /// The retained reference engine (forced by `BMP_REFERENCE_ENGINE=1`,
    /// or chosen explicitly by `bmp-profile` for its A/B timing).
    Reference,
}

use bmp_trace::CompiledTrace;

/// Wall-clock nanoseconds accumulated per artifact phase, across all
/// threads (a sum of per-computation durations, not elapsed time).
#[derive(Debug, Default)]
struct PhaseNanos {
    trace: AtomicU64,
    compile: AtomicU64,
    superblock: AtomicU64,
    sim: AtomicU64,
    analysis: AtomicU64,
}

impl PhaseNanos {
    fn add(counter: &AtomicU64, start: Instant) {
        counter.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A snapshot of the per-phase compute time spent by a [`Ctx`], used by
/// `bmp-profile` to attribute the run to trace synthesis, trace
/// compilation, simulation and analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseReport {
    /// Nanoseconds synthesizing traces.
    pub trace_nanos: u64,
    /// Nanoseconds compiling traces to structure-of-arrays form.
    pub compile_nanos: u64,
    /// Nanoseconds in the superblock segmentation pass.
    pub superblock_nanos: u64,
    /// Nanoseconds simulating.
    pub sim_nanos: u64,
    /// Nanoseconds in interval-model analysis.
    pub analysis_nanos: u64,
}

/// The shared experiment context: the content-addressed cache every
/// experiment draws traces, compiled traces, simulation results and
/// analyses from.
///
/// All methods are `&self` and thread-safe; concurrent requests for the
/// same artifact collapse into one computation (see [`Memo`]).
#[derive(Debug)]
pub struct Ctx {
    traces: Memo<bmp_trace::Trace>,
    compiled: Memo<CompiledTrace>,
    superblocks: Memo<bmp_trace::SuperblockMap>,
    sims: Memo<SimResult>,
    analyses: Memo<PenaltyAnalysis>,
    statics: Memo<StaticBounds>,
    engine: EngineChoice,
    metrics: bool,
    phases: PhaseNanos,
    /// Optional persistent tier under the `sims` memo (see
    /// `bmp_core::store` and `docs/SERVING.md`): set once after
    /// construction, consulted before computing and written after. The
    /// in-memory memo stays the first tier, so in-flight collapse and
    /// determinism are untouched.
    store: OnceLock<Arc<DiskStore>>,
    /// Simulations served from the persistent tier (decode included).
    store_hits: AtomicU64,
}

impl Default for Ctx {
    fn default() -> Self {
        Self::new()
    }
}

impl Ctx {
    /// A fresh, empty context. Simulations route through the event-driven
    /// engine unless `BMP_REFERENCE_ENGINE=1` is set; per-interval
    /// accounting is collected when `BMP_METRICS=1` (see
    /// `docs/OBSERVABILITY.md`).
    pub fn new() -> Self {
        let engine = if bmp_sim::reference_engine_forced() {
            EngineChoice::Reference
        } else {
            EngineChoice::EventDriven
        };
        Self::with_engine(engine)
    }

    /// A fresh, empty context with an explicit engine choice; metrics
    /// collection still follows `BMP_METRICS`.
    pub fn with_engine(engine: EngineChoice) -> Self {
        Self::with_settings(engine, crate::metrics::metrics_enabled())
    }

    /// A fresh, empty context with both the engine choice and the
    /// metrics switch pinned explicitly (ignoring the environment) —
    /// the constructor tests use to exercise metrics collection without
    /// mutating process-global state.
    pub fn with_settings(engine: EngineChoice, metrics: bool) -> Self {
        Self {
            traces: Memo::default(),
            compiled: Memo::default(),
            superblocks: Memo::default(),
            sims: Memo::default(),
            analyses: Memo::default(),
            statics: Memo::default(),
            engine,
            metrics,
            phases: PhaseNanos::default(),
            store: OnceLock::new(),
            store_hits: AtomicU64::new(0),
        }
    }

    /// Attaches the persistent artifact store (first call wins; later
    /// calls are ignored so a shared `Ctx` can be wired defensively).
    /// From then on every simulation consults the store before
    /// computing and persists its result after.
    pub fn set_store(&self, store: Arc<DiskStore>) {
        let _ = self.store.set(store);
    }

    /// The attached persistent store, when one is set.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.get()
    }

    /// Simulations served from the persistent tier so far.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// The engine this context routes simulations through.
    pub fn engine(&self) -> EngineChoice {
        self.engine
    }

    /// Whether simulations collect per-interval accounting records.
    pub fn metrics_on(&self) -> bool {
        self.metrics
    }

    /// The per-phase compute-time snapshot.
    pub fn phase_report(&self) -> PhaseReport {
        PhaseReport {
            trace_nanos: self.phases.trace.load(Ordering::Relaxed),
            compile_nanos: self.phases.compile.load(Ordering::Relaxed),
            superblock_nanos: self.phases.superblock.load(Ordering::Relaxed),
            sim_nanos: self.phases.sim.load(Ordering::Relaxed),
            analysis_nanos: self.phases.analysis.load(Ordering::Relaxed),
        }
    }

    /// The trace synthesized by `profile` at `scale`, cached by
    /// `(profile fingerprint, ops, seed)`.
    pub fn trace(&self, profile: &WorkloadProfile, scale: Scale) -> TraceHandle {
        let key = cache_key(
            "trace",
            &[profile.fingerprint(), scale.ops as u64, scale.seed],
        );
        let trace = self.traces.get_or_compute(key, || {
            let t0 = Instant::now();
            let trace = profile.generate(scale.ops, scale.seed);
            PhaseNanos::add(&self.phases.trace, t0);
            trace
        });
        TraceHandle { key, trace }
    }

    /// The trace for the SPEC-like profile `name` at `scale`, or a
    /// structured [`CellError`] when `name` is not in [`spec::NAMES`].
    pub fn try_named_trace(&self, name: &str, scale: Scale) -> Result<TraceHandle, CellError> {
        match spec::by_name(name) {
            Some(profile) => Ok(self.trace(&profile, scale)),
            None => Err(CellError::unknown_profile(name)),
        }
    }

    /// The trace for the SPEC-like profile `name` at `scale`.
    ///
    /// # Panics
    ///
    /// Panics (with a structured [`CellError`] payload, so the
    /// fault-tolerant run layer reports it as `unknown-profile` rather
    /// than an opaque panic) if `name` is not one of [`spec::NAMES`].
    pub fn named_trace(&self, name: &str, scale: Scale) -> TraceHandle {
        self.try_named_trace(name, scale)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// The *executed* trace of the RV32IM kernel `name` at `scale`
    /// (see `bmp_isa`), cached by `(kernel name, ops, seed)`, or a
    /// structured [`CellError`] when `name` is not in
    /// [`bmp_isa::NAMES`].
    ///
    /// Generation goes through [`bmp_isa::kernel_trace`] — the exact
    /// function the analyzers (`bmp-verify`, `bmp-lint --kernels`) use
    /// to rebuild kernel traces from recorded `(name, ops, seed)`
    /// journals — so a kernel cell's trace is bit-identical wherever it
    /// is regenerated.
    pub fn try_kernel_trace(&self, name: &str, scale: Scale) -> Result<TraceHandle, CellError> {
        if !bmp_isa::NAMES.contains(&name) {
            return Err(CellError::unknown_kernel(name));
        }
        let key = cache_key(
            "isa-trace",
            &[
                bmp_uarch::fp::fnv1a(name.as_bytes()),
                scale.ops as u64,
                scale.seed,
            ],
        );
        let trace = self.traces.get_or_compute(key, || {
            let t0 = Instant::now();
            let trace = bmp_isa::kernel_trace(name, scale.ops, scale.seed)
                .expect("membership in bmp_isa::NAMES checked above");
            PhaseNanos::add(&self.phases.trace, t0);
            trace
        });
        Ok(TraceHandle { key, trace })
    }

    /// The executed trace of the RV32IM kernel `name` at `scale`.
    ///
    /// # Panics
    ///
    /// Panics (with a structured [`CellError`] payload) if `name` is
    /// not one of [`bmp_isa::NAMES`].
    pub fn kernel_trace(&self, name: &str, scale: Scale) -> TraceHandle {
        self.try_kernel_trace(name, scale)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// A trace from an arbitrary synthesis closure, addressed by `key`
    /// (build it with [`cache_key`] from the synthesis parameters). Used
    /// by the microbenchmark experiments.
    pub fn keyed_trace<F>(&self, key: u64, synth: F) -> TraceHandle
    where
        F: FnOnce() -> bmp_trace::Trace,
    {
        let trace = self.traces.get_or_compute(key, || {
            let t0 = Instant::now();
            let trace = synth();
            PhaseNanos::add(&self.phases.trace, t0);
            trace
        });
        TraceHandle { key, trace }
    }

    /// The compiled (structure-of-arrays) form of `trace`, cached by the
    /// trace key. Config-independent, so one compiled trace serves every
    /// machine configuration simulated over it.
    pub fn compiled(&self, trace: &TraceHandle) -> Arc<CompiledTrace> {
        let key = cache_key("compiled", &[trace.key]);
        self.compiled.get_or_compute(key, || {
            let t0 = Instant::now();
            let ct = trace.compile();
            PhaseNanos::add(&self.phases.compile, t0);
            ct
        })
    }

    /// The superblock segmentation of `trace`'s compiled form for an
    /// L1I line of `line_bytes`, cached by `(trace key, line_bytes)`.
    /// The map is config-*family* dependent only through the line size,
    /// so one artifact serves every machine sharing an I-cache geometry
    /// — across the experiment registry that collapses hundreds of
    /// per-config builds into one per `(workload, line size)`.
    pub fn superblock(
        &self,
        trace: &TraceHandle,
        line_bytes: u32,
    ) -> Arc<bmp_trace::SuperblockMap> {
        let key = cache_key("superblock", &[trace.key, u64::from(line_bytes)]);
        self.superblocks.get_or_compute(key, || {
            let ct = self.compiled(trace);
            let t0 = Instant::now();
            let sb = bmp_trace::SuperblockMap::build(&ct, line_bytes);
            PhaseNanos::add(&self.phases.superblock, t0);
            sb
        })
    }

    /// The result of running `sim` over `trace`, cached by
    /// `(config + options fingerprint, trace key)` and routed through
    /// this context's [`EngineChoice`]: the event-driven engine reuses the
    /// cached compiled trace, the reference engine runs the original
    /// scan-everything loop. Both produce bit-identical results.
    ///
    /// With metrics on (`BMP_METRICS=1`), the simulation additionally
    /// collects per-interval accounting records
    /// ([`SimOptions::collect_intervals`]); the records are pure
    /// observation, so every other `SimResult` field — and therefore
    /// every CSV derived from it — is unchanged.
    pub fn sim(&self, sim: &Simulator, trace: &TraceHandle) -> Arc<SimResult> {
        if self.metrics && !sim.options().collect_intervals {
            let instrumented =
                Simulator::with_options(sim.config().clone(), sim.options().intervals());
            return self.sim_uncached_options(&instrumented, trace);
        }
        self.sim_uncached_options(sim, trace)
    }

    /// [`sim`](Ctx::sim) without the metrics flip — the cache lookup
    /// itself, keyed by exactly the simulator passed in.
    fn sim_uncached_options(&self, sim: &Simulator, trace: &TraceHandle) -> Arc<SimResult> {
        let key = cache_key("sim", &[sim.fingerprint(), trace.key]);
        match self.engine {
            EngineChoice::EventDriven => {
                // Resolve the compiled trace and superblock map *outside*
                // the sim timer so first-touch compilation and
                // segmentation are attributed to their own phases, not
                // the simulation phase — and so every later config
                // sharing the artifacts pays nothing at all.
                self.sims.get_or_compute(key, || {
                    self.stored_sim(key, || {
                        let ct = self.compiled(trace);
                        let sb = self.superblock(trace, sim.config().caches.l1i().line_bytes());
                        let t0 = Instant::now();
                        let res = sim.run_compiled_with(&ct, &sb);
                        PhaseNanos::add(&self.phases.sim, t0);
                        res
                    })
                })
            }
            EngineChoice::Reference => self.sims.get_or_compute(key, || {
                self.stored_sim(key, || {
                    let t0 = Instant::now();
                    let res = sim.run_reference(trace);
                    PhaseNanos::add(&self.phases.sim, t0);
                    res
                })
            }),
        }
    }

    /// The persistent tier around one simulation: consult the store for
    /// a verified record of `key` first; on a miss (or a codec-skewed
    /// record, which is retired so it is never consulted again) compute
    /// and persist. Runs inside the memo's in-flight collapse, so per
    /// process each key is read/written at most once. A failed `put` is
    /// deliberately non-fatal — the store degrades to a recompute cache,
    /// results stay correct.
    fn stored_sim<F>(&self, key: u64, compute: F) -> SimResult
    where
        F: FnOnce() -> SimResult,
    {
        let Some(store) = self.store.get() else {
            return compute();
        };
        if let Some(bytes) = store.get(key) {
            match crate::codec::decode_sim_result(&bytes) {
                Ok(res) => {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    return res;
                }
                Err(_) => store.quarantine_key(key),
            }
        }
        let res = compute();
        let _ = store.put(key, &crate::codec::encode_sim_result(&res));
        res
    }

    /// The interval-model analysis of `trace` under `cfg`, cached by
    /// `(config fingerprint, trace key)`.
    pub fn analyze(&self, cfg: &MachineConfig, trace: &TraceHandle) -> Arc<PenaltyAnalysis> {
        let key = cache_key("analysis", &[cfg.fingerprint(), trace.key]);
        self.analyses.get_or_compute(key, || {
            let t0 = Instant::now();
            let a = PenaltyModel::new(cfg.clone()).analyze(trace);
            PhaseNanos::add(&self.phases.analysis, t0);
            a
        })
    }

    /// The dependence-graph static bounds of `trace` under `cfg` (see
    /// `bmp_analyze::staticpass`), cached by `(config fingerprint,
    /// trace key)`. The pass replays the interval model's schedule, so
    /// its time is attributed to the analysis phase.
    pub fn static_bounds(&self, cfg: &MachineConfig, trace: &TraceHandle) -> Arc<StaticBounds> {
        let key = cache_key("static", &[cfg.fingerprint(), trace.key]);
        self.statics.get_or_compute(key, || {
            let t0 = Instant::now();
            let b = bmp_analyze::staticpass::bounds::compute(cfg, trace);
            PhaseNanos::add(&self.phases.analysis, t0);
            b
        })
    }

    /// Cache statistics, for the timing report.
    pub fn cache_stats(&self) -> CacheReport {
        CacheReport {
            trace_hits: self.traces.stats().hits(),
            trace_misses: self.traces.stats().misses(),
            compiled_hits: self.compiled.stats().hits(),
            compiled_misses: self.compiled.stats().misses(),
            superblock_hits: self.superblocks.stats().hits(),
            superblock_misses: self.superblocks.stats().misses(),
            sim_hits: self.sims.stats().hits(),
            sim_misses: self.sims.stats().misses(),
            analysis_hits: self.analyses.stats().hits(),
            analysis_misses: self.analyses.stats().misses(),
            static_hits: self.statics.stats().hits(),
            static_misses: self.statics.stats().misses(),
        }
    }
}

/// The closure a [`Cell`] runs against the shared context.
type CellWork = Box<dyn Fn(&Ctx, Scale) + Send + Sync>;

/// One shared `(workload × config)` unit of an experiment's work, fanned
/// out ahead of the experiment itself.
pub struct Cell {
    /// `workload/config` label; cells with equal labels are the same work
    /// and are deduplicated across experiments.
    pub label: String,
    work: CellWork,
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell").field("label", &self.label).finish()
    }
}

impl Cell {
    /// Synthesize the named workload's trace.
    pub fn trace(workload: &'static str) -> Self {
        Self {
            label: format!("{workload}/trace"),
            work: Box::new(move |ctx, scale| {
                ctx.named_trace(workload, scale);
            }),
        }
    }

    /// Baseline-machine simulation of the named workload (implies the
    /// trace).
    pub fn baseline_sim(workload: &'static str) -> Self {
        Self {
            label: format!("{workload}/sim-baseline"),
            work: Box::new(move |ctx, scale| {
                let th = ctx.named_trace(workload, scale);
                ctx.sim(&Simulator::new(presets::baseline_4wide()), &th);
            }),
        }
    }

    /// Perfect-predictor (oracle) simulation of the named workload.
    pub fn oracle_sim(workload: &'static str) -> Self {
        Self {
            label: format!("{workload}/sim-oracle"),
            work: Box::new(move |ctx, scale| {
                let cfg = presets::baseline_4wide()
                    .to_builder()
                    .predictor(PredictorConfig::Perfect)
                    .build()
                    .unwrap_or_else(|e| {
                        std::panic::panic_any(CellError::invalid_config(
                            format!("{workload}/sim-oracle"),
                            e.to_string(),
                        ))
                    });
                let th = ctx.named_trace(workload, scale);
                ctx.sim(&Simulator::new(cfg), &th);
            }),
        }
    }

    /// Baseline simulation with the standard 20% warmup.
    pub fn warmup_sim(workload: &'static str) -> Self {
        Self {
            label: format!("{workload}/sim-warmup"),
            work: Box::new(move |ctx, scale| {
                let sim = Simulator::with_options(
                    presets::baseline_4wide(),
                    SimOptions::with_warmup(scale.ops as u64 / 5),
                );
                let th = ctx.named_trace(workload, scale);
                ctx.sim(&sim, &th);
            }),
        }
    }

    /// Baseline interval-model analysis of the named workload.
    pub fn analysis(workload: &'static str) -> Self {
        Self {
            label: format!("{workload}/analysis-baseline"),
            work: Box::new(move |ctx, scale| {
                let th = ctx.named_trace(workload, scale);
                ctx.analyze(&presets::baseline_4wide(), &th);
            }),
        }
    }

    /// Simulation of the named workload with one of the predictor
    /// generations swapped into the baseline machine (see
    /// [`experiments::generation_machine`]); `pred` must be a name from
    /// [`experiments::GENERATIONS`].
    pub fn predictor_sim(workload: &'static str, pred: &'static str) -> Self {
        Self {
            label: format!("{workload}/sim-pred-{pred}"),
            work: Box::new(move |ctx, scale| {
                let cfg = experiments::generation_machine(pred).unwrap_or_else(|| {
                    std::panic::panic_any(CellError::invalid_config(
                        format!("{workload}/sim-pred-{pred}"),
                        format!("unknown predictor generation `{pred}`"),
                    ))
                });
                let th = ctx.named_trace(workload, scale);
                ctx.sim(&Simulator::new(cfg), &th);
            }),
        }
    }

    /// Interval-model analysis of the named workload under a predictor
    /// generation, plus the static-bounds/classification artifacts the
    /// metrics collector reads for the per-class penalty attribution.
    pub fn predictor_analysis(workload: &'static str, pred: &'static str) -> Self {
        Self {
            label: format!("{workload}/analysis-pred-{pred}"),
            work: Box::new(move |ctx, scale| {
                let cfg = experiments::generation_machine(pred).unwrap_or_else(|| {
                    std::panic::panic_any(CellError::invalid_config(
                        format!("{workload}/analysis-pred-{pred}"),
                        format!("unknown predictor generation `{pred}`"),
                    ))
                });
                let th = ctx.named_trace(workload, scale);
                ctx.analyze(&cfg, &th);
                ctx.static_bounds(&cfg, &th);
                ctx.compiled(&th);
            }),
        }
    }

    /// Baseline static-bounds pass plus trace compilation for the named
    /// workload: the artifacts behind the per-class penalty attribution
    /// (`bmp_analyze::staticpass::classify`).
    pub fn class_analysis(workload: &'static str) -> Self {
        Self {
            label: format!("{workload}/classes-baseline"),
            work: Box::new(move |ctx, scale| {
                let th = ctx.named_trace(workload, scale);
                ctx.static_bounds(&presets::baseline_4wide(), &th);
                ctx.compiled(&th);
            }),
        }
    }

    /// Baseline-machine simulation of an executed RV32IM kernel
    /// (implies executing the kernel and recording its trace); `kernel`
    /// must be a name from [`bmp_isa::NAMES`].
    pub fn kernel_sim(kernel: &'static str) -> Self {
        Self {
            label: format!("{kernel}/kernel-sim"),
            work: Box::new(move |ctx, scale| {
                let th = ctx.kernel_trace(kernel, scale);
                ctx.sim(&Simulator::new(presets::baseline_4wide()), &th);
            }),
        }
    }

    /// Baseline interval-model analysis of an executed RV32IM kernel,
    /// plus the static-bounds and compiled-trace artifacts `bmp-verify`
    /// and the per-class attribution read back for executed cells.
    pub fn kernel_analysis(kernel: &'static str) -> Self {
        Self {
            label: format!("{kernel}/kernel-analysis"),
            work: Box::new(move |ctx, scale| {
                let cfg = presets::baseline_4wide();
                let th = ctx.kernel_trace(kernel, scale);
                ctx.analyze(&cfg, &th);
                ctx.static_bounds(&cfg, &th);
                ctx.compiled(&th);
            }),
        }
    }

    /// Runs the cell's work against the shared context.
    pub fn run(&self, ctx: &Ctx, scale: Scale) {
        (self.work)(ctx, scale);
    }
}

/// One experiment in the registry: its stable name, the shared cells it
/// fans out, and the function producing its table.
pub struct ExperimentDef {
    /// Stable identifier; matches the produced table's `id`.
    pub name: &'static str,
    /// Produces the experiment's table from the shared context.
    pub run: fn(&Ctx, Scale) -> Table,
    /// The shared `(workload × config)` cells this experiment needs.
    pub cells: fn() -> Vec<Cell>,
}

/// Every experiment of the reconstructed evaluation, in the canonical
/// order `run_all` reports them (E-T1 … E-F11, E-X1 … E-X11).
pub fn experiment_defs() -> Vec<ExperimentDef> {
    use experiments as ex;
    fn none() -> Vec<Cell> {
        Vec::new()
    }
    fn all_profiles(f: fn(&'static str) -> Cell) -> Vec<Cell> {
        spec::NAMES.iter().map(|n| f(n)).collect()
    }
    fn sim_and_analysis_all() -> Vec<Cell> {
        let mut cells = all_profiles(Cell::baseline_sim);
        cells.extend(all_profiles(Cell::analysis));
        cells
    }
    vec![
        ExperimentDef {
            name: "table1_config",
            run: |_, _| ex::table1_config(),
            cells: none,
        },
        ExperimentDef {
            name: "table2_benchmarks",
            run: ex::table2_benchmarks,
            cells: || all_profiles(Cell::warmup_sim),
        },
        ExperimentDef {
            name: "fig1_interval_profile",
            run: ex::fig1_interval_profile,
            cells: || vec![Cell::trace("crafty")],
        },
        ExperimentDef {
            name: "fig2_penalty_per_benchmark",
            run: ex::fig2_penalty_per_benchmark,
            cells: || {
                let mut cells = sim_and_analysis_all();
                cells.extend(all_profiles(Cell::oracle_sim));
                cells
            },
        },
        ExperimentDef {
            name: "fig3_penalty_vs_interval",
            run: ex::fig3_penalty_vs_interval,
            cells: || {
                let mut cells = Vec::new();
                for w in ["gzip", "gcc", "twolf"] {
                    cells.push(Cell::baseline_sim(w));
                    cells.push(Cell::analysis(w));
                }
                cells
            },
        },
        ExperimentDef {
            name: "fig4_interval_distribution",
            run: ex::fig4_interval_distribution,
            cells: || all_profiles(Cell::analysis),
        },
        ExperimentDef {
            name: "fig5_contributor_breakdown",
            run: ex::fig5_contributor_breakdown,
            cells: || all_profiles(Cell::analysis),
        },
        ExperimentDef {
            name: "fig6_pipeline_depth",
            run: ex::fig6_pipeline_depth,
            cells: || vec![Cell::trace("twolf"), Cell::trace("gcc")],
        },
        ExperimentDef {
            name: "fig7_fu_latency",
            run: ex::fig7_fu_latency,
            cells: || vec![Cell::trace("twolf")],
        },
        ExperimentDef {
            name: "fig8_ilp",
            run: ex::fig8_ilp,
            cells: none,
        },
        ExperimentDef {
            name: "fig9_l1d_misses",
            run: ex::fig9_l1d_misses,
            cells: none,
        },
        ExperimentDef {
            name: "fig10_model_validation",
            run: ex::fig10_model_validation,
            cells: sim_and_analysis_all,
        },
        ExperimentDef {
            name: "fig11_penalty_distribution",
            run: ex::fig11_penalty_distribution,
            cells: || {
                let mut cells = Vec::new();
                for w in ["gzip", "gcc", "twolf"] {
                    cells.push(Cell::baseline_sim(w));
                    cells.push(Cell::analysis(w));
                }
                cells
            },
        },
        ExperimentDef {
            name: "ex1_predictor_study",
            run: ex::ex1_predictor_study,
            cells: || vec![Cell::trace("twolf"), Cell::trace("gzip")],
        },
        ExperimentDef {
            name: "ex2_window_sweep",
            run: ex::ex2_window_sweep,
            cells: || vec![Cell::trace("twolf"), Cell::trace("gzip")],
        },
        ExperimentDef {
            name: "ex3_closed_form",
            run: ex::ex3_closed_form,
            cells: sim_and_analysis_all,
        },
        ExperimentDef {
            name: "ex4_prefetch_study",
            run: ex::ex4_prefetch_study,
            cells: || ["bzip2", "gzip", "mcf", "gcc"].map(Cell::trace).into(),
        },
        ExperimentDef {
            name: "ex5_occupancy_study",
            run: ex::ex5_occupancy_study,
            cells: || all_profiles(Cell::baseline_sim),
        },
        ExperimentDef {
            name: "ex6_replacement_study",
            run: ex::ex6_replacement_study,
            cells: || ["gzip", "parser", "mcf"].map(Cell::trace).into(),
        },
        ExperimentDef {
            name: "ex7_indirect_study",
            run: ex::ex7_indirect_study,
            cells: || ["perlbmk", "gap", "eon", "gcc"].map(Cell::trace).into(),
        },
        ExperimentDef {
            name: "ex8_warmup_study",
            run: ex::ex8_warmup_study,
            cells: || {
                let mut cells = Vec::new();
                for w in ["gzip", "gcc", "mcf", "crafty"] {
                    cells.push(Cell::baseline_sim(w));
                    cells.push(Cell::warmup_sim(w));
                }
                cells
            },
        },
        ExperimentDef {
            name: "ex_predictor_generations",
            run: ex::ex_predictor_generations,
            cells: || {
                let mut cells = Vec::new();
                for w in ex::GENERATION_WORKLOADS {
                    for p in ex::GENERATIONS {
                        cells.push(Cell::predictor_sim(w, p));
                        cells.push(Cell::predictor_analysis(w, p));
                    }
                }
                cells
            },
        },
        ExperimentDef {
            name: "ex_h2p_contributors",
            run: ex::ex_h2p_contributors,
            cells: || {
                let mut cells = Vec::new();
                for w in ex::GENERATION_WORKLOADS {
                    cells.push(Cell::analysis(w));
                    cells.push(Cell::class_analysis(w));
                }
                cells
            },
        },
        ExperimentDef {
            name: "ex_isa_contributors",
            run: ex::ex_isa_contributors,
            cells: || {
                let mut cells = Vec::new();
                for k in bmp_isa::NAMES {
                    cells.push(Cell::kernel_sim(k));
                    cells.push(Cell::kernel_analysis(k));
                }
                cells
            },
        },
        ExperimentDef {
            name: "ex_isa_vs_synthetic",
            run: ex::ex_isa_vs_synthetic,
            cells: || {
                let mut cells = Vec::new();
                for k in bmp_isa::NAMES {
                    cells.push(Cell::kernel_sim(k));
                    cells.push(Cell::kernel_analysis(k));
                }
                for w in ex::ISA_COMPARISON_WORKLOADS {
                    cells.push(Cell::baseline_sim(w));
                    cells.push(Cell::analysis(w));
                }
                cells
            },
        },
    ]
}

/// Wall-clock of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// The experiment's stable name.
    pub name: &'static str,
    /// Wall-clock milliseconds spent producing its table (after the cell
    /// fan-out phase).
    pub millis: u128,
}

/// Cache hit/miss counters per artifact kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheReport {
    /// Trace lookups served from the cache.
    pub trace_hits: u64,
    /// Trace synthesis computations.
    pub trace_misses: u64,
    /// Compiled-trace lookups served from the cache.
    pub compiled_hits: u64,
    /// Trace compilations (structure-of-arrays transform).
    pub compiled_misses: u64,
    /// Superblock-map lookups served from the cache.
    pub superblock_hits: u64,
    /// Superblock segmentation passes.
    pub superblock_misses: u64,
    /// Simulation lookups served from the cache.
    pub sim_hits: u64,
    /// Simulation runs.
    pub sim_misses: u64,
    /// Analysis lookups served from the cache.
    pub analysis_hits: u64,
    /// Interval-model analysis computations.
    pub analysis_misses: u64,
    /// Static-bounds lookups served from the cache.
    pub static_hits: u64,
    /// Static-bounds (dependence-graph pass) computations.
    pub static_misses: u64,
}

impl CacheReport {
    /// Overall hit fraction across all artifact kinds.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.trace_hits
            + self.compiled_hits
            + self.superblock_hits
            + self.sim_hits
            + self.analysis_hits
            + self.static_hits;
        let total = hits
            + self.trace_misses
            + self.compiled_misses
            + self.superblock_misses
            + self.sim_misses
            + self.analysis_misses
            + self.static_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Everything `run_all` reports: the tables in canonical order plus the
/// wall-clock/cache accounting that seeds `results/bench_timings.json`.
#[derive(Debug)]
pub struct EngineReport {
    /// The experiment tables, merged by stable experiment index.
    pub tables: Vec<Table>,
    /// Per-experiment wall-clock, in registry order.
    pub timings: Vec<ExperimentTiming>,
    /// Deduplicated shared cells fanned out in phase 1.
    pub cells: usize,
    /// Cells before deduplication (the sharing the cache exposed).
    pub cells_requested: usize,
    /// Wall-clock milliseconds of the cell fan-out phase.
    pub cell_millis: u128,
    /// Wall-clock milliseconds of the whole run.
    pub total_millis: u128,
    /// Worker threads used.
    pub threads: usize,
    /// Cache accounting at the end of the run.
    pub cache: CacheReport,
}

impl EngineReport {
    /// Renders the human-readable timing summary.
    pub fn to_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "\n## Timing report ({} threads, {} shared cells from {} requests, \
             fan-out {} ms, total {} ms)\n\n",
            self.threads, self.cells, self.cells_requested, self.cell_millis, self.total_millis
        ));
        for t in &self.timings {
            out.push_str(&format!("{:>8} ms  {}\n", t.millis, t.name));
        }
        let c = &self.cache;
        out.push_str(&format!(
            "cache: traces {}/{} hits, compiled {}/{} hits, superblocks {}/{} hits, \
             sims {}/{} hits, analyses {}/{} hits, statics {}/{} hits \
             ({:.0}% overall hit rate)\n",
            c.trace_hits,
            c.trace_hits + c.trace_misses,
            c.compiled_hits,
            c.compiled_hits + c.compiled_misses,
            c.superblock_hits,
            c.superblock_hits + c.superblock_misses,
            c.sim_hits,
            c.sim_hits + c.sim_misses,
            c.analysis_hits,
            c.analysis_hits + c.analysis_misses,
            c.static_hits,
            c.static_hits + c.static_misses,
            c.hit_rate() * 100.0
        ));
        out
    }

    /// Renders the machine-readable report written to
    /// `results/bench_timings.json` (hand-formatted: the workspace has no
    /// JSON serializer).
    pub fn to_json(&self, scale: Scale) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"ops\": {},\n", scale.ops));
        out.push_str(&format!("  \"seed\": {},\n", scale.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"cells\": {},\n", self.cells));
        out.push_str(&format!(
            "  \"cells_requested\": {},\n",
            self.cells_requested
        ));
        out.push_str(&format!("  \"cell_millis\": {},\n", self.cell_millis));
        out.push_str(&format!("  \"total_millis\": {},\n", self.total_millis));
        let c = &self.cache;
        out.push_str(&format!(
            "  \"cache\": {{ \"trace_hits\": {}, \"trace_misses\": {}, \
             \"compiled_hits\": {}, \"compiled_misses\": {}, \
             \"superblock_hits\": {}, \"superblock_misses\": {}, \
             \"sim_hits\": {}, \"sim_misses\": {}, \
             \"analysis_hits\": {}, \"analysis_misses\": {}, \
             \"static_hits\": {}, \"static_misses\": {} }},\n",
            c.trace_hits,
            c.trace_misses,
            c.compiled_hits,
            c.compiled_misses,
            c.superblock_hits,
            c.superblock_misses,
            c.sim_hits,
            c.sim_misses,
            c.analysis_hits,
            c.analysis_misses,
            c.static_hits,
            c.static_misses
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, t) in self.timings.iter().enumerate() {
            let comma = if i + 1 == self.timings.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"millis\": {} }}{}\n",
                t.name, t.millis, comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// How one experiment ended under the fault-tolerant run layer.
#[derive(Debug)]
pub enum OutcomeKind {
    /// The experiment produced its table (possibly after retries).
    Completed(Table),
    /// The experiment was skipped: the resume journal showed a matching
    /// completed record with its CSV still on disk.
    Skipped,
    /// Every attempt failed; the last structured error is attached.
    Failed(CellError),
}

/// One experiment's result under [`Engine::run_tolerant`].
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// The experiment's stable registry name.
    pub name: &'static str,
    /// Index in the run's definition slice (stable merge order).
    pub index: usize,
    /// Attempts consumed (0 for skipped, ≥ 1 otherwise).
    pub attempts: u32,
    /// Wall-clock milliseconds across all attempts.
    pub millis: u128,
    /// What happened.
    pub kind: OutcomeKind,
}

impl ExperimentOutcome {
    /// The error of a failed outcome.
    pub fn error(&self) -> Option<&CellError> {
        match &self.kind {
            OutcomeKind::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Retry/skip/fault policy for a tolerant run.
#[derive(Debug)]
pub struct RunPolicy<'a> {
    /// Attempts per experiment (minimum 1; retried work recomputes
    /// through the content-addressed cache, so a successful retry is
    /// byte-identical to a first-try success).
    pub attempts: u32,
    /// Experiment names to skip (from a `--resume` journal).
    pub skip: HashSet<String>,
    /// Fault-injection schedule consulted before each unit of work.
    pub faults: &'a FaultPlan,
}

impl<'a> RunPolicy<'a> {
    /// A policy with `attempts` tries, no skips and no faults.
    pub fn with_attempts(attempts: u32, faults: &'a FaultPlan) -> Self {
        Self {
            attempts: attempts.max(1),
            skip: HashSet::new(),
            faults,
        }
    }
}

/// Content fingerprint of one experiment at one scale — the identity a
/// `run_journal.json` record is trusted by on `--resume`: a completed
/// record only short-circuits a re-run when its fingerprint matches the
/// current `(name, ops, seed)`.
pub fn experiment_fingerprint(name: &str, scale: Scale) -> u64 {
    cache_key(
        "experiment",
        &[
            bmp_uarch::fp::fnv1a(name.as_bytes()),
            scale.ops as u64,
            scale.seed,
        ],
    )
}

/// Attempts per experiment from `BMP_ATTEMPTS` (default 2, minimum 1).
pub fn attempts_from_env() -> u32 {
    std::env::var("BMP_ATTEMPTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(2)
}

/// Everything a fault-tolerant run reports: per-experiment outcomes in
/// stable order, soft cell-phase errors, and the same wall-clock/cache
/// accounting as [`EngineReport`].
#[derive(Debug)]
pub struct TolerantReport {
    /// Per-experiment outcomes, merged by stable experiment index.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Failures from the phase-1 cell fan-out. These are *soft*: the
    /// affected experiments recompute the artifacts themselves (the
    /// failed cache slots are retryable), so a cell error here only
    /// matters if the owning experiment also ultimately failed.
    pub cell_errors: Vec<CellError>,
    /// Deduplicated shared cells fanned out in phase 1.
    pub cells: usize,
    /// Cells before deduplication.
    pub cells_requested: usize,
    /// Wall-clock milliseconds of the cell fan-out phase.
    pub cell_millis: u128,
    /// Wall-clock milliseconds of the whole run.
    pub total_millis: u128,
    /// Worker threads used.
    pub threads: usize,
    /// Cache accounting at the end of the run.
    pub cache: CacheReport,
    /// Per-workload sim-vs-static surrogate comparison (empty unless
    /// filled in by `run_all` after the run; see [`crate::surrogate`]).
    pub surrogate: Vec<crate::surrogate::SurrogateRow>,
}

impl TolerantReport {
    /// Outcomes that ultimately failed.
    pub fn failures(&self) -> impl Iterator<Item = &ExperimentOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.kind, OutcomeKind::Failed(_)))
    }

    /// Renders the partial-results summary: counts, per-experiment
    /// status lines for anything that was retried, skipped or failed,
    /// and the cache accounting.
    pub fn to_summary(&self) -> String {
        let (mut completed, mut skipped, mut failed) = (0usize, 0usize, 0usize);
        for o in &self.outcomes {
            match o.kind {
                OutcomeKind::Completed(_) => completed += 1,
                OutcomeKind::Skipped => skipped += 1,
                OutcomeKind::Failed(_) => failed += 1,
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "\n## Run report ({} threads, {} shared cells from {} requests, \
             fan-out {} ms, total {} ms)\n\n\
             {completed} completed, {skipped} skipped (resume), {failed} failed\n",
            self.threads, self.cells, self.cells_requested, self.cell_millis, self.total_millis
        ));
        for o in &self.outcomes {
            match &o.kind {
                OutcomeKind::Completed(_) if o.attempts > 1 => {
                    out.push_str(&format!(
                        "  {:<28} completed after {} attempts\n",
                        o.name, o.attempts
                    ));
                }
                OutcomeKind::Skipped => {
                    out.push_str(&format!("  {:<28} skipped (journal match)\n", o.name));
                }
                OutcomeKind::Failed(e) => {
                    out.push_str(&format!(
                        "  {:<28} FAILED after {} attempts: {e}\n",
                        o.name, o.attempts
                    ));
                }
                OutcomeKind::Completed(_) => {}
            }
        }
        for e in &self.cell_errors {
            out.push_str(&format!("  cell {e} (recovered by owning experiment)\n"));
        }
        if !self.surrogate.is_empty() {
            out.push_str(
                "\n## Static surrogate (mean penalty per misprediction, baseline machine)\n\n",
            );
            out.push_str(&format!(
                "  {:<10} {:>12} {:>10} {:>10} {:>8}  bounds\n",
                "workload", "mispredicts", "simulated", "static", "err"
            ));
            for r in &self.surrogate {
                out.push_str(&format!(
                    "  {:<10} {:>12} {:>10.2} {:>10.2} {:>7.1}%  {}\n",
                    r.workload,
                    r.mispredicts,
                    r.sim_mean_penalty,
                    r.static_mean_penalty,
                    r.rel_err * 100.0,
                    if r.within_bounds { "ok" } else { "VIOLATED" }
                ));
            }
            if let Some(m) = crate::surrogate::median_rel_err(&self.surrogate) {
                out.push_str(&format!("  median error {:.1}%\n", m * 100.0));
            }
        }
        out
    }

    /// Renders the machine-readable timing report written to
    /// `results/bench_timings.json` — the [`EngineReport::to_json`] shape
    /// plus per-experiment `status`/`attempts` fields.
    pub fn to_json(&self, scale: Scale) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"ops\": {},\n", scale.ops));
        out.push_str(&format!("  \"seed\": {},\n", scale.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"cells\": {},\n", self.cells));
        out.push_str(&format!(
            "  \"cells_requested\": {},\n",
            self.cells_requested
        ));
        out.push_str(&format!("  \"cell_millis\": {},\n", self.cell_millis));
        out.push_str(&format!("  \"total_millis\": {},\n", self.total_millis));
        let c = &self.cache;
        out.push_str(&format!(
            "  \"cache\": {{ \"trace_hits\": {}, \"trace_misses\": {}, \
             \"compiled_hits\": {}, \"compiled_misses\": {}, \
             \"superblock_hits\": {}, \"superblock_misses\": {}, \
             \"sim_hits\": {}, \"sim_misses\": {}, \
             \"analysis_hits\": {}, \"analysis_misses\": {}, \
             \"static_hits\": {}, \"static_misses\": {} }},\n",
            c.trace_hits,
            c.trace_misses,
            c.compiled_hits,
            c.compiled_misses,
            c.superblock_hits,
            c.superblock_misses,
            c.sim_hits,
            c.sim_misses,
            c.analysis_hits,
            c.analysis_misses,
            c.static_hits,
            c.static_misses
        ));
        out.push_str("  \"surrogate\": [\n");
        for (i, r) in self.surrogate.iter().enumerate() {
            let comma = if i + 1 == self.surrogate.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"mispredicts\": {}, \
                 \"sim_mean_penalty\": {:.4}, \"static_mean_penalty\": {:.4}, \
                 \"rel_err\": {:.4}, \"within_bounds\": {} }}{}\n",
                r.workload,
                r.mispredicts,
                r.sim_mean_penalty,
                r.static_mean_penalty,
                r.rel_err,
                r.within_bounds,
                comma
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"experiments\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 == self.outcomes.len() {
                ""
            } else {
                ","
            };
            let status = match o.kind {
                OutcomeKind::Completed(_) => "completed",
                OutcomeKind::Skipped => "skipped",
                OutcomeKind::Failed(_) => "failed",
            };
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"status\": \"{status}\", \
                 \"attempts\": {}, \"millis\": {} }}{}\n",
                o.name, o.attempts, o.millis, comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The engine: a pool plus a shared context.
#[derive(Debug)]
pub struct Engine {
    pool: ThreadPool,
    ctx: Ctx,
}

impl Engine {
    /// An engine running on `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: ThreadPool::new(threads),
            ctx: Ctx::new(),
        }
    }

    /// An engine sized from `BMP_THREADS` / available parallelism.
    pub fn from_env() -> Self {
        Self::new(threads_from_env())
    }

    /// An engine on `threads` workers with an explicit simulator engine
    /// choice (ignoring `BMP_REFERENCE_ENGINE`) — `bmp-profile` uses this
    /// to run the same suite through both engines in one process.
    pub fn with_engine(threads: usize, choice: EngineChoice) -> Self {
        Self {
            pool: ThreadPool::new(threads),
            ctx: Ctx::with_engine(choice),
        }
    }

    /// The shared context (for reuse after a run).
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// Runs every experiment and returns tables (stable order) plus the
    /// timing report.
    pub fn run_all(&self, scale: Scale) -> EngineReport {
        self.run(&experiment_defs(), scale)
    }

    /// Runs the named experiments (in registry order) — the subset entry
    /// point the determinism test drives.
    ///
    /// # Panics
    ///
    /// Panics if a name is not in the registry.
    pub fn run_named(&self, names: &[&str], scale: Scale) -> EngineReport {
        let defs: Vec<ExperimentDef> = experiment_defs()
            .into_iter()
            .filter(|d| names.contains(&d.name))
            .collect();
        assert_eq!(defs.len(), names.len(), "unknown experiment name");
        self.run(&defs, scale)
    }

    /// Collects the deduplicated shared cells of `defs` (and the
    /// pre-dedup request count).
    fn collect_cells(defs: &[ExperimentDef]) -> (Vec<Cell>, usize) {
        let mut cells: Vec<Cell> = Vec::new();
        let mut requested = 0usize;
        for def in defs {
            for cell in (def.cells)() {
                requested += 1;
                if !cells.iter().any(|c| c.label == cell.label) {
                    cells.push(cell);
                }
            }
        }
        (cells, requested)
    }

    /// Runs `defs` through the two-phase job graph.
    fn run(&self, defs: &[ExperimentDef], scale: Scale) -> EngineReport {
        let start = Instant::now();
        let threads = self.pool.threads();

        // Phase 1: fan out the deduplicated shared cells. Skipped on one
        // thread — the legacy path computes everything lazily in place,
        // and the cache makes the results identical either way.
        let (cells, requested) = Self::collect_cells(defs);
        let cell_start = Instant::now();
        if threads > 1 {
            self.pool
                .map(cells.len(), |i| cells[i].run(&self.ctx, scale));
        }
        let cell_millis = cell_start.elapsed().as_millis();

        // Phase 2: the experiments themselves, merged by stable index.
        let timed: Vec<(Table, u128)> = self.pool.map(defs.len(), |i| {
            let t0 = Instant::now();
            let table = (defs[i].run)(&self.ctx, scale);
            (table, t0.elapsed().as_millis())
        });
        let mut tables = Vec::with_capacity(timed.len());
        let mut timings = Vec::with_capacity(timed.len());
        for (def, (table, millis)) in defs.iter().zip(timed) {
            debug_assert_eq!(def.name, table.id, "registry name matches table id");
            tables.push(table);
            timings.push(ExperimentTiming {
                name: def.name,
                millis,
            });
        }
        EngineReport {
            tables,
            timings,
            cells: cells.len(),
            cells_requested: requested,
            cell_millis,
            total_millis: start.elapsed().as_millis(),
            threads,
            cache: self.ctx.cache_stats(),
        }
    }

    /// Runs every experiment under the fault-tolerant layer: panics are
    /// isolated per cell and per experiment, failed experiments are
    /// retried up to `policy.attempts` times, skipped names short-circuit,
    /// and `on_done` is invoked from the worker thread the moment each
    /// experiment settles (for incremental CSV saves and journal writes).
    pub fn run_all_tolerant(
        &self,
        scale: Scale,
        policy: &RunPolicy<'_>,
        on_done: &(dyn Fn(&ExperimentOutcome) + Sync),
    ) -> TolerantReport {
        self.run_tolerant(&experiment_defs(), scale, policy, on_done)
    }

    /// Fault-tolerant form of `Engine::run` over explicit `defs`.
    ///
    /// Determinism contract: because every artifact is a pure function
    /// of its cache key, a retried experiment recomputes exactly the
    /// same table a first-try success would have produced — fault
    /// schedules change *which* experiments fail, never the bytes of
    /// the tables that survive.
    pub fn run_tolerant(
        &self,
        defs: &[ExperimentDef],
        scale: Scale,
        policy: &RunPolicy<'_>,
        on_done: &(dyn Fn(&ExperimentOutcome) + Sync),
    ) -> TolerantReport {
        let start = Instant::now();
        let threads = self.pool.threads();

        // Phase 1: the shared-cell fan-out, with per-cell isolation. A
        // failing cell is *soft*: its cache slot stays retryable and the
        // owning experiments recompute it in phase 2 (under their own
        // retry budget), so the error is only reported for forensics.
        let (cells, requested) = Self::collect_cells(defs);
        let cell_start = Instant::now();
        let mut cell_errors: Vec<CellError> = Vec::new();
        if threads > 1 {
            let results = self.pool.try_map(cells.len(), |i| {
                let label = &cells[i].label;
                if policy
                    .faults
                    .fires(FaultKind::Panic, FaultSite::cell(label).index(i))
                {
                    std::panic::panic_any(CellError::panic(label.clone(), "injected panic fault"));
                }
                cells[i].run(&self.ctx, scale);
            });
            for (i, r) in results.into_iter().enumerate() {
                if let Err(mut e) = r {
                    // try_map labels raw panics by job index; the cell
                    // label is the better name.
                    if e.context.starts_with('#') {
                        e.context = cells[i].label.clone();
                    }
                    cell_errors.push(e);
                }
            }
        }
        let cell_millis = cell_start.elapsed().as_millis();

        // Phase 2: the experiments, each with its own retry budget. The
        // pool job itself never panics — failure is data here.
        let outcomes: Vec<ExperimentOutcome> = self.pool.map(defs.len(), |i| {
            let def = &defs[i];
            let outcome = if policy.skip.contains(def.name) {
                ExperimentOutcome {
                    name: def.name,
                    index: i,
                    attempts: 0,
                    millis: 0,
                    kind: OutcomeKind::Skipped,
                }
            } else {
                let t0 = Instant::now();
                let mut attempts = 0u32;
                let kind = loop {
                    attempts += 1;
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let site = FaultSite::exp(def.name).index(i);
                        if policy.faults.fires(FaultKind::Panic, site) {
                            std::panic::panic_any(CellError::panic(
                                def.name,
                                "injected panic fault",
                            ));
                        }
                        if policy.faults.fires(FaultKind::Budget, site) {
                            trip_budget(def.name);
                        }
                        (def.run)(&self.ctx, scale)
                    }));
                    match result {
                        Ok(table) => break OutcomeKind::Completed(table),
                        Err(payload) => {
                            let err = CellError::from_panic_payload(def.name, payload);
                            if attempts >= policy.attempts.max(1) {
                                break OutcomeKind::Failed(err);
                            }
                        }
                    }
                };
                ExperimentOutcome {
                    name: def.name,
                    index: i,
                    attempts,
                    millis: t0.elapsed().as_millis(),
                    kind,
                }
            };
            on_done(&outcome);
            outcome
        });

        TolerantReport {
            outcomes,
            cell_errors,
            cells: cells.len(),
            cells_requested: requested,
            cell_millis,
            total_millis: start.elapsed().as_millis(),
            threads,
            cache: self.ctx.cache_stats(),
            surrogate: Vec::new(),
        }
    }
}

/// Deliberately exhausts a tiny cycle budget so a *real*
/// [`bmp_sim::SimError::BudgetExceeded`] travels the failure path — the
/// `budget:` fault kind proves the watchdog wiring without contaminating
/// any cached artifact (the sacrificial run bypasses the [`Ctx`] cache).
fn trip_budget(context: &str) -> ! {
    let trace = micro::chain_kernel(10_000, 1, 64, OpClass::IntAlu);
    let sim = Simulator::with_options(presets::test_tiny(), SimOptions::with_max_cycles(50));
    match sim.try_run(&trace) {
        Err(e) => std::panic::panic_any(CellError::budget(context, e)),
        Ok(_) => unreachable!("a 50-cycle budget cannot complete 10k serial ops"),
    }
}

/// Worker count from the environment: `BMP_THREADS` when set (minimum 1;
/// `1` selects the exact legacy sequential path), otherwise the machine's
/// available parallelism.
pub fn threads_from_env() -> usize {
    std::env::var("BMP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_experiments_once() {
        let defs = experiment_defs();
        assert_eq!(defs.len(), 25);
        let mut names: Vec<&str> = defs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25, "registry names must be unique");
    }

    #[test]
    fn ctx_shares_traces_and_sims() {
        let ctx = Ctx::new();
        let scale = Scale {
            ops: 2_000,
            seed: 9,
        };
        let a = ctx.named_trace("gzip", scale);
        let b = ctx.named_trace("gzip", scale);
        assert!(Arc::ptr_eq(a.trace(), b.trace()));
        assert_eq!(a.key(), b.key());
        let sim = Simulator::new(presets::baseline_4wide());
        let r1 = ctx.sim(&sim, &a);
        let r2 = ctx.sim(&sim, &b);
        assert!(Arc::ptr_eq(&r1, &r2));
        let stats = ctx.cache_stats();
        assert_eq!(stats.trace_misses, 1);
        assert_eq!(stats.trace_hits, 1);
        assert_eq!(stats.sim_misses, 1);
        assert_eq!(stats.sim_hits, 1);
    }

    #[test]
    fn different_scales_do_not_collide() {
        let ctx = Ctx::new();
        let a = ctx.named_trace(
            "gzip",
            Scale {
                ops: 1_000,
                seed: 1,
            },
        );
        let b = ctx.named_trace(
            "gzip",
            Scale {
                ops: 1_000,
                seed: 2,
            },
        );
        assert_ne!(a.key(), b.key());
        assert!(!Arc::ptr_eq(a.trace(), b.trace()));
    }

    fn defs_for(names: &[&str]) -> Vec<ExperimentDef> {
        let defs: Vec<ExperimentDef> = experiment_defs()
            .into_iter()
            .filter(|d| names.contains(&d.name))
            .collect();
        assert_eq!(defs.len(), names.len());
        defs
    }

    #[test]
    fn tolerant_run_isolates_an_injected_failure() {
        let scale = Scale {
            ops: 2_000,
            seed: 3,
        };
        let faults = FaultPlan::parse("panic:exp=fig8_ilp").unwrap();
        let policy = RunPolicy::with_attempts(2, &faults);
        let engine = Engine::new(2);
        let defs = defs_for(&["table1_config", "fig8_ilp", "fig4_interval_distribution"]);
        let seen = std::sync::Mutex::new(Vec::new());
        let report = engine.run_tolerant(&defs, scale, &policy, &|o| {
            seen.lock().unwrap().push(o.name);
        });
        assert_eq!(report.outcomes.len(), 3);
        let failed: Vec<_> = report.failures().collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].name, "fig8_ilp");
        assert_eq!(failed[0].attempts, 2, "the retry budget was consumed");
        assert_eq!(failed[0].error().unwrap().message, "injected panic fault");
        for o in &report.outcomes {
            if o.name != "fig8_ilp" {
                assert!(
                    matches!(o.kind, OutcomeKind::Completed(_)),
                    "{} must survive its sibling's failure",
                    o.name
                );
            }
        }
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(
            seen,
            ["fig4_interval_distribution", "fig8_ilp", "table1_config"],
            "on_done fires once per experiment"
        );
        assert!(report.to_summary().contains("FAILED after 2 attempts"));
    }

    #[test]
    fn tolerant_retry_is_deterministic() {
        let scale = Scale {
            ops: 2_000,
            seed: 3,
        };
        let names = ["fig4_interval_distribution"];
        let clean = Engine::new(2).run_named(&names, scale);

        // times=1: the first attempt panics, the retry succeeds — and
        // produces byte-identical CSV to the clean run.
        let faults = FaultPlan::parse("panic:exp=fig4_interval_distribution:times=1").unwrap();
        let policy = RunPolicy::with_attempts(2, &faults);
        let report = Engine::new(2).run_tolerant(&defs_for(&names), scale, &policy, &|_| {});
        let o = &report.outcomes[0];
        assert_eq!(o.attempts, 2);
        match &o.kind {
            OutcomeKind::Completed(table) => {
                assert_eq!(table.to_csv(), clean.tables[0].to_csv());
            }
            other => panic!("expected completion after retry, got {other:?}"),
        }
    }

    #[test]
    fn tolerant_run_skips_journaled_names() {
        let scale = Scale {
            ops: 2_000,
            seed: 3,
        };
        let faults = FaultPlan::none();
        let mut policy = RunPolicy::with_attempts(1, &faults);
        policy.skip.insert("table1_config".to_string());
        let defs = defs_for(&["table1_config", "fig8_ilp"]);
        let report = Engine::new(1).run_tolerant(&defs, scale, &policy, &|_| {});
        assert!(matches!(report.outcomes[0].kind, OutcomeKind::Skipped));
        assert_eq!(report.outcomes[0].attempts, 0);
        assert!(matches!(report.outcomes[1].kind, OutcomeKind::Completed(_)));
    }

    #[test]
    fn budget_fault_travels_the_watchdog_path() {
        let scale = Scale {
            ops: 1_000,
            seed: 3,
        };
        let faults = FaultPlan::parse("budget:exp=table1_config").unwrap();
        let policy = RunPolicy::with_attempts(1, &faults);
        let report =
            Engine::new(1).run_tolerant(&defs_for(&["table1_config"]), scale, &policy, &|_| {});
        let e = report.outcomes[0].error().expect("budget fault must fail");
        assert_eq!(e.kind, crate::error::CellErrorKind::Budget);
        assert!(e.message.contains("cycle budget exceeded"));
    }

    #[test]
    fn cell_faults_are_soft_and_recovered() {
        let scale = Scale {
            ops: 2_000,
            seed: 3,
        };
        // fig4 fans out per-workload analysis cells; panic one of them.
        let faults = FaultPlan::parse("panic:cell=gzip/analysis-baseline").unwrap();
        let policy = RunPolicy::with_attempts(1, &faults);
        let clean = Engine::new(2).run_named(&["fig4_interval_distribution"], scale);
        let report = Engine::new(2).run_tolerant(
            &defs_for(&["fig4_interval_distribution"]),
            scale,
            &policy,
            &|_| {},
        );
        assert_eq!(report.cell_errors.len(), 1);
        assert_eq!(report.cell_errors[0].context, "gzip/analysis-baseline");
        match &report.outcomes[0].kind {
            OutcomeKind::Completed(table) => {
                assert_eq!(
                    table.to_csv(),
                    clean.tables[0].to_csv(),
                    "the experiment recomputed the failed cell and matched the clean run"
                );
            }
            other => panic!("cell failure must not fail the experiment, got {other:?}"),
        }
    }

    #[test]
    fn unknown_profile_is_a_structured_error() {
        let ctx = Ctx::new();
        let scale = Scale { ops: 100, seed: 1 };
        let e = ctx.try_named_trace("ghost", scale).unwrap_err();
        assert_eq!(e.kind, crate::error::CellErrorKind::UnknownProfile);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            ctx.named_trace("ghost", scale);
        }))
        .unwrap_err();
        assert_eq!(
            caught.downcast_ref::<CellError>().map(|e| e.kind),
            Some(crate::error::CellErrorKind::UnknownProfile),
            "the panicking form carries the structured payload"
        );
    }

    #[test]
    fn run_named_merges_in_registry_order() {
        let engine = Engine::new(2);
        let scale = Scale {
            ops: 2_000,
            seed: 3,
        };
        let report = engine.run_named(&["fig4_interval_distribution", "table1_config"], scale);
        assert_eq!(report.tables.len(), 2);
        // Registry order, not argument order or completion order.
        assert_eq!(report.tables[0].id, "table1_config");
        assert_eq!(report.tables[1].id, "fig4_interval_distribution");
        assert_eq!(report.threads, 2);
        let json = report.to_json(scale);
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"table1_config\""));
    }
}
