//! Result tables: the common output format of every experiment.

/// A titled table of results, printable as markdown and serializable as
/// CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Stable identifier (`table1_config`, `fig3_penalty_vs_interval` …);
    /// also the CSV file stem.
    pub id: String,
    /// Human-readable title, including the experiment id from DESIGN.md.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers in table {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Renders as a GitHub-flavored markdown table with the title above.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("\n## {}\n\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers first; cells containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals (the harness-wide convention).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_roundtrip() {
        let mut t = Table::new("t", "Test (E-T0)", &["a", "b"]);
        t.push_row(vec!["1".into(), "x,y".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## Test (E-T0)"));
        assert!(md.contains("| 1 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", "T", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn quotes_are_escaped() {
        let mut t = Table::new("t", "T", &["a"]);
        t.push_row(vec!["say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "a\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
    }
}
