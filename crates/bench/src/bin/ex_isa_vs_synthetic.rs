//! Regenerates extension experiment "ex_isa_vs_synthetic" — see DESIGN.md.

fn main() -> std::process::ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let ctx = bmp_bench::Ctx::new();
    bmp_bench::run_bin(|| bmp_bench::experiments::ex_isa_vs_synthetic(&ctx, scale))
}
