//! Regenerates "E-F4: interval length distribution" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig4_interval_distribution(scale));
}
