//! Performance profile of the simulation pipeline: times trace
//! synthesis, trace compilation, the superblock pass, simulation
//! (event-driven vs reference engine) and interval-model analysis, then
//! writes the machine-readable report to `results/BENCH_sim.json`.
//!
//! Two measurements are taken, both single-threaded:
//!
//! 1. **Per-workload** — each SPECint-like workload at the baseline
//!    4-wide config: every phase timed in isolation, simulation
//!    best-of-`BMP_PROFILE_REPS` (default 3) per engine with the two
//!    engines' runs *alternated* (event, reference, event, ...) so host
//!    load drifts hit both sides equally, and the two `SimResult`s
//!    asserted bit-identical. Event-engine time is split into the cycle
//!    loop proper and result assembly, and each workload reports its
//!    superblock segmentation (region count, mean region length).
//! 2. **Suite** — the full `run_all` experiment registry (every config
//!    sweep of the paper reproduction) executed
//!    `BMP_PROFILE_SUITE_REPS` (default 2) times per engine through the
//!    shared artifact cache, alternating engines pass-by-pass,
//!    comparing best-of sim-phase compute time. This is the default
//!    workload mix the harness actually runs, so its sim-phase ratio is
//!    the headline speedup.
//!
//! Scale with `BMP_OPS` / `BMP_SEED` as usual. Set `BMP_PROFILE_GATE`
//! to a ratio (e.g. `1.8`) to exit nonzero when the suite sim-phase
//! speedup falls below it — the CI perf-smoke gate.

use std::process::ExitCode;
use std::time::Instant;

use bmp_bench::{Engine, EngineChoice, Scale};
use bmp_core::PenaltyModel;
use bmp_sim::Simulator;
use bmp_trace::SuperblockMap;
use bmp_uarch::presets;
use bmp_workloads::spec;

/// One workload's phase timings (seconds) and superblock shape.
struct WorkloadRow {
    name: &'static str,
    trace_s: f64,
    compile_s: f64,
    superblock_s: f64,
    sim_event_s: f64,
    execute_s: f64,
    assemble_s: f64,
    sim_reference_s: f64,
    analysis_s: f64,
    regions: u64,
    mean_region_len: f64,
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(default)
}

fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

fn profile_workloads(scale: Scale, reps: u32) -> Vec<WorkloadRow> {
    let cfg = presets::baseline_4wide();
    let mut rows = Vec::new();
    for name in spec::NAMES {
        let profile = spec::by_name(name).expect("registry name");
        let t0 = Instant::now();
        let trace = profile.generate(scale.ops, scale.seed);
        let trace_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let compiled = trace.compile();
        let compile_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let sb = SuperblockMap::build(&compiled, cfg.caches.l1i().line_bytes());
        let superblock_s = t0.elapsed().as_secs_f64();
        let sb_stats = sb.stats();

        let sim = Simulator::new(cfg.clone());
        let mut sim_event_s = f64::MAX;
        let mut execute_s = f64::MAX;
        let mut assemble_s = f64::MAX;
        let mut sim_reference_s = f64::MAX;
        let mut r_event = None;
        let mut r_reference = None;
        // Alternate the engines within each rep so slow drifts in host
        // load degrade both measurements, not just whichever engine
        // happened to run last.
        for _ in 0..reps {
            let t0 = Instant::now();
            let (r, phases) = sim
                .try_run_compiled_phased(&compiled, &sb)
                .expect("profiled run stays within budget");
            let total = t0.elapsed().as_secs_f64();
            if total < sim_event_s {
                sim_event_s = total;
                execute_s = phases.execute_ns as f64 * 1e-9;
                assemble_s = phases.assemble_ns as f64 * 1e-9;
            }
            r_event = Some(r);
            let t0 = Instant::now();
            r_reference = Some(sim.run_reference(&trace));
            sim_reference_s = sim_reference_s.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(
            r_event, r_reference,
            "engines must produce bit-identical results on {name}"
        );

        let t0 = Instant::now();
        let _ = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let analysis_s = t0.elapsed().as_secs_f64();

        eprintln!(
            "{name:>10}: trace {:>8} ms  compile {:>7} ms  superblock {:>6} ms  \
             sim new {:>8} ms  sim ref {:>8} ms  analysis {:>7} ms  ({:.2}x)",
            ms(trace_s),
            ms(compile_s),
            ms(superblock_s),
            ms(sim_event_s),
            ms(sim_reference_s),
            ms(analysis_s),
            sim_reference_s / sim_event_s
        );
        rows.push(WorkloadRow {
            name,
            trace_s,
            compile_s,
            superblock_s,
            sim_event_s,
            execute_s,
            assemble_s,
            sim_reference_s,
            analysis_s,
            regions: sb_stats.regions,
            mean_region_len: sb_stats.mean_len,
        });
    }
    rows
}

/// Runs the full experiment registry single-threaded through one engine
/// and returns `(phase report, experiment count, wall seconds)`.
fn suite_pass(scale: Scale, choice: EngineChoice) -> (bmp_bench::PhaseReport, usize, f64) {
    let engine = Engine::with_engine(1, choice);
    let t0 = Instant::now();
    let report = engine.run_all(scale);
    let wall_s = t0.elapsed().as_secs_f64();
    (engine.ctx().phase_report(), report.timings.len(), wall_s)
}

/// Best-of-`reps` suite runs per engine, alternating engines between
/// passes so host-load drift cannot systematically favor either side.
#[allow(clippy::type_complexity)]
fn profile_suite(
    scale: Scale,
    reps: u32,
) -> (
    (bmp_bench::PhaseReport, usize, f64),
    (bmp_bench::PhaseReport, usize, f64),
) {
    let mut best_event: Option<(bmp_bench::PhaseReport, usize, f64)> = None;
    let mut best_reference: Option<(bmp_bench::PhaseReport, usize, f64)> = None;
    for pass in 0..reps {
        eprintln!("-- suite pass {}/{reps}, event-driven engine --", pass + 1);
        let ev = suite_pass(scale, EngineChoice::EventDriven);
        if best_event
            .as_ref()
            .is_none_or(|b| ev.0.sim_nanos < b.0.sim_nanos)
        {
            best_event = Some(ev);
        }
        eprintln!("-- suite pass {}/{reps}, reference engine --", pass + 1);
        let rf = suite_pass(scale, EngineChoice::Reference);
        if best_reference
            .as_ref()
            .is_none_or(|b| rf.0.sim_nanos < b.0.sim_nanos)
        {
            best_reference = Some(rf);
        }
    }
    (
        best_event.expect("at least one suite pass"),
        best_reference.expect("at least one suite pass"),
    )
}

fn phase_json(label: &str, p: bmp_bench::PhaseReport, wall_s: f64) -> String {
    format!(
        "    \"{label}\": {{ \"trace_ms\": {}, \"compile_ms\": {}, \"sim_ms\": {}, \
         \"analysis_ms\": {}, \"wall_ms\": {} }}",
        ms(p.trace_nanos as f64 * 1e-9),
        ms(p.compile_nanos as f64 * 1e-9),
        ms(p.sim_nanos as f64 * 1e-9),
        ms(p.analysis_nanos as f64 * 1e-9),
        ms(wall_s)
    )
}

fn main() -> ExitCode {
    let scale = Scale::from_env();
    let reps = env_u32("BMP_PROFILE_REPS", 3);
    let suite_reps = env_u32("BMP_PROFILE_SUITE_REPS", 2);
    let gate: Option<f64> = std::env::var("BMP_PROFILE_GATE")
        .ok()
        .and_then(|v| v.parse().ok());
    eprintln!(
        "profiling at {} ops per workload, seed {}, best of {} reps \
         ({} suite passes), 1 thread",
        scale.ops, scale.seed, reps, suite_reps
    );

    eprintln!("\n-- per-workload phases (baseline 4-wide) --");
    let rows = profile_workloads(scale, reps);
    let wl_event: f64 = rows.iter().map(|r| r.sim_event_s).sum();
    let wl_reference: f64 = rows.iter().map(|r| r.sim_reference_s).sum();
    eprintln!(
        "{:>10}: sim new {:>8} ms  sim ref {:>8} ms  ({:.2}x)",
        "TOTAL",
        ms(wl_event),
        ms(wl_reference),
        wl_reference / wl_event
    );

    eprintln!("\n-- full experiment suite (run_all registry) --");
    let ((p_event, experiments, wall_event), (p_reference, _, wall_reference)) =
        profile_suite(scale, suite_reps);
    let suite_speedup = p_reference.sim_nanos as f64 / p_event.sim_nanos as f64;
    eprintln!(
        "suite ({experiments} experiments): sim new {} ms  sim ref {} ms  ({suite_speedup:.2}x); \
         wall {} ms vs {} ms",
        ms(p_event.sim_nanos as f64 * 1e-9),
        ms(p_reference.sim_nanos as f64 * 1e-9),
        ms(wall_event),
        ms(wall_reference),
    );

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"ops\": {},\n", scale.ops));
    out.push_str(&format!("  \"seed\": {},\n", scale.seed));
    out.push_str("  \"threads\": 1,\n");
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"suite_reps\": {suite_reps},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"trace_ms\": {}, \"compile_ms\": {}, \
             \"superblock_ms\": {}, \"sim_event_ms\": {}, \"execute_ms\": {}, \
             \"assemble_ms\": {}, \"sim_reference_ms\": {}, \"analysis_ms\": {}, \
             \"regions\": {}, \"mean_region_len\": {:.2}, \"speedup\": {:.3} }}{}\n",
            r.name,
            ms(r.trace_s),
            ms(r.compile_s),
            ms(r.superblock_s),
            ms(r.sim_event_s),
            ms(r.execute_s),
            ms(r.assemble_s),
            ms(r.sim_reference_s),
            ms(r.analysis_s),
            r.regions,
            r.mean_region_len,
            r.sim_reference_s / r.sim_event_s,
            comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"workload_sim_totals\": {{ \"event_ms\": {}, \"reference_ms\": {}, \
         \"speedup\": {:.3} }},\n",
        ms(wl_event),
        ms(wl_reference),
        wl_reference / wl_event
    ));
    out.push_str("  \"suite\": {\n");
    out.push_str(&format!("    \"experiments\": {experiments},\n"));
    out.push_str(&phase_json("event", p_event, wall_event));
    out.push_str(",\n");
    out.push_str(&phase_json("reference", p_reference, wall_reference));
    out.push_str(",\n");
    out.push_str(&format!("    \"sim_speedup\": {suite_speedup:.3}\n"));
    out.push_str("  }\n}\n");

    // A profiling run is still useful when `results/` is missing or
    // unwritable (read-only checkout, CI scratch dir): fall back to
    // printing the report on stdout instead of failing the run.
    let dir = std::path::Path::new("results");
    let path = dir.join("BENCH_sim.json");
    let saved =
        std::fs::create_dir_all(dir).and_then(|()| bmp_bench::write_atomic(&path, out.as_bytes()));
    match saved {
        Ok(()) => eprintln!("[saved {}]", path.display()),
        Err(e) => {
            eprintln!(
                "warning: cannot write {}: {e}; printing report to stdout",
                path.display()
            );
            println!("{out}");
        }
    }
    if let Some(g) = gate {
        if suite_speedup < g {
            eprintln!("FAIL: suite sim speedup {suite_speedup:.2}x below gate {g:.2}x");
            return ExitCode::FAILURE;
        }
        eprintln!("gate passed: suite sim speedup {suite_speedup:.2}x >= {g:.2}x");
    }
    ExitCode::SUCCESS
}
