//! Regenerates "E-F5: five-contributor penalty decomposition" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig5_contributor_breakdown(scale));
}
