//! Regenerates "E-F5: five-contributor penalty decomposition" — see DESIGN.md experiment index.

fn main() -> std::process::ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let ctx = bmp_bench::Ctx::new();
    bmp_bench::run_bin(|| bmp_bench::experiments::fig5_contributor_breakdown(&ctx, scale))
}
