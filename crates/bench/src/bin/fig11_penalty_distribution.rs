//! Regenerates "E-F11: distribution of branch resolution times" — see
//! DESIGN.md.

fn main() -> std::process::ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let ctx = bmp_bench::Ctx::new();
    bmp_bench::run_bin(|| bmp_bench::experiments::fig11_penalty_distribution(&ctx, scale))
}
