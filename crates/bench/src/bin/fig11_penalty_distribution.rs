//! Regenerates "E-F11: distribution of branch resolution times" — see
//! DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig11_penalty_distribution(scale));
}
