//! Regenerates every table and figure of the reconstructed evaluation
//! (DESIGN.md, E-T1 … E-F11, E-X1 … E-X8) and writes the CSVs under
//! `results/`, plus the timing report to `results/bench_timings.json`.
//!
//! Scale with `BMP_OPS` / `BMP_SEED`; pick the worker count with
//! `BMP_THREADS` (default: available parallelism, `1` = sequential).
//! The produced CSVs are byte-identical for any thread count.

use std::process::ExitCode;

fn main() -> ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let engine = bmp_bench::Engine::from_env();
    eprintln!(
        "running all experiments at {} ops per workload on {} threads \
         (BMP_OPS / BMP_THREADS to change)",
        scale.ops,
        bmp_bench::engine::threads_from_env()
    );
    let report = engine.run_all(scale);
    for table in &report.tables {
        if let Err(e) = bmp_bench::run_and_save(table) {
            eprintln!("error: cannot write results for {}: {e}", table.id);
            return ExitCode::FAILURE;
        }
    }
    print!("{}", report.to_summary());
    let timings = std::path::Path::new("results").join("bench_timings.json");
    if let Err(e) = std::fs::write(&timings, report.to_json(scale)) {
        eprintln!("error: cannot write {}: {e}", timings.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[saved {}]", timings.display());
    ExitCode::SUCCESS
}
