//! Regenerates every table and figure of the reconstructed evaluation
//! (DESIGN.md, E-T1 … E-F10) and writes the CSVs under `results/`.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    eprintln!(
        "running all experiments at {} ops per workload (BMP_OPS to change)",
        scale.ops
    );
    for table in bmp_bench::experiments::all(scale) {
        bmp_bench::run_and_save(&table);
    }
}
