//! Regenerates every table and figure of the reconstructed evaluation
//! (DESIGN.md, E-T1 … E-F11, E-X1 … E-X8) and writes the CSVs under
//! `results/`, plus the timing report to `results/bench_timings.json`.
//!
//! The run is fault-tolerant and crash-safe (see `docs/ROBUSTNESS.md`):
//! a panicking experiment is isolated, retried (`BMP_ATTEMPTS`, default
//! 2), and finally recorded as failed in `results/run_journal.json`
//! while every other experiment still completes. CSVs and the journal
//! are written atomically the moment each experiment settles, so an
//! interrupted run leaves a consistent partial results directory.
//!
//! Flags:
//!
//! * `--resume` — skip experiments whose journal record is completed,
//!   fingerprint-matches the current `BMP_OPS`/`BMP_SEED`, and whose
//!   CSV still exists *with the journalled content hash*: a deleted,
//!   truncated or otherwise altered CSV triggers a recompute, never a
//!   silent skip. (Legacy journals without a hash fall back to the
//!   existence check.)
//! * `--inject <spec>` — deterministic fault injection (overrides the
//!   `BMP_FAULT` environment variable); see `docs/ROBUSTNESS.md`.
//!
//! `BMP_STORE=<dir>` adds the crash-safe persistent artifact tier: the
//! content-addressed on-disk store (`bmp_core::store`) is opened —
//! running its recovery scan, which quarantines any corrupt records —
//! and attached under the in-memory cache, so simulation results
//! survive process death and a restarted run resumes from disk instead
//! of recomputing. `BMP_STORE_MAX_BYTES` bounds its size (LRU
//! eviction). `torn-write`/`corrupt` fault kinds target its writes; see
//! `docs/ROBUSTNESS.md` and `docs/SERVING.md`.
//!
//! Scale with `BMP_OPS` / `BMP_SEED`; pick the worker count with
//! `BMP_THREADS` (default: available parallelism, `1` = sequential).
//! The produced CSVs are byte-identical for any thread count and any
//! survivable fault schedule — and for `BMP_METRICS` on or off: with
//! `BMP_METRICS=1` the run *additionally* writes per-experiment
//! accounting files under `results/metrics/` (render them with
//! `bmp-report`; schema in `docs/OBSERVABILITY.md`) and records their
//! paths in the journal.
//!
//! Exit codes: 0 all good; 1 at least one experiment ultimately failed;
//! 2 experiments succeeded but output could not be written.

use std::collections::HashSet;
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use bmp_bench::engine::{
    attempts_from_env, experiment_defs, experiment_fingerprint, threads_from_env,
    ExperimentOutcome, OutcomeKind, RunPolicy,
};
use bmp_bench::{metrics, save_under_with, write_atomic, FaultPlan};
use bmp_core::journal::{ExperimentRecord, RunJournal, RunStatus};
use bmp_core::store::fnv1a;
use bmp_core::{DiskStore, StoreConfig};

/// The journalled content hash of a CSV body: 16 lowercase hex digits
/// of its FNV-1a, the format `--resume` validates against.
fn csv_hash(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

fn usage() -> ExitCode {
    eprintln!("usage: run_all [--resume] [--inject <fault-spec>]");
    eprintln!("  fault-spec: kind:target[:times=N][;...] with kind panic|io|budget");
    eprintln!("  and target exp=NAME|cell=LABEL|index=N|file=NAME");
    ExitCode::from(bmp_bench::EXIT_WRITE_FAILED)
}

fn main() -> ExitCode {
    let mut resume = false;
    let mut inject: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => resume = true,
            "--inject" => match args.next() {
                Some(spec) => inject = Some(spec),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let faults = match inject.map_or_else(FaultPlan::from_env, |s| FaultPlan::parse(&s)) {
        Ok(plan) => Arc::new(plan),
        Err(e) => {
            eprintln!("error: bad fault spec: {e}");
            return usage();
        }
    };

    let scale = bmp_bench::Scale::from_env();
    let results_dir = Path::new("results");
    let journal_path = results_dir.join("run_journal.json");

    // On --resume, trust journal records that are completed, fingerprint
    // the current configuration, and still have their CSV on disk.
    let mut skip: HashSet<String> = HashSet::new();
    let mut journal = RunJournal::new(scale.ops as u64, scale.seed);
    if resume {
        match std::fs::read_to_string(&journal_path) {
            Ok(text) => match RunJournal::parse(&text) {
                Ok(prior) => {
                    for rec in prior.experiments {
                        let current_fp = experiment_fingerprint(&rec.name, scale);
                        let csv = results_dir.join(format!("{}.csv", rec.name));
                        if rec.status != RunStatus::Completed || rec.fingerprint != current_fp {
                            continue;
                        }
                        // The journal's content hash is the real check:
                        // a CSV that was deleted, truncated or edited
                        // since the journal was written recomputes.
                        // Records from older journals carry no hash and
                        // resume on existence alone.
                        let intact = match (&rec.csv_fnv, std::fs::read(&csv)) {
                            (Some(want), Ok(bytes)) => {
                                let ok = csv_hash(&bytes) == *want;
                                if !ok {
                                    eprintln!(
                                        "warning: {} no longer matches its journalled \
                                         hash; recomputing",
                                        csv.display()
                                    );
                                }
                                ok
                            }
                            (None, Ok(_)) => true,
                            (_, Err(_)) => false,
                        };
                        if intact {
                            skip.insert(rec.name.clone());
                            journal.upsert(rec);
                        }
                    }
                }
                Err(e) => eprintln!("warning: ignoring unreadable journal: {e}"),
            },
            Err(e) => eprintln!(
                "warning: --resume but no journal at {}: {e}",
                journal_path.display()
            ),
        }
        eprintln!(
            "resuming: {} completed experiments match the journal and will be skipped",
            skip.len()
        );
    }

    let engine = bmp_bench::Engine::from_env();

    // Optional crash-safe persistent tier: BMP_STORE=<dir> opens the
    // content-addressed on-disk store (running its recovery scan) and
    // attaches it under the in-memory cache, so simulation results
    // survive process death. Failure to open degrades gracefully to an
    // in-memory-only run — persistence is never worth failing a run.
    if let Ok(dir) = std::env::var("BMP_STORE") {
        if !dir.is_empty() {
            let config = StoreConfig {
                max_bytes: std::env::var("BMP_STORE_MAX_BYTES")
                    .ok()
                    .and_then(|v| v.parse().ok()),
            };
            match DiskStore::open(Path::new(&dir), config) {
                Ok((store, recovery)) => {
                    eprintln!(
                        "store {dir}: {} valid record(s), {} quarantined, \
                         {} temp file(s) swept, {} live byte(s)",
                        recovery.valid,
                        recovery.quarantined,
                        recovery.temps_removed,
                        recovery.live_bytes
                    );
                    store.set_fault_hook(FaultPlan::store_hook(Arc::clone(&faults)));
                    engine.ctx().set_store(Arc::new(store));
                }
                Err(e) => {
                    eprintln!("warning: cannot open store {dir}: {e}; running without persistence")
                }
            }
        }
    }

    eprintln!(
        "running all experiments at {} ops per workload on {} threads \
         (BMP_OPS / BMP_THREADS to change)",
        scale.ops,
        threads_from_env()
    );
    if !faults.is_empty() {
        eprintln!("fault injection active: {faults}");
    }

    let mut policy = RunPolicy::with_attempts(attempts_from_env(), &faults);
    policy.skip = skip;

    // Shared with the worker threads through on_done: the journal (with
    // carried-over resume records) and the write-failure log.
    let journal = Mutex::new(journal);
    let write_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

    let on_done = |outcome: &ExperimentOutcome| {
        let mut record = ExperimentRecord {
            name: outcome.name.to_string(),
            status: RunStatus::Completed,
            fingerprint: experiment_fingerprint(outcome.name, scale),
            attempts: outcome.attempts,
            error: None,
            metrics: None,
            csv_fnv: None,
        };
        match &outcome.kind {
            // Skipped experiments keep their carried-over record.
            OutcomeKind::Skipped => return,
            OutcomeKind::Completed(table) => {
                if let Err(e) = save_under_with(results_dir, table, &faults) {
                    let msg = format!("cannot write results for {}: {e}", table.id);
                    eprintln!("error: {msg}");
                    write_errors.lock().expect("write log poisoned").push(msg);
                    record.status = RunStatus::Failed;
                    record.error = Some(format!("write failed: {e}"));
                } else {
                    // Journal the content hash of what was just
                    // persisted, so a later --resume can tell "still
                    // the bytes I wrote" from "deleted or corrupted".
                    record.csv_fnv = Some(csv_hash(table.to_csv().as_bytes()));
                }
                if record.status == RunStatus::Completed && metrics::metrics_enabled() {
                    // Aggregate this experiment's per-interval records
                    // out of the warm cache and persist them next to
                    // the CSV. Metrics are advisory like the journal: a
                    // write failure is logged for the exit code but
                    // never fails the experiment.
                    if let Some(def) = experiment_defs()
                        .into_iter()
                        .find(|d| d.name == outcome.name)
                    {
                        let doc = metrics::collect_experiment(engine.ctx(), &def, scale);
                        match metrics::save_metrics(results_dir, &doc) {
                            Ok(_) => record.metrics = Some(metrics::relative_path(&doc.name)),
                            Err(e) => {
                                let msg = format!("cannot write metrics for {}: {e}", outcome.name);
                                eprintln!("error: {msg}");
                                write_errors.lock().expect("write log poisoned").push(msg);
                            }
                        }
                    }
                }
            }
            OutcomeKind::Failed(e) => {
                record.status = RunStatus::Failed;
                record.error = Some(e.to_string());
            }
        }
        let mut j = journal.lock().expect("journal poisoned");
        j.upsert(record);
        // Deterministic on-disk order regardless of completion order.
        j.experiments.sort_by(|a, b| a.name.cmp(&b.name));
        if std::fs::create_dir_all(results_dir)
            .and_then(|()| write_atomic(&journal_path, j.to_json().as_bytes()))
            .is_err()
        {
            // The journal is advisory; a CSV write failure is already
            // reported above, and a journal-only failure must not kill
            // the run. Record it for the exit code.
            write_errors
                .lock()
                .expect("write log poisoned")
                .push(format!("cannot write {}", journal_path.display()));
        }
    };

    let mut report = engine.run_all_tolerant(scale, &policy, &on_done);
    // Sim-vs-static surrogate comparison, computed entirely from the
    // run's warm cache (only the static pass itself is new work).
    report.surrogate = bmp_bench::surrogate::collect(engine.ctx(), scale);

    // Tables in stable registry order, exactly like the strict path —
    // printed after the run so worker threads never interleave output.
    for outcome in &report.outcomes {
        match &outcome.kind {
            OutcomeKind::Completed(table) => {
                println!("{}", table.to_markdown());
                println!("[saved results/{}.csv]", table.id);
            }
            OutcomeKind::Skipped => println!("[skipped {} (resume)]", outcome.name),
            OutcomeKind::Failed(_) => {}
        }
    }
    print!("{}", report.to_summary());

    let timings = results_dir.join("bench_timings.json");
    let timings_ok = std::fs::create_dir_all(results_dir)
        .and_then(|()| write_atomic(&timings, report.to_json(scale).as_bytes()));
    match timings_ok {
        Ok(()) => eprintln!("[saved {}]", timings.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", timings.display());
            write_errors
                .lock()
                .expect("write log poisoned")
                .push(format!("cannot write {}", timings.display()));
        }
    }

    let failed = report.failures().count();
    let write_failed = write_errors.into_inner().expect("write log poisoned");
    if failed > 0 {
        eprintln!(
            "{failed} experiment(s) failed; see {} (re-run with --resume after fixing)",
            journal_path.display()
        );
        ExitCode::from(bmp_bench::EXIT_EXPERIMENT_FAILED)
    } else if !write_failed.is_empty() {
        eprintln!(
            "all experiments completed but {} write(s) failed",
            write_failed.len()
        );
        ExitCode::from(bmp_bench::EXIT_WRITE_FAILED)
    } else {
        ExitCode::from(bmp_bench::EXIT_OK)
    }
}
