//! Regenerates extension experiment "ex5_occupancy_study" — see DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::ex5_occupancy_study(scale));
}
