//! Regenerates "E-F6: penalty vs frontend depth" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig6_pipeline_depth(scale));
}
