//! Regenerates "E-T2: benchmark characteristics" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::table2_benchmarks(scale));
}
