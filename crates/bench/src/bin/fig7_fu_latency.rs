//! Regenerates "E-F7: resolution vs FU latency scaling" — see DESIGN.md experiment index.

fn main() -> std::process::ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let ctx = bmp_bench::Ctx::new();
    bmp_bench::run_bin(|| bmp_bench::experiments::fig7_fu_latency(&ctx, scale))
}
