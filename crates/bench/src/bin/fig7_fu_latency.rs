//! Regenerates "E-F7: resolution vs FU latency scaling" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig7_fu_latency(scale));
}
