//! Regenerates "E-F1: dispatch-rate transient around a misprediction" — see DESIGN.md experiment index.

fn main() -> std::process::ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let ctx = bmp_bench::Ctx::new();
    bmp_bench::run_bin(|| bmp_bench::experiments::fig1_interval_profile(&ctx, scale))
}
