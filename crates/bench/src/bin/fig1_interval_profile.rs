//! Regenerates "E-F1: dispatch-rate transient around a misprediction" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig1_interval_profile(scale));
}
