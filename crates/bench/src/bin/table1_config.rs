//! Regenerates "E-T1: baseline machine configuration" — see DESIGN.md.

fn main() {
    bmp_bench::run_and_save(&bmp_bench::experiments::table1_config());
}
