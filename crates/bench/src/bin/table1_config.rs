//! Regenerates "E-T1: baseline machine configuration" — see DESIGN.md.

fn main() -> std::process::ExitCode {
    bmp_bench::run_bin(bmp_bench::experiments::table1_config)
}
