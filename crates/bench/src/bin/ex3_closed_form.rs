//! Regenerates extension experiment "ex3_closed_form" — see DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::ex3_closed_form(scale));
}
