//! Regenerates "E-F3: resolution vs instructions since last miss event" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig3_penalty_vs_interval(scale));
}
