//! Regenerates "E-F3: resolution vs instructions since last miss event" — see DESIGN.md experiment index.

fn main() -> std::process::ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let ctx = bmp_bench::Ctx::new();
    bmp_bench::run_bin(|| bmp_bench::experiments::fig3_penalty_vs_interval(&ctx, scale))
}
