//! Regenerates "E-F9: resolution vs L1D size" — see DESIGN.md experiment index.

fn main() -> std::process::ExitCode {
    let scale = bmp_bench::Scale::from_env();
    let ctx = bmp_bench::Ctx::new();
    bmp_bench::run_bin(|| bmp_bench::experiments::fig9_l1d_misses(&ctx, scale))
}
