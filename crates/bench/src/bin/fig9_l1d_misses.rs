//! Regenerates "E-F9: resolution vs L1D size" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig9_l1d_misses(scale));
}
