//! Regenerates extension experiment "ex7_indirect_study" — see DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::ex7_indirect_study(scale));
}
