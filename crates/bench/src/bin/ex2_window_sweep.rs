//! Regenerates extension experiment "ex2_window_sweep" — see DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::ex2_window_sweep(scale));
}
