//! Regenerates "E-F2: penalty per benchmark vs frontend length" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig2_penalty_per_benchmark(scale));
}
