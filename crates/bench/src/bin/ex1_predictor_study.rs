//! Regenerates extension experiment "ex1_predictor_study" — see DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::ex1_predictor_study(scale));
}
