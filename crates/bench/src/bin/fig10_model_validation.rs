//! Regenerates "E-F10: model vs simulator validation" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig10_model_validation(scale));
}
