//! Regenerates extension experiment "ex6_replacement_study" — see DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::ex6_replacement_study(scale));
}
