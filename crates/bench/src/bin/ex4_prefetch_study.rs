//! Regenerates extension experiment "ex4_prefetch_study" — see DESIGN.md.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::ex4_prefetch_study(scale));
}
