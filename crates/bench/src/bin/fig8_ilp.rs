//! Regenerates "E-F8: resolution vs dependence chain length" — see DESIGN.md experiment index.

fn main() {
    let scale = bmp_bench::Scale::from_env();
    bmp_bench::run_and_save(&bmp_bench::experiments::fig8_ilp(scale));
}
