//! Renders `results/metrics/*.json` (written by `run_all` under
//! `BMP_METRICS=1`) into human tables, flat CSV, or a diff against a
//! prior run — the reading side of the observability layer documented
//! in `docs/OBSERVABILITY.md`.
//!
//! ```sh
//! bmp-report                         # tables from results/metrics/
//! bmp-report path/to/metrics         # explicit metrics directory
//! bmp-report --csv                   # one flat CSV on stdout
//! bmp-report --json                  # one JSON document on stdout
//! bmp-report --diff old/metrics      # compare against a prior run
//! ```
//!
//! Exit codes: 0 success (for `--diff`: no differences); 1 `--diff`
//! found differences — scriptable regression triage, like `diff(1)`;
//! 2 a metrics directory could not be read or parsed.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use bmp_bench::report;

/// Writes to stdout, swallowing broken-pipe errors so
/// `bmp-report | head` exits cleanly instead of panicking.
fn out(text: &str) {
    let _ = write!(std::io::stdout(), "{text}");
}

fn usage() -> ExitCode {
    eprintln!("usage: bmp-report [DIR] [--csv] [--json] [--diff OLD_DIR]");
    eprintln!("  DIR defaults to results/metrics");
    ExitCode::from(bmp_bench::EXIT_WRITE_FAILED)
}

fn main() -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut csv = false;
    let mut json = false;
    let mut diff_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--json" => json = true,
            "--diff" => match args.next() {
                Some(d) => diff_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::from(bmp_bench::EXIT_OK);
            }
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            _ => return usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| PathBuf::from("results/metrics"));

    let docs = match report::load_dir(&dir) {
        Ok(docs) => docs,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("hint: metrics files are written by run_all under BMP_METRICS=1");
            return ExitCode::from(bmp_bench::EXIT_WRITE_FAILED);
        }
    };

    if let Some(old_dir) = diff_dir {
        let old = match report::load_dir(&old_dir) {
            Ok(docs) => docs,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(bmp_bench::EXIT_WRITE_FAILED);
            }
        };
        let d = report::diff(&old, &docs);
        out(&d.render());
        return if d.is_empty() {
            ExitCode::from(bmp_bench::EXIT_OK)
        } else {
            ExitCode::from(bmp_bench::EXIT_EXPERIMENT_FAILED)
        };
    }

    if csv {
        out(&report::to_csv(&docs));
        return ExitCode::from(bmp_bench::EXIT_OK);
    }

    if json {
        out(&report::to_json(&docs));
        return ExitCode::from(bmp_bench::EXIT_OK);
    }

    if docs.is_empty() {
        eprintln!(
            "no metrics files under {} (run run_all with BMP_METRICS=1 first)",
            dir.display()
        );
        return ExitCode::from(bmp_bench::EXIT_OK);
    }
    for t in report::summary_tables(&docs) {
        out(&format!("{}\n", t.to_markdown()));
    }
    for t in report::cpi_stack_tables(&docs) {
        out(&format!("{}\n", t.to_markdown()));
    }
    for t in report::class_stack_tables(&docs) {
        out(&format!("{}\n", t.to_markdown()));
    }
    ExitCode::from(bmp_bench::EXIT_OK)
}
