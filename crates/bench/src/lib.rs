//! Experiment harness for the `mispredict` workspace.
//!
//! Every table and figure of the reconstructed evaluation (see
//! `DESIGN.md`, experiment index E-T1 … E-F11 and E-X1 … E-X8) is implemented as a
//! function in [`experiments`] returning a [`Table`]; the binaries under
//! `src/bin/` are thin wrappers that run one experiment each, print the
//! table and write it to `results/<name>.csv`. `run_all` schedules
//! everything through the parallel [`engine`]: experiments fan out over a
//! work-stealing [`pool`], and every synthesized trace, simulation result
//! and interval-model analysis is computed once into the shared
//! content-addressed [`artifacts`] cache.
//!
//! Experiments scale with the `BMP_OPS` environment variable (dynamic
//! instructions per workload; default 200 000) and `BMP_SEED` (default
//! 42), so CI can run cheap versions and full runs stay reproducible.
//! `BMP_THREADS` picks the worker count (default: available parallelism;
//! `1` is the exact legacy sequential path). Results are independent of
//! the thread count, byte for byte.
//!
//! `BMP_METRICS=1` turns on the observability layer: simulations collect
//! per-interval accounting records and `run_all` writes one aggregated
//! metrics file per experiment under `results/metrics/` (see [`metrics`],
//! the `bmp-report` binary, and `docs/OBSERVABILITY.md`). Off by default;
//! when off the CSV outputs are byte-identical either way.

#![forbid(unsafe_code)]

pub mod artifacts;
pub mod codec;
pub mod convert;
pub mod engine;
pub mod error;
pub mod experiments;
pub mod fault;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod scale;
pub mod serve;
pub mod surrogate;
pub mod table;

pub use engine::{Ctx, Engine, EngineChoice, PhaseReport};
pub use error::{CellError, CellErrorKind};
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use metrics::{collect_experiment, metrics_enabled, MetricsRecorder};
pub use scale::Scale;
pub use table::Table;

/// Exit code when every experiment completed and every write succeeded.
pub const EXIT_OK: u8 = 0;
/// Exit code when at least one experiment (cell) ultimately failed.
pub const EXIT_EXPERIMENT_FAILED: u8 = 1;
/// Exit code when the experiments succeeded but persisting their output
/// did not — so callers can tell "your model broke" from "your disk did".
pub const EXIT_WRITE_FAILED: u8 = 2;

// The crash-safe write primitive moved to `bmp_core::io` (the store and
// journal share it); re-exported here so every existing call site —
// and the doc references across the workspace — keep working.
pub use bmp_core::io::write_atomic;

/// Persists the table's CSV as `<dir>/<id>.csv`, creating `dir` first.
/// The write is crash-safe (see [`write_atomic`]).
///
/// # Errors
///
/// Returns the underlying I/O error when the directory or the CSV file
/// cannot be written.
pub fn save_under(dir: &std::path::Path, table: &Table) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", table.id));
    write_atomic(&path, table.to_csv().as_bytes())?;
    Ok(path)
}

/// [`save_under`] with a fault-injection hook: an `io:file=<table id>`
/// rule in `faults` fails the write with an injected error before any
/// byte reaches disk.
///
/// # Errors
///
/// The injected error, or any real I/O error from [`save_under`].
pub fn save_under_with(
    dir: &std::path::Path,
    table: &Table,
    faults: &fault::FaultPlan,
) -> std::io::Result<std::path::PathBuf> {
    if faults.fires(fault::FaultKind::Io, fault::FaultSite::file(&table.id)) {
        return Err(fault::FaultPlan::io_error(&table.id));
    }
    save_under(dir, table)
}

/// Runs one experiment end-to-end: print the table, persist the CSV under
/// `results/`.
///
/// # Errors
///
/// Returns the underlying I/O error when the results directory or the CSV
/// file cannot be written.
pub fn run_and_save(table: &Table) -> std::io::Result<()> {
    println!("{}", table.to_markdown());
    let path = save_under(std::path::Path::new("results"), table)?;
    println!("[saved {}]", path.display());
    Ok(())
}

/// Binary wrapper for the single-experiment binaries: produce the table
/// with `make` (panics are caught and classified), print it, persist the
/// CSV under `results/`.
///
/// Exit codes distinguish the failure domains: [`EXIT_EXPERIMENT_FAILED`]
/// when `make` fails (the model/simulation is at fault),
/// [`EXIT_WRITE_FAILED`] when the experiment succeeded but its output
/// could not be written (the environment is at fault).
pub fn run_bin<F>(make: F) -> std::process::ExitCode
where
    F: FnOnce() -> Table,
{
    let table = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(make)) {
        Ok(table) => table,
        Err(payload) => {
            let e = error::CellError::from_panic_payload("experiment", payload);
            eprintln!("error: experiment failed: {e}");
            return std::process::ExitCode::from(EXIT_EXPERIMENT_FAILED);
        }
    };
    match run_and_save(&table) {
        Ok(()) => std::process::ExitCode::from(EXIT_OK),
        Err(e) => {
            eprintln!("error: cannot write results for {}: {e}", table.id);
            std::process::ExitCode::from(EXIT_WRITE_FAILED)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_under_reports_unwritable_dir() {
        let mut t = Table::new("t_unwritable", "T", &["a"]);
        t.push_row(vec!["1".into()]);
        // A regular file occupies the directory path component, so the
        // save must fail with an error instead of panicking.
        let tmp = std::env::temp_dir().join("bmp_bench_unwritable_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let blocker = tmp.join("results");
        std::fs::write(&blocker, b"not a dir").unwrap();
        let r = save_under(&blocker, &t);
        std::fs::remove_dir_all(&tmp).ok();
        assert!(r.is_err(), "writing into a file-as-dir must fail");
    }

    #[test]
    fn save_under_roundtrips() {
        let mut t = Table::new("t_roundtrip", "T", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let tmp = std::env::temp_dir().join("bmp_bench_save_test");
        let path = save_under(&tmp, &t).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert_eq!(body, t.to_csv());
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp_droppings() {
        let tmp = std::env::temp_dir().join("bmp_bench_atomic_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let path = tmp.join("out.csv");
        write_atomic(&path, b"old").unwrap();
        write_atomic(&path, b"new").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new");
        let leftovers: Vec<_> = std::fs::read_dir(&tmp)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(leftovers.is_empty(), "no temp files survive a write");
    }

    #[test]
    fn write_atomic_failure_keeps_the_old_file() {
        let tmp = std::env::temp_dir().join("bmp_bench_atomic_fail_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let path = tmp.join("out.csv");
        write_atomic(&path, b"precious").unwrap();
        // Renaming over a path whose parent component is now a *file*
        // must fail without touching the original.
        let bad = tmp.join("out.csv").join("nested.csv");
        assert!(write_atomic(&bad, b"x").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "precious");
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn save_under_with_injects_io_faults() {
        let mut t = Table::new("t_fault", "T", &["a"]);
        t.push_row(vec!["1".into()]);
        let tmp = std::env::temp_dir().join("bmp_bench_save_fault_test");
        let plan = fault::FaultPlan::parse("io:file=t_fault:times=1").unwrap();
        let first = save_under_with(&tmp, &t, &plan);
        assert!(first.is_err(), "the injected fault fails the first write");
        assert!(
            !tmp.join("t_fault.csv").exists(),
            "the fault fires before any byte reaches disk"
        );
        let second = save_under_with(&tmp, &t, &plan).unwrap();
        let body = std::fs::read_to_string(second).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert_eq!(body, t.to_csv(), "a retry after the fault succeeds");
    }
}
