//! Experiment harness for the `mispredict` workspace.
//!
//! Every table and figure of the reconstructed evaluation (see
//! `DESIGN.md`, experiment index E-T1 … E-F11 and E-X1 … E-X8) is implemented as a
//! function in [`experiments`] returning a [`Table`]; the binaries under
//! `src/bin/` are thin wrappers that run one experiment each, print the
//! table and write it to `results/<name>.csv`. `run_all` schedules
//! everything through the parallel [`engine`]: experiments fan out over a
//! work-stealing [`pool`], and every synthesized trace, simulation result
//! and interval-model analysis is computed once into the shared
//! content-addressed [`artifacts`] cache.
//!
//! Experiments scale with the `BMP_OPS` environment variable (dynamic
//! instructions per workload; default 200 000) and `BMP_SEED` (default
//! 42), so CI can run cheap versions and full runs stay reproducible.
//! `BMP_THREADS` picks the worker count (default: available parallelism;
//! `1` is the exact legacy sequential path). Results are independent of
//! the thread count, byte for byte.

pub mod artifacts;
pub mod convert;
pub mod engine;
pub mod experiments;
pub mod pool;
pub mod scale;
pub mod table;

pub use engine::{Ctx, Engine, EngineChoice, PhaseReport};
pub use scale::Scale;
pub use table::Table;

/// Persists the table's CSV as `<dir>/<id>.csv`, creating `dir` first.
///
/// # Errors
///
/// Returns the underlying I/O error when the directory or the CSV file
/// cannot be written.
pub fn save_under(dir: &std::path::Path, table: &Table) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", table.id));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Runs one experiment end-to-end: print the table, persist the CSV under
/// `results/`.
///
/// # Errors
///
/// Returns the underlying I/O error when the results directory or the CSV
/// file cannot be written.
pub fn run_and_save(table: &Table) -> std::io::Result<()> {
    println!("{}", table.to_markdown());
    let path = save_under(std::path::Path::new("results"), table)?;
    println!("[saved {}]", path.display());
    Ok(())
}

/// Binary wrapper around [`run_and_save`]: reports a write failure on
/// stderr and turns it into a non-zero exit code.
pub fn run_bin(table: &Table) -> std::process::ExitCode {
    match run_and_save(table) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: cannot write results for {}: {e}", table.id);
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_under_reports_unwritable_dir() {
        let mut t = Table::new("t_unwritable", "T", &["a"]);
        t.push_row(vec!["1".into()]);
        // A regular file occupies the directory path component, so the
        // save must fail with an error instead of panicking.
        let tmp = std::env::temp_dir().join("bmp_bench_unwritable_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let blocker = tmp.join("results");
        std::fs::write(&blocker, b"not a dir").unwrap();
        let r = save_under(&blocker, &t);
        std::fs::remove_dir_all(&tmp).ok();
        assert!(r.is_err(), "writing into a file-as-dir must fail");
    }

    #[test]
    fn save_under_roundtrips() {
        let mut t = Table::new("t_roundtrip", "T", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let tmp = std::env::temp_dir().join("bmp_bench_save_test");
        let path = save_under(&tmp, &t).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert_eq!(body, t.to_csv());
    }
}
