//! Experiment harness for the `mispredict` workspace.
//!
//! Every table and figure of the reconstructed evaluation (see
//! `DESIGN.md`, experiment index E-T1 … E-F11 and E-X1 … E-X8) is implemented as a
//! function in [`experiments`] returning a [`Table`]; the binaries under
//! `src/bin/` are thin wrappers that run one experiment each, print the
//! table and write it to `results/<name>.csv`. `run_all` regenerates
//! everything.
//!
//! Experiments scale with the `BMP_OPS` environment variable (dynamic
//! instructions per workload; default 200 000) and `BMP_SEED` (default
//! 42), so CI can run cheap versions and full runs stay reproducible.

pub mod convert;
pub mod experiments;
pub mod scale;
pub mod table;

pub use scale::Scale;
pub use table::Table;

/// Runs one experiment end-to-end: compute, print, persist.
///
/// # Panics
///
/// Panics if the results directory cannot be written.
pub fn run_and_save(table: &Table) {
    println!("{}", table.to_markdown());
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(format!("{}.csv", table.id));
    std::fs::write(&path, table.to_csv()).expect("write results CSV");
    println!("[saved {}]", path.display());
}
