//! The shared trace/simulation/analysis cache.
//!
//! Every experiment cell is a pure function of its inputs: a trace is
//! fully determined by `(profile fingerprint, ops, seed)`, a simulation
//! by `(machine config + options fingerprint, trace key)`, and an
//! interval-model analysis by `(config fingerprint, trace key)`. The
//! cache is content-addressed on exactly those keys, so each artifact is
//! computed **once** per `run_all` and shared (as an `Arc`) across every
//! experiment that needs it, on every thread.
//!
//! Concurrent lookups of the same key are collapsed: the first caller
//! computes while later callers block and then receive the same shared
//! instance — never a duplicate computation, never a different value.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Hit/miss counters for one artifact kind.
#[derive(Debug, Default)]
pub struct MemoStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoStats {
    /// Lookups served from the cache (including waits on an in-flight
    /// computation of the same key).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute the artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// One entry: either being computed by some thread, or ready.
enum Slot<V> {
    InFlight,
    Ready(Arc<V>),
}

/// A once-per-key memo table returning shared `Arc` values.
pub struct Memo<V> {
    map: Mutex<HashMap<u64, Slot<V>>>,
    ready: Condvar,
    stats: MemoStats,
}

impl<V> Default for Memo<V> {
    fn default() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            stats: MemoStats::default(),
        }
    }
}

impl<V> std::fmt::Debug for Memo<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memo")
            .field("entries", &self.map.lock().map(|m| m.len()).unwrap_or(0))
            .field("stats", &self.stats)
            .finish()
    }
}

/// Removes an in-flight marker if `compute` panics, so waiters retry
/// instead of deadlocking.
struct InFlightGuard<'a, V> {
    memo: &'a Memo<V>,
    key: u64,
    armed: bool,
}

impl<V> Drop for InFlightGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut m) = self.memo.map.lock() {
                m.remove(&self.key);
            }
            self.memo.ready.notify_all();
        }
    }
}

impl<V> Memo<V> {
    /// Returns the artifact for `key`, computing it with `compute` on
    /// first access. Exactly one caller computes per key; concurrent
    /// callers receive the same shared instance.
    pub fn get_or_compute<F: FnOnce() -> V>(&self, key: u64, compute: F) -> Arc<V> {
        {
            let mut map = self.map.lock().expect("memo map poisoned");
            loop {
                match map.get(&key) {
                    Some(Slot::Ready(v)) => {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(v);
                    }
                    Some(Slot::InFlight) => {
                        map = self.ready.wait(map).expect("memo map poisoned");
                    }
                    None => {
                        map.insert(key, Slot::InFlight);
                        break;
                    }
                }
            }
        }
        let mut guard = InFlightGuard {
            memo: self,
            key,
            armed: true,
        };
        let value = Arc::new(compute());
        guard.armed = false;
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("memo map poisoned");
        map.insert(key, Slot::Ready(Arc::clone(&value)));
        drop(map);
        self.ready.notify_all();
        value
    }

    /// The hit/miss counters.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo map poisoned").len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Combines a kind tag and the addressing fields into one 64-bit key.
///
/// The tag keeps the key spaces of different artifact kinds disjoint even
/// when their content hashes collide positionally.
pub fn cache_key(tag: &str, parts: &[u64]) -> u64 {
    let mut buf = String::with_capacity(tag.len() + parts.len() * 17);
    buf.push_str(tag);
    for p in parts {
        buf.push('/');
        buf.push_str(&format!("{p:016x}"));
    }
    bmp_uarch::fp::fnv1a(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_and_shares() {
        let memo: Memo<u64> = Memo::default();
        let calls = AtomicUsize::new(0);
        let a = memo.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::Relaxed);
            42
        });
        let b = memo.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::Relaxed);
            99
        });
        assert_eq!(*a, 42);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.stats().hits(), 1);
        assert_eq!(memo.stats().misses(), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn concurrent_lookups_share_one_instance() {
        let memo: Memo<Vec<u8>> = Memo::default();
        let calls = AtomicUsize::new(0);
        let arcs: Vec<Arc<Vec<u8>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        memo.get_or_compute(7, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            vec![1, 2, 3]
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "exactly one compute");
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a), "all callers share one Arc");
        }
    }

    #[test]
    fn a_panicking_compute_unblocks_the_key() {
        let memo: Memo<u64> = Memo::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_compute(3, || panic!("boom"));
        }));
        assert!(r.is_err());
        // The key is free again; a retry computes normally.
        assert_eq!(*memo.get_or_compute(3, || 5), 5);
    }

    #[test]
    fn keys_separate_kinds() {
        assert_ne!(cache_key("trace", &[1, 2]), cache_key("sim", &[1, 2]));
        assert_ne!(cache_key("trace", &[1, 2]), cache_key("trace", &[2, 1]));
        assert_eq!(cache_key("trace", &[1, 2]), cache_key("trace", &[1, 2]));
    }
}
