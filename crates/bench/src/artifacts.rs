//! The shared trace/simulation/analysis cache.
//!
//! Every experiment cell is a pure function of its inputs: a trace is
//! fully determined by `(profile fingerprint, ops, seed)`, a simulation
//! by `(machine config + options fingerprint, trace key)`, and an
//! interval-model analysis by `(config fingerprint, trace key)`. The
//! cache is content-addressed on exactly those keys, so each artifact is
//! computed **once** per `run_all` and shared (as an `Arc`) across every
//! experiment that needs it, on every thread.
//!
//! Concurrent lookups of the same key are collapsed: the first caller
//! computes while later callers block and then receive the same shared
//! instance — never a duplicate computation, never a different value.
//!
//! A *panicking* computation must not wedge the cache: the panic is
//! caught, recorded as a `Slot::Failed` with its structured
//! [`CellError`], every blocked waiter is woken and re-raises that same
//! error (no waiter recomputes, no waiter deadlocks), and the original
//! computing thread re-panics with the structured payload so
//! [`ThreadPool::try_map`](crate::pool::ThreadPool::try_map) can report
//! it. The failed slot does **not** poison the key: the next *fresh*
//! lookup claims it and recomputes — which is exactly what the harness's
//! bounded retry does.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::CellError;

/// Hit/miss counters for one artifact kind.
#[derive(Debug, Default)]
pub struct MemoStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoStats {
    /// Lookups served from the cache (including waits on an in-flight
    /// computation of the same key).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute the artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// One entry: being computed by some thread, ready, or failed (the last
/// computation panicked; a fresh lookup may claim and retry it).
enum Slot<V> {
    InFlight,
    Ready(Arc<V>),
    Failed(CellError),
}

/// A once-per-key memo table returning shared `Arc` values.
pub struct Memo<V> {
    map: Mutex<HashMap<u64, Slot<V>>>,
    ready: Condvar,
    stats: MemoStats,
}

impl<V> Default for Memo<V> {
    fn default() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            stats: MemoStats::default(),
        }
    }
}

impl<V> std::fmt::Debug for Memo<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memo")
            .field("entries", &self.map.lock().map(|m| m.len()).unwrap_or(0))
            .field("stats", &self.stats)
            .finish()
    }
}

impl<V> Memo<V> {
    /// Returns the artifact for `key`, computing it with `compute` on
    /// first access. Exactly one caller computes per key; concurrent
    /// callers receive the same shared instance.
    ///
    /// # Panics
    ///
    /// If `compute` panics, the panic propagates to the computing caller
    /// *and* to every caller that was blocked waiting on this key — all
    /// with the same structured [`CellError`] payload. The key itself is
    /// left retryable: a later fresh lookup recomputes it.
    pub fn get_or_compute<F: FnOnce() -> V>(&self, key: u64, compute: F) -> Arc<V> {
        {
            let mut map = self.map.lock().expect("memo map poisoned");
            // Whether this caller slept on an in-flight computation: a
            // waiter woken into `Failed` inherits that failure, while a
            // fresh caller seeing a stale `Failed` claims and retries.
            let mut waited = false;
            loop {
                match map.get(&key) {
                    Some(Slot::Ready(v)) => {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(v);
                    }
                    Some(Slot::InFlight) => {
                        waited = true;
                        map = self.ready.wait(map).expect("memo map poisoned");
                    }
                    Some(Slot::Failed(e)) if waited => {
                        let e = e.clone();
                        drop(map);
                        std::panic::panic_any(e);
                    }
                    Some(Slot::Failed(_)) | None => {
                        map.insert(key, Slot::InFlight);
                        break;
                    }
                }
            }
        }
        match catch_unwind(AssertUnwindSafe(compute)) {
            Ok(value) => {
                let value = Arc::new(value);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                let mut map = self.map.lock().expect("memo map poisoned");
                map.insert(key, Slot::Ready(Arc::clone(&value)));
                drop(map);
                self.ready.notify_all();
                value
            }
            Err(payload) => {
                let err = CellError::from_panic_payload(&format!("memo:{key:016x}"), payload);
                let mut map = self.map.lock().expect("memo map poisoned");
                map.insert(key, Slot::Failed(err.clone()));
                drop(map);
                self.ready.notify_all();
                std::panic::panic_any(err);
            }
        }
    }

    /// The hit/miss counters.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo map poisoned").len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Combines a kind tag and the addressing fields into one 64-bit key.
///
/// The tag keeps the key spaces of different artifact kinds disjoint even
/// when their content hashes collide positionally.
pub fn cache_key(tag: &str, parts: &[u64]) -> u64 {
    let mut buf = String::with_capacity(tag.len() + parts.len() * 17);
    buf.push_str(tag);
    for p in parts {
        buf.push('/');
        buf.push_str(&format!("{p:016x}"));
    }
    bmp_uarch::fp::fnv1a(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_and_shares() {
        let memo: Memo<u64> = Memo::default();
        let calls = AtomicUsize::new(0);
        let a = memo.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::Relaxed);
            42
        });
        let b = memo.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::Relaxed);
            99
        });
        assert_eq!(*a, 42);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.stats().hits(), 1);
        assert_eq!(memo.stats().misses(), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn concurrent_lookups_share_one_instance() {
        let memo: Memo<Vec<u8>> = Memo::default();
        let calls = AtomicUsize::new(0);
        let arcs: Vec<Arc<Vec<u8>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        memo.get_or_compute(7, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            vec![1, 2, 3]
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "exactly one compute");
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a), "all callers share one Arc");
        }
    }

    #[test]
    fn a_panicking_compute_unblocks_the_key() {
        let memo: Memo<u64> = Memo::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_compute(3, || panic!("boom"));
        }));
        // The re-raised payload is the structured classification.
        let payload = r.unwrap_err();
        let e = payload
            .downcast_ref::<CellError>()
            .expect("CellError payload");
        assert_eq!(e.kind, crate::error::CellErrorKind::Panic);
        assert!(e.message.contains("boom"));
        // The key is retryable; a fresh lookup computes normally.
        assert_eq!(*memo.get_or_compute(3, || 5), 5);
        assert_eq!(memo.stats().misses(), 1, "the failed attempt is not a miss");
    }

    #[test]
    fn waiters_inherit_an_in_flight_failure() {
        let memo: Memo<u64> = Memo::default();
        let sibling_computes = AtomicUsize::new(0);
        let errors: Vec<CellError> = std::thread::scope(|s| {
            let computer = s.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    memo.get_or_compute(11, || {
                        // Give the waiters ample time to block on the
                        // in-flight marker before the failure lands.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        std::panic::panic_any(CellError::panic("cell-11", "wedged"));
                    })
                }))
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            let waiters: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            memo.get_or_compute(11, || {
                                sibling_computes.fetch_add(1, Ordering::Relaxed);
                                7
                            })
                        }))
                    })
                })
                .collect();
            std::iter::once(computer)
                .chain(waiters)
                .map(|h| {
                    let payload = h.join().unwrap().unwrap_err();
                    payload
                        .downcast_ref::<CellError>()
                        .expect("CellError payload")
                        .clone()
                })
                .collect()
        });
        assert_eq!(errors.len(), 5);
        for e in &errors {
            assert_eq!(e.context, "cell-11", "waiters see the original error");
            assert_eq!(e.message, "wedged");
        }
        assert_eq!(
            sibling_computes.load(Ordering::Relaxed),
            0,
            "no waiter recomputed a failure it was waiting on"
        );
    }

    #[test]
    fn keys_separate_kinds() {
        assert_ne!(cache_key("trace", &[1, 2]), cache_key("sim", &[1, 2]));
        assert_ne!(cache_key("trace", &[1, 2]), cache_key("trace", &[2, 1]));
        assert_eq!(cache_key("trace", &[1, 2]), cache_key("trace", &[1, 2]));
    }
}
