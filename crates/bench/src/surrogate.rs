//! Static-bounds surrogate for the timing report.
//!
//! The static pass (`bmp_analyze::staticpass`) predicts each workload's
//! mean branch misprediction penalty from the trace alone — no
//! simulation. This module runs that surrogate over every SPEC-like
//! workload *and* every executed RV32IM kernel ([`bmp_isa::NAMES`])
//! through the shared [`Ctx`] cache (so repeated collection is free
//! after the first run) and compares it against the simulator's
//! recorded mean penalty, producing the per-cell sim-vs-static error
//! table that `run_all` appends to the run summary and to
//! `results/bench_timings.json`.
//!
//! Every row also re-checks the *proven* envelope: the simulated
//! resolution/refill totals must sit inside the static bounds
//! ([`bmp_analyze::StaticBounds::check_sim`]); `within_bounds` is
//! false — and the summary flags the row — if they do not.

use bmp_sim::Simulator;
use bmp_uarch::presets;
use bmp_workloads::spec;

use crate::engine::Ctx;
use crate::Scale;

/// One workload's sim-vs-static comparison at the baseline machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateRow {
    /// Workload name — a statistical profile from [`spec::NAMES`] or an
    /// executed kernel from [`bmp_isa::NAMES`] (the sets are disjoint).
    pub workload: &'static str,
    /// Mispredicted branches the simulator recorded.
    pub mispredicts: u64,
    /// Simulator mean penalty (resolution + refill per misprediction).
    pub sim_mean_penalty: f64,
    /// Static point estimate of the same mean.
    pub static_mean_penalty: f64,
    /// `|static − sim| / sim`.
    pub rel_err: f64,
    /// Whether the simulated totals sit inside the proven static bounds.
    pub within_bounds: bool,
}

/// Collects the sim-vs-static error table for every workload in
/// [`spec::NAMES`] followed by every executed kernel in
/// [`bmp_isa::NAMES`], at the baseline 4-wide machine, drawing traces,
/// simulations and static bounds from the shared cache. Workloads whose
/// trace produced no mispredictions (no penalty to compare) are
/// omitted.
pub fn collect(ctx: &Ctx, scale: Scale) -> Vec<SurrogateRow> {
    let cfg = presets::baseline_4wide();
    let sim = Simulator::new(cfg.clone());
    let profiles = spec::NAMES
        .iter()
        .map(|&name| (name, ctx.named_trace(name, scale)));
    let kernels = bmp_isa::NAMES
        .iter()
        .map(|&name| (name, ctx.kernel_trace(name, scale)));
    profiles
        .chain(kernels)
        .filter_map(|(name, trace)| {
            let res = ctx.sim(&sim, &trace);
            let bounds = ctx.static_bounds(&cfg, &trace);
            let n = res.mispredicts.len() as u64;
            let sim_mean = res.mean_penalty()?;
            let static_mean = bounds.mean_penalty_point()?;
            let within_bounds = bounds
                .check_sim(n, res.resolution_total(), res.refill_total())
                .is_empty();
            Some(SurrogateRow {
                workload: name,
                mispredicts: n,
                sim_mean_penalty: sim_mean,
                static_mean_penalty: static_mean,
                rel_err: (static_mean - sim_mean).abs() / sim_mean,
                within_bounds,
            })
        })
        .collect()
}

/// Median of the per-row relative errors (`None` on an empty table).
pub fn median_rel_err(rows: &[SurrogateRow]) -> Option<f64> {
    if rows.is_empty() {
        return None;
    }
    let mut errs: Vec<f64> = rows.iter().map(|r| r.rel_err).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite relative errors"));
    let n = errs.len();
    Some(if n % 2 == 1 {
        errs[n / 2]
    } else {
        (errs[n / 2 - 1] + errs[n / 2]) / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale {
        ops: 2_000,
        seed: 42,
    };

    #[test]
    fn covers_every_workload_within_bounds() {
        let ctx = Ctx::new();
        let rows = collect(&ctx, SCALE);
        // Every registry workload and every executed kernel mispredicts
        // at least once at this scale, so no row is dropped. The bounds
        // check on the kernel rows is the "bmp-verify reports 0 bound
        // violations over executed traces" acceptance gate.
        assert_eq!(rows.len(), spec::NAMES.len() + bmp_isa::NAMES.len());
        for row in &rows {
            assert!(row.mispredicts > 0, "{}: no mispredicts", row.workload);
            assert!(
                row.within_bounds,
                "{}: simulated totals escaped the proven bounds",
                row.workload
            );
            assert!(
                row.rel_err.is_finite() && row.rel_err >= 0.0,
                "{}: bad relative error {}",
                row.workload,
                row.rel_err
            );
        }
        assert!(median_rel_err(&rows).is_some());
    }

    #[test]
    fn collection_is_deterministic_and_cached() {
        let ctx = Ctx::new();
        let first = collect(&ctx, SCALE);
        let before = ctx.cache_stats();
        let second = collect(&ctx, SCALE);
        let after = ctx.cache_stats();
        assert_eq!(first, second);
        // The second pass is served entirely from the cache.
        assert_eq!(before.trace_misses, after.trace_misses);
        assert_eq!(before.sim_misses, after.sim_misses);
        assert_eq!(before.static_misses, after.static_misses);
    }

    #[test]
    fn median_of_even_and_odd_tables() {
        let row = |e: f64| SurrogateRow {
            workload: "gzip",
            mispredicts: 1,
            sim_mean_penalty: 1.0,
            static_mean_penalty: 1.0,
            rel_err: e,
            within_bounds: true,
        };
        assert_eq!(median_rel_err(&[]), None);
        assert_eq!(median_rel_err(&[row(0.3)]), Some(0.3));
        assert_eq!(median_rel_err(&[row(0.75), row(0.25)]), Some(0.5));
        assert_eq!(median_rel_err(&[row(0.9), row(0.1), row(0.2)]), Some(0.2));
    }
}
