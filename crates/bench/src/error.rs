//! Structured per-cell failures.
//!
//! One experiment cell failing must not take the suite down with it:
//! [`ThreadPool::try_map`](crate::pool::ThreadPool::try_map) catches the
//! panic, and everything downstream — retry accounting, the run journal,
//! the partial-results report — works in terms of [`CellError`] instead
//! of an opaque panic payload. Code on the experiment path that *knows*
//! why it is failing (an unknown workload profile, an invalid oracle
//! machine config, a tripped cycle budget) panics with a `CellError`
//! payload via [`std::panic::panic_any`], so the structured cause
//! survives the unwind intact; anything else is classified from its
//! payload by [`CellError::from_panic_payload`].

use std::fmt;

use bmp_sim::SimError;

/// Broad classification of what went wrong in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellErrorKind {
    /// An unclassified panic escaped the cell's work closure.
    Panic,
    /// A workload profile name had no entry in the registry.
    UnknownProfile,
    /// A machine configuration failed validation.
    InvalidConfig,
    /// A simulation exhausted its cycle budget (watchdog).
    Budget,
    /// An injected or real I/O failure while persisting output.
    Io,
}

impl CellErrorKind {
    /// Short lowercase tag used in journals and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CellErrorKind::Panic => "panic",
            CellErrorKind::UnknownProfile => "unknown-profile",
            CellErrorKind::InvalidConfig => "invalid-config",
            CellErrorKind::Budget => "budget",
            CellErrorKind::Io => "io",
        }
    }
}

/// A structured error carried out of a failing experiment cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// What class of failure this is.
    pub kind: CellErrorKind,
    /// Where it happened — an experiment name or cell label.
    pub context: String,
    /// Human-readable cause.
    pub message: String,
}

impl CellError {
    /// A cell failed with an arbitrary panic.
    pub fn panic(context: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            kind: CellErrorKind::Panic,
            context: context.into(),
            message: message.into(),
        }
    }

    /// A workload profile lookup failed.
    pub fn unknown_profile(name: &str) -> Self {
        Self {
            kind: CellErrorKind::UnknownProfile,
            context: name.to_string(),
            message: format!("no workload profile named {name:?} in the registry"),
        }
    }

    /// An executed-kernel lookup failed. Shares the
    /// [`CellErrorKind::UnknownProfile`] journal tag — both mean "the
    /// cell named a workload source that does not exist" — while the
    /// message distinguishes the kernel suite from the profile registry.
    pub fn unknown_kernel(name: &str) -> Self {
        Self {
            kind: CellErrorKind::UnknownProfile,
            context: name.to_string(),
            message: format!("no RV32IM kernel named {name:?} in the bmp-isa suite"),
        }
    }

    /// A machine configuration failed validation.
    pub fn invalid_config(context: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            kind: CellErrorKind::InvalidConfig,
            context: context.into(),
            message: message.into(),
        }
    }

    /// A simulation tripped the cycle-budget watchdog.
    pub fn budget(context: impl Into<String>, err: SimError) -> Self {
        Self {
            kind: CellErrorKind::Budget,
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// Writing an output artifact failed.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        Self {
            kind: CellErrorKind::Io,
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// Classifies a caught panic payload into a `CellError`.
    ///
    /// Structured payloads pass through: a `CellError` thrown with
    /// `panic_any` is returned as-is (keeping its original context), a
    /// [`SimError`] becomes a budget error. String payloads — what
    /// `panic!`/`assert!` produce — become [`CellErrorKind::Panic`].
    pub fn from_panic_payload(context: &str, payload: Box<dyn std::any::Any + Send>) -> Self {
        match payload.downcast::<CellError>() {
            Ok(e) => *e,
            Err(payload) => match payload.downcast::<SimError>() {
                Ok(e) => Self::budget(context, *e),
                Err(payload) => {
                    let message = if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    Self::panic(context, message)
                }
            },
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.kind.as_str(),
            self.context,
            self.message
        )
    }
}

impl std::error::Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_sim::BudgetForensics;

    #[test]
    fn payload_classification() {
        let structured = CellError::unknown_profile("nope");
        let back = CellError::from_panic_payload("outer", Box::new(structured.clone()));
        assert_eq!(back, structured, "structured payloads pass through");

        let sim = SimError::BudgetExceeded(BudgetForensics {
            budget: 10,
            cycle: 10,
            committed: 1,
            trace_ops: 5,
            fetched: 2,
            window_occupancy: 1,
        });
        let back = CellError::from_panic_payload("cell", Box::new(sim));
        assert_eq!(back.kind, CellErrorKind::Budget);
        assert_eq!(back.context, "cell");
        assert!(back.message.contains("cycle budget exceeded"));

        let back = CellError::from_panic_payload("cell", Box::new("boom".to_string()));
        assert_eq!(back.kind, CellErrorKind::Panic);
        assert_eq!(back.message, "boom");

        let back = CellError::from_panic_payload("cell", Box::new(42_u32));
        assert_eq!(back.message, "non-string panic payload");
    }

    #[test]
    fn display_is_compact() {
        let e = CellError::panic("fig8:gcc", "index out of bounds");
        assert_eq!(e.to_string(), "[panic] fig8:gcc: index out of bounds");
    }
}
