//! Bridging the simulator's measured events into the interval-analysis
//! vocabulary.
//!
//! `bmp-sim` and `bmp-core` are deliberately independent (the model never
//! needs the simulator); their event types are isomorphic, and this module
//! holds the mapping plus the measured-side interval bookkeeping used by
//! the comparison experiments.

use bmp_core::{segment, Interval, IntervalEvent, IntervalEventKind};
use bmp_sim::{MissEvent, MissEventKind, SimResult};

/// Maps one simulator event kind into the model's vocabulary.
pub fn kind_of(kind: MissEventKind) -> IntervalEventKind {
    match kind {
        MissEventKind::BranchMispredict => IntervalEventKind::BranchMispredict,
        MissEventKind::ICacheMiss => IntervalEventKind::ICacheMiss,
        MissEventKind::ICacheLongMiss => IntervalEventKind::ICacheLongMiss,
        MissEventKind::LongDCacheMiss => IntervalEventKind::LongDCacheMiss,
    }
}

/// Converts a simulator event log (sorted by trace order after the sort
/// here — the simulator emits D-miss events in issue order) into model
/// events.
pub fn events_of(events: &[MissEvent]) -> Vec<IntervalEvent> {
    let mut out: Vec<IntervalEvent> = events
        .iter()
        .map(|e| IntervalEvent {
            pos: e.trace_idx,
            kind: kind_of(e.kind),
        })
        .collect();
    out.sort_by_key(|e| e.pos);
    out
}

/// Segments the *measured* run into intervals.
pub fn measured_intervals(result: &SimResult, n_ops: usize) -> Vec<Interval> {
    segment(n_ops, &events_of(&result.events))
}

/// For each measured misprediction, the length of the interval it
/// terminates (instructions since the previous miss event, the branch
/// included), aligned with `result.mispredicts`.
pub fn measured_interval_lengths(result: &SimResult, n_ops: usize) -> Vec<usize> {
    let intervals = measured_intervals(result, n_ops);
    // Map branch position -> interval length.
    let mut by_end = std::collections::HashMap::new();
    for iv in &intervals {
        by_end.insert(iv.end, iv.len());
    }
    result
        .mispredicts
        .iter()
        .map(|m| by_end.get(&m.branch_idx).copied().unwrap_or(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        let kinds = [
            MissEventKind::BranchMispredict,
            MissEventKind::ICacheMiss,
            MissEventKind::ICacheLongMiss,
            MissEventKind::LongDCacheMiss,
        ];
        let mapped: std::collections::HashSet<_> = kinds.iter().map(|&k| kind_of(k)).collect();
        assert_eq!(mapped.len(), kinds.len());
    }

    #[test]
    fn events_are_sorted() {
        let raw = [
            MissEvent {
                trace_idx: 30,
                cycle: 5,
                kind: MissEventKind::LongDCacheMiss,
            },
            MissEvent {
                trace_idx: 10,
                cycle: 9,
                kind: MissEventKind::BranchMispredict,
            },
        ];
        let out = events_of(&raw);
        assert_eq!(out[0].pos, 10);
        assert_eq!(out[1].pos, 30);
    }
}
