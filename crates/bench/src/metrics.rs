//! Opt-in observability collection for the experiment harness.
//!
//! With `BMP_METRICS=1`, every simulation routed through the shared
//! [`Ctx`] collects per-interval accounting records
//! ([`bmp_core::accounting`]), and `run_all` writes one aggregated
//! metrics file per completed experiment under `results/metrics/`
//! (schema: [`bmp_core::metrics`], contract: `docs/OBSERVABILITY.md`).
//! With the variable unset nothing here runs and the simulators skip
//! record collection entirely, so the produced CSVs are byte-identical
//! to a metrics-off run — the golden-table tests pin this down.
//!
//! Collection is lock-free by construction: each experiment's
//! [`MetricsRecorder`] lives on the worker thread that ran the
//! experiment (the `on_done` callback of the tolerant engine), reads
//! only the already-thread-safe content-addressed caches, and writes
//! its own file. Nothing is shared between recorders, so aggregating
//! across the [`ThreadPool`](crate::pool::ThreadPool) needs no locks
//! and cannot perturb experiment timing.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use bmp_analyze::staticpass::classify;
use bmp_core::accounting::records_from_analysis;
use bmp_core::metrics::ClassPenalty;
use bmp_core::{cpi, ExperimentMetrics, ModelMetrics, PenaltyAnalysis, WorkloadMetrics};
use bmp_sim::{SimOptions, SimResult, Simulator};
use bmp_uarch::{presets, MachineConfig};

use crate::engine::{Ctx, ExperimentDef, TraceHandle};
use crate::experiments::generation_machine;
use crate::{write_atomic, Scale};

/// Whether metrics collection is on for this process: `BMP_METRICS=1`.
/// Read once and cached, mirroring `BMP_REFERENCE_ENGINE` handling.
pub fn metrics_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("BMP_METRICS").is_ok_and(|v| v == "1"))
}

/// Per-experiment metrics accumulator.
///
/// One recorder is created per completed experiment, on the worker
/// thread that settles it; it owns its [`ExperimentMetrics`] document
/// outright (no sharing, no locks) and hands the finished document
/// back through [`finish`](MetricsRecorder::finish).
#[derive(Debug)]
pub struct MetricsRecorder {
    doc: ExperimentMetrics,
}

impl MetricsRecorder {
    /// A fresh recorder for the named experiment at `scale`.
    pub fn new(name: &str, scale: Scale) -> Self {
        Self {
            doc: ExperimentMetrics::new(name, scale.ops as u64, scale.seed),
        }
    }

    /// Aggregates a simulation's interval records into a workload entry
    /// tagged with the direction predictor it ran under (the v2
    /// `predictor` field; per-predictor entries of the same workload
    /// coexist and are told apart by this tag).
    pub fn record_sim(&mut self, workload: &str, predictor: &str, result: &SimResult) {
        let mut w = WorkloadMetrics::from_records(
            workload,
            result.instructions,
            result.cycles,
            result.frontend_depth,
            result.mispredicts.len() as u64,
            &result.interval_records,
        );
        w.predictor = predictor.to_string();
        self.doc.workloads.push(w);
    }

    /// Attaches the analytical model's view to the matching
    /// `(workload, predictor)` entry. A pair no simulation cell covered
    /// gets a model-only entry built from the analysis' own interval
    /// records, with `cycles` left 0 (the documented "no measured
    /// epoch" marker).
    pub fn record_model(
        &mut self,
        workload: &str,
        predictor: &str,
        analysis: &PenaltyAnalysis,
        stack: cpi::CpiStack,
    ) {
        let model = ModelMetrics::from_analysis(analysis, stack);
        if let Some(w) = self.entry_mut(workload, predictor) {
            w.model = Some(model);
            return;
        }
        let records = records_from_analysis(analysis);
        let mut w = WorkloadMetrics::from_records(
            workload,
            analysis.instructions as u64,
            0,
            analysis.frontend_depth,
            analysis.breakdowns.len() as u64,
            &records,
        );
        w.predictor = predictor.to_string();
        w.model = Some(model);
        self.doc.workloads.push(w);
    }

    /// Attaches a per-branch-class penalty attribution (the v2
    /// `branch_classes` field) to the matching `(workload, predictor)`
    /// entry; a pair without one gets a minimal entry carrying only the
    /// attribution.
    pub fn record_classes(&mut self, workload: &str, predictor: &str, classes: Vec<ClassPenalty>) {
        if let Some(w) = self.entry_mut(workload, predictor) {
            w.branch_classes = classes;
            return;
        }
        let mut w = WorkloadMetrics::from_records(workload, 0, 0, 0, 0, &[]);
        w.predictor = predictor.to_string();
        w.branch_classes = classes;
        self.doc.workloads.push(w);
    }

    fn entry_mut(&mut self, workload: &str, predictor: &str) -> Option<&mut WorkloadMetrics> {
        self.doc
            .workloads
            .iter_mut()
            .find(|w| w.workload == workload && w.predictor == predictor)
    }

    /// The finished document, workloads in `(name, predictor)` order
    /// (deterministic bytes regardless of cell declaration order).
    pub fn finish(mut self) -> ExperimentMetrics {
        self.doc
            .workloads
            .sort_by(|a, b| (&a.workload, &a.predictor).cmp(&(&b.workload, &b.predictor)));
        self.doc
    }
}

/// The per-branch-class penalty attribution of `trace` under `cfg`:
/// classifies every static site from the compiled trace and charges the
/// static pass's per-interval local resolutions (plus refills) to the
/// terminating site's class. Pure cache lookups when a
/// `classes-baseline` / `analysis-pred-*` cell warmed the context.
fn class_penalties(ctx: &Ctx, cfg: &MachineConfig, trace: &TraceHandle) -> Vec<ClassPenalty> {
    let bounds = ctx.static_bounds(cfg, trace);
    let compiled = ctx.compiled(trace);
    let profiles = classify::classify(&compiled);
    classify::attribute(&profiles, &bounds.interval_terms, cfg.frontend_depth)
        .into_iter()
        .map(|a| ClassPenalty {
            class: a.class.label().to_string(),
            sites: a.sites,
            intervals: a.intervals,
            local_resolution: a.local_resolution,
            refill: a.refill,
        })
        .collect()
}

/// Builds the metrics document for one settled experiment by replaying
/// its declared cells against the warm [`Ctx`] cache.
///
/// Every lookup here is a cache hit for work the experiment already
/// did — the same `(simulator fingerprint, trace key)` addresses — so
/// collection adds no simulation time. Workloads are recognized from
/// the cell labels (`{workload}/sim-baseline`, `{workload}/sim-warmup`,
/// `{workload}/analysis-baseline`, the predictor-generation family
/// `{workload}/sim-pred-{p}` / `{workload}/analysis-pred-{p}` /
/// `{workload}/classes-baseline`, and the executed-kernel family
/// `{kernel}/kernel-sim` / `{kernel}/kernel-analysis`, whose traces
/// come from the `bmp-isa` executor instead of the profile registry);
/// trace-only and oracle cells carry no accounting and are skipped, as
/// are experiments whose sweeps use no shared cells at all (their
/// metrics file has an empty `workloads` array).
pub fn collect_experiment(ctx: &Ctx, def: &ExperimentDef, scale: Scale) -> ExperimentMetrics {
    let mut recorder = MetricsRecorder::new(def.name, scale);
    // Group the experiment's cell kinds by workload, preserving the
    // declaration order (the recorder sorts by name at the end).
    let mut per_workload: Vec<(String, Vec<String>)> = Vec::new();
    for cell in (def.cells)() {
        if let Some((wl, kind)) = cell.label.split_once('/') {
            match per_workload.iter_mut().find(|(name, _)| name == wl) {
                Some((_, kinds)) => kinds.push(kind.to_string()),
                None => per_workload.push((wl.to_string(), vec![kind.to_string()])),
            }
        }
    }
    let baseline = presets::baseline_4wide();
    let baseline_pred = baseline.predictor.name();
    for (workload, kinds) in &per_workload {
        // Statistical profiles and executed kernels share the label
        // namespace (disjoint name sets); resolve through whichever
        // source knows the name.
        let trace = match ctx.try_named_trace(workload, scale) {
            Ok(t) => t,
            Err(_) => match ctx.try_kernel_trace(workload, scale) {
                Ok(t) => t,
                Err(_) => continue,
            },
        };
        // Prefer the plain baseline simulation; ex8 pairs it with a
        // warmup run and the baseline is the comparable epoch.
        let sim = if kinds
            .iter()
            .any(|k| k == "sim-baseline" || k == "kernel-sim")
        {
            Some(Simulator::new(baseline.clone()))
        } else if kinds.iter().any(|k| k == "sim-warmup") {
            Some(Simulator::with_options(
                baseline.clone(),
                SimOptions::with_warmup(scale.ops as u64 / 5),
            ))
        } else {
            None
        };
        if let Some(sim) = sim {
            let result = ctx.sim(&sim, &trace);
            recorder.record_sim(workload, baseline_pred, &result);
        }
        if kinds
            .iter()
            .any(|k| k == "analysis-baseline" || k == "kernel-analysis")
        {
            let analysis = ctx.analyze(&baseline, &trace);
            let stack = cpi::predict(&trace, &baseline);
            recorder.record_model(workload, baseline_pred, &analysis, stack);
        }
        if kinds.iter().any(|k| k == "classes-baseline") {
            recorder.record_classes(
                workload,
                baseline_pred,
                class_penalties(ctx, &baseline, &trace),
            );
        }
        // Predictor-generation cells: one entry per (workload, predictor),
        // with the model and the per-class attribution attached when the
        // matching analysis cell warmed the caches.
        for kind in kinds {
            let Some(pred) = kind.strip_prefix("sim-pred-") else {
                continue;
            };
            let Some(cfg) = generation_machine(pred) else {
                continue;
            };
            let result = ctx.sim(&Simulator::new(cfg.clone()), &trace);
            recorder.record_sim(workload, pred, &result);
            if kinds.iter().any(|k| k == &format!("analysis-pred-{pred}")) {
                let analysis = ctx.analyze(&cfg, &trace);
                let stack = cpi::predict(&trace, &cfg);
                recorder.record_model(workload, pred, &analysis, stack);
                recorder.record_classes(workload, pred, class_penalties(ctx, &cfg, &trace));
            }
        }
    }
    recorder.finish()
}

/// The on-disk location of an experiment's metrics file relative to
/// the results directory — the path stored in the run journal.
pub fn relative_path(name: &str) -> String {
    format!("metrics/{name}.json")
}

/// Persists `doc` as `<results_dir>/metrics/<name>.json`, crash-safely
/// (see [`write_atomic`]).
///
/// # Errors
///
/// Returns the underlying I/O error when the metrics directory or the
/// file cannot be written.
pub fn save_metrics(results_dir: &Path, doc: &ExperimentMetrics) -> std::io::Result<PathBuf> {
    let dir = results_dir.join("metrics");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", doc.name));
    write_atomic(&path, doc.to_json().as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{experiment_defs, EngineChoice};
    use bmp_core::metrics::HISTOGRAM_BUCKETS;

    fn def(name: &str) -> ExperimentDef {
        experiment_defs()
            .into_iter()
            .find(|d| d.name == name)
            .expect("known experiment")
    }

    fn scale() -> Scale {
        Scale {
            ops: 2_000,
            seed: 42,
        }
    }

    #[test]
    fn collects_sim_and_model_sections() {
        let ctx = Ctx::with_settings(EngineChoice::EventDriven, true);
        let doc = collect_experiment(&ctx, &def("fig2_penalty_per_benchmark"), scale());
        assert_eq!(doc.name, "fig2_penalty_per_benchmark");
        assert!(!doc.workloads.is_empty());
        // Workloads are sorted and fully populated: a measured epoch,
        // interval records, and the model section.
        let names: Vec<&str> = doc.workloads.iter().map(|w| w.workload.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        for w in &doc.workloads {
            assert!(w.cycles > 0, "{}: simulated epoch present", w.workload);
            assert_eq!(w.length_histogram.len(), HISTOGRAM_BUCKETS);
            assert_eq!(
                w.intervals.bmiss, w.mispredicts,
                "{}: one branch interval per mispredict",
                w.workload
            );
            assert_eq!(
                w.length_histogram.iter().sum::<u64>(),
                w.intervals.total(),
                "{}: histogram covers every interval",
                w.workload
            );
            let m = w.model.as_ref().expect("model section");
            assert_eq!(
                m.local_resolution,
                m.base + m.ilp + m.fu_latency + m.short_dmiss
            );
        }
    }

    #[test]
    fn analysis_only_workloads_get_model_entries() {
        let ctx = Ctx::with_settings(EngineChoice::EventDriven, true);
        let doc = collect_experiment(&ctx, &def("fig4_interval_distribution"), scale());
        assert!(!doc.workloads.is_empty());
        for w in &doc.workloads {
            assert_eq!(w.cycles, 0, "{}: model-only marker", w.workload);
            assert!(w.model.is_some());
            assert!(w.intervals.total() > 0);
        }
    }

    #[test]
    fn kernel_cells_collect_sim_and_model() {
        let ctx = Ctx::with_settings(EngineChoice::EventDriven, true);
        let doc = collect_experiment(&ctx, &def("ex_isa_contributors"), scale());
        assert_eq!(doc.workloads.len(), bmp_isa::NAMES.len());
        for w in &doc.workloads {
            assert!(w.cycles > 0, "{}: kernel-sim epoch present", w.workload);
            assert!(
                w.model.is_some(),
                "{}: kernel-analysis model section present",
                w.workload
            );
            assert!(w.intervals.total() > 0);
        }
    }

    #[test]
    fn cell_free_experiments_produce_empty_documents() {
        let ctx = Ctx::with_settings(EngineChoice::EventDriven, true);
        let doc = collect_experiment(&ctx, &def("fig8_ilp"), scale());
        assert!(doc.workloads.is_empty());
        // Still a valid, round-trippable document.
        let back = ExperimentMetrics::parse(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn collection_is_engine_independent() {
        let event = collect_experiment(
            &Ctx::with_settings(EngineChoice::EventDriven, true),
            &def("table2_benchmarks"),
            scale(),
        );
        let reference = collect_experiment(
            &Ctx::with_settings(EngineChoice::Reference, true),
            &def("table2_benchmarks"),
            scale(),
        );
        assert_eq!(event, reference);
        assert_eq!(event.to_json(), reference.to_json());
    }

    #[test]
    fn save_metrics_round_trips() {
        let ctx = Ctx::with_settings(EngineChoice::EventDriven, true);
        let doc = collect_experiment(&ctx, &def("fig3_penalty_vs_interval"), scale());
        let tmp = std::env::temp_dir().join("bmp_bench_metrics_save_test");
        let path = save_metrics(&tmp, &doc).unwrap();
        assert!(path.ends_with(relative_path(&doc.name)));
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert_eq!(ExperimentMetrics::parse(&body).unwrap(), doc);
    }

    #[test]
    fn metrics_off_context_collects_no_records() {
        let ctx = Ctx::with_settings(EngineChoice::EventDriven, false);
        let doc = collect_experiment(&ctx, &def("table2_benchmarks"), scale());
        for w in &doc.workloads {
            assert_eq!(
                w.intervals.total(),
                0,
                "{}: no records without BMP_METRICS",
                w.workload
            );
        }
    }
}
