//! A minimal work-stealing thread pool.
//!
//! The build environment has no registry access (see the vendored
//! `rand`/`proptest` stand-ins), so this is a small hand-rolled pool
//! rather than `rayon`: each worker owns a deque seeded round-robin with
//! job indices, pops from its own front, and steals from the *back* of a
//! sibling's deque when empty. Jobs are pure index-addressed closures and
//! results are returned **in index order** regardless of which worker ran
//! them or when they finished — the scheduling is nondeterministic, the
//! output never is.
//!
//! `threads == 1` bypasses the pool entirely and runs the jobs inline in
//! index order on the calling thread (the exact legacy sequential path).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::error::CellError;

/// A fixed-width pool; `threads` is clamped to at least 1.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that will run jobs on `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for every `i in 0..n` and returns the results in
    /// index order.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-index job failure (as a [`CellError`]
    /// payload) after **all** jobs have run — one bad job no longer
    /// discards its siblings' work mid-flight. Fault-tolerant callers
    /// should use [`try_map`](ThreadPool::try_map) instead.
    pub fn map<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_map(n, job)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| std::panic::panic_any(e)))
            .collect()
    }

    /// Runs `job(i)` for every `i in 0..n`, isolating panics per job:
    /// the result vector is in index order and a panicking job yields
    /// `Err(CellError)` in its slot while every other job still runs to
    /// completion.
    ///
    /// A structured [`CellError`] thrown with [`std::panic::panic_any`]
    /// passes through intact; other payloads are classified by
    /// [`CellError::from_panic_payload`] with the job index (`"#i"`) as
    /// context — callers that know better names can relabel.
    pub fn try_map<T, F>(&self, n: usize, job: F) -> Vec<Result<T, CellError>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let run_one = |i: usize| -> Result<T, CellError> {
            catch_unwind(AssertUnwindSafe(|| job(i)))
                .map_err(|payload| CellError::from_panic_payload(&format!("#{i}"), payload))
        };
        if self.threads == 1 || n <= 1 {
            return (0..n).map(run_one).collect();
        }
        let workers = self.threads.min(n);
        // Seed the deques round-robin so early (often heavier) jobs
        // spread across workers immediately.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let mut results: Vec<Option<Result<T, CellError>>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let slots: Vec<Mutex<&mut Option<Result<T, CellError>>>> =
            results.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let slots = &slots;
                    let run_one = &run_one;
                    s.spawn(move || {
                        while let Some(i) = next_job(queues, w) {
                            let out = run_one(i);
                            **slots[i].lock().expect("result slot poisoned") = Some(out);
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    // Only reachable for a panic *outside* the per-job
                    // catch (e.g. a poisoned slot lock): that is a
                    // harness bug, not a cell failure — re-raise it.
                    std::panic::resume_unwind(panic);
                }
            }
        });
        drop(slots);
        results
            .into_iter()
            .map(|r| r.expect("every job index was executed"))
            .collect()
    }
}

/// Pops from worker `w`'s own front, or steals from the back of the first
/// non-empty sibling deque.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue poisoned").pop_front() {
        return Some(i);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(i) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.map(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        let out = pool.map(100, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // One huge job at index 0; with stealing, the other worker
        // drains the rest. (Correctness, not a timing assertion.)
        let pool = ThreadPool::new(2);
        let out = pool.map(20, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i + 1
        });
        assert_eq!(out, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_empty_edge_cases() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn try_map_isolates_panics() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let out = pool.try_map(20, |i| {
                assert!(i != 7 && i != 13, "injected failure at {i}");
                i * 10
            });
            for (i, r) in out.iter().enumerate() {
                if i == 7 || i == 13 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.kind, crate::error::CellErrorKind::Panic);
                    assert_eq!(e.context, format!("#{i}"));
                    assert!(e.message.contains("injected failure"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "sibling jobs still ran");
                }
            }
        }
    }

    #[test]
    fn try_map_passes_structured_payloads_through() {
        let pool = ThreadPool::new(2);
        let out = pool.try_map(4, |i| {
            if i == 2 {
                std::panic::panic_any(CellError::unknown_profile("ghost"));
            }
            i
        });
        let e = out[2].as_ref().unwrap_err();
        assert_eq!(e.kind, crate::error::CellErrorKind::UnknownProfile);
        assert_eq!(e.context, "ghost");
    }

    #[test]
    fn map_reraises_the_lowest_index_failure() {
        let ran = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ThreadPool::new(4).map(10, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert!(i != 3 && i != 8, "boom {i}");
                i
            })
        }));
        let payload = caught.unwrap_err();
        let e = payload
            .downcast_ref::<CellError>()
            .expect("CellError payload");
        assert_eq!(e.context, "#3", "lowest failing index wins");
        assert_eq!(
            ran.load(Ordering::Relaxed),
            10,
            "all jobs ran before the re-raise"
        );
    }
}
