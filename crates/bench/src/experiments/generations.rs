//! The predictor-generation experiment family (E-X9, E-X10): three
//! decades of direction-predictor designs swept over the workload mix,
//! and the per-class contributor split that shows *which branches* pay
//! the penalty.
//!
//! E-X9 replays the paper's central claim against predictor history:
//! bimodal (mid-80s) → gshare (1993) → perceptron (2001) → TAGE (2006).
//! Better predictors slash MPKI, but the mean per-event penalty is a
//! property of the program and the window — it stays in a narrow band
//! across thirty years of predictor evolution.
//!
//! E-X10 crosses the interval model's five-contributor decomposition
//! with the per-site predictability classes of
//! `bmp_analyze::staticpass::classify`: hard-to-predict (H2P) sites are
//! few, but they terminate a disproportionate share of the
//! mispredicted-branch intervals. All of its cycle columns are exact
//! integers, so the analyzer can lint the additive identities
//! (`base + ilp + fu + dmiss = local`, `local + refill = total`) with
//! zero tolerance.

use std::collections::HashMap;

use bmp_analyze::staticpass::classify;
use bmp_sim::Simulator;
use bmp_uarch::presets;

use crate::engine::Ctx;
use crate::table::{f2, f3};
use crate::{Scale, Table};

// The generation table lives in `bmp_uarch::presets` so the BMP6xx
// lints can rebuild the per-predictor machine from a recorded name.
pub use bmp_uarch::presets::{generation_machine, generation_predictor, GENERATIONS};

/// The workload mix of the family: the compressible/integer pair the
/// paper leans on (`gzip`, `gcc`) plus the two most branch-hostile
/// profiles of the suite (`twolf`, `crafty`).
pub const GENERATION_WORKLOADS: [&str; 4] = ["gzip", "gcc", "twolf", "crafty"];

/// E-X9: MPKI, penalty and IPC across four predictor generations. The
/// per-event penalty column is the experiment's point: it barely moves
/// while MPKI collapses, because the penalty is set by the interval
/// behaviour of the *surviving* mispredictions, not by the predictor.
pub fn ex_predictor_generations(ctx: &Ctx, scale: Scale) -> Table {
    let mut t = Table::new(
        "ex_predictor_generations",
        "Extension E-X9: four predictor generations over the workload mix",
        &[
            "benchmark",
            "predictor",
            "br-miss-rate",
            "br-MPKI",
            "mean-penalty",
            "mean-base",
            "mean-ilp",
            "mean-fu",
            "mean-dmiss",
            "IPC",
        ],
    );
    for name in GENERATION_WORKLOADS {
        let trace = ctx.named_trace(name, scale);
        for pred in GENERATIONS {
            let cfg = generation_machine(pred).expect("known generation");
            let res = ctx.sim(&Simulator::new(cfg.clone()), &trace);
            let analysis = ctx.analyze(&cfg, &trace);
            let (base, ilp, fu, dmiss) = analysis
                .mean_contributions()
                .unwrap_or((0.0, 0.0, 0.0, 0.0));
            t.push_row(vec![
                name.to_owned(),
                pred.to_owned(),
                f3(res.branch_stats.miss_rate()),
                f2(res.branch_stats.mpki(res.instructions)),
                f2(res.mean_penalty().unwrap_or(0.0)),
                f2(base),
                f2(ilp),
                f2(fu),
                f2(dmiss),
                f3(res.ipc()),
            ]);
        }
    }
    t
}

/// One class's integer contributor totals, accumulated from the
/// baseline analysis' per-misprediction breakdowns.
#[derive(Debug, Default, Clone, Copy)]
struct ClassTotals {
    intervals: u64,
    base: u64,
    ilp: u64,
    fu: u64,
    dmiss: u64,
    local: u64,
    refill: u64,
}

/// E-X10: the five-contributor penalty split per branch class (H2P vs
/// the easy classes) under the baseline machine. Every mispredicted
/// interval's exact local-resolution decomposition is charged to the
/// class of the terminating branch's static site, so each row satisfies
/// `base + ilp + fu + dmiss = local` and `local + refill = total` as
/// integer identities — the BMP701 lint checks them with no epsilon.
pub fn ex_h2p_contributors(ctx: &Ctx, scale: Scale) -> Table {
    let cfg = presets::baseline_4wide();
    let mut t = Table::new(
        "ex_h2p_contributors",
        "Extension E-X10: per-class five-contributor penalty split",
        &[
            "benchmark",
            "class",
            "sites",
            "intervals",
            "base",
            "ilp",
            "fu",
            "dmiss",
            "local",
            "refill",
            "total",
        ],
    );
    for name in GENERATION_WORKLOADS {
        let trace = ctx.named_trace(name, scale);
        let compiled = ctx.compiled(&trace);
        let profiles = classify::classify(&compiled);
        let class_of: HashMap<u64, classify::BranchClass> =
            profiles.iter().map(|p| (p.pc, p.class)).collect();
        let mut sites: HashMap<classify::BranchClass, u64> = HashMap::new();
        for p in &profiles {
            *sites.entry(p.class).or_default() += 1;
        }
        let analysis = ctx.analyze(&cfg, &trace);
        let mut totals: HashMap<classify::BranchClass, ClassTotals> = HashMap::new();
        for b in &analysis.breakdowns {
            let class = trace
                .get(b.branch_idx)
                .map(|op| op.pc())
                .and_then(|pc| class_of.get(&pc).copied())
                .unwrap_or(classify::BranchClass::Indirect);
            let e = totals.entry(class).or_default();
            e.intervals += 1;
            e.base += b.base;
            e.ilp += b.ilp;
            e.fu += b.fu_latency;
            e.dmiss += b.short_dmiss;
            e.local += b.local_resolution;
            e.refill += u64::from(b.frontend);
        }
        let mut classes: Vec<classify::BranchClass> =
            sites.keys().chain(totals.keys()).copied().collect();
        classes.sort_unstable();
        classes.dedup();
        for class in classes {
            let c = totals.get(&class).copied().unwrap_or_default();
            t.push_row(vec![
                name.to_owned(),
                class.label().to_owned(),
                sites.get(&class).copied().unwrap_or(0).to_string(),
                c.intervals.to_string(),
                c.base.to_string(),
                c.ilp.to_string(),
                c.fu.to_string(),
                c.dmiss.to_string(),
                c.local.to_string(),
                c.refill.to_string(),
                (c.local + c.refill).to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineChoice;

    fn tiny() -> Scale {
        Scale {
            ops: 3_000,
            seed: 7,
        }
    }

    #[test]
    fn generations_rows_cover_the_cross_product() {
        let ctx = Ctx::new();
        let t = ex_predictor_generations(&ctx, tiny());
        assert_eq!(t.rows.len(), GENERATION_WORKLOADS.len() * GENERATIONS.len());
        // Each benchmark block cycles through the generations in order,
        // with sane statistics. (Accuracy *ordering* is not asserted at
        // this scale: a 3k-op epoch leaves the history-based tables
        // cold, which is exactly the warmup effect E-X8 studies.)
        for (i, row) in t.rows.iter().enumerate() {
            assert_eq!(row[0], GENERATION_WORKLOADS[i / GENERATIONS.len()]);
            assert_eq!(row[1], GENERATIONS[i % GENERATIONS.len()]);
            let miss_rate: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&miss_rate), "row {row:?}");
            let ipc: f64 = row[9].parse().unwrap();
            assert!(ipc > 0.0, "row {row:?}");
        }
    }

    #[test]
    fn h2p_split_is_an_exact_integer_identity() {
        let ctx = Ctx::new();
        let t = ex_h2p_contributors(&ctx, tiny());
        assert!(!t.rows.is_empty());
        let known = ["biased", "patterned", "mixed", "h2p", "indirect"];
        for row in &t.rows {
            assert!(known.contains(&row[1].as_str()), "class {}", row[1]);
            let v: Vec<u64> = row[2..].iter().map(|c| c.parse().unwrap()).collect();
            let (base, ilp, fu, dmiss) = (v[2], v[3], v[4], v[5]);
            let (local, refill, total) = (v[6], v[7], v[8]);
            assert_eq!(base + ilp + fu + dmiss, local, "row {row:?}");
            assert_eq!(local + refill, total, "row {row:?}");
        }
    }

    #[test]
    fn h2p_split_is_engine_independent() {
        let event = ex_h2p_contributors(&Ctx::with_engine(EngineChoice::EventDriven), tiny());
        let reference = ex_h2p_contributors(&Ctx::with_engine(EngineChoice::Reference), tiny());
        assert_eq!(event.rows, reference.rows);
    }
}
