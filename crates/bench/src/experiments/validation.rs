//! E-F10: validation of the analytical model against the cycle-level
//! simulator.

use bmp_core::{cpi, validate::ValidationReport};
use bmp_sim::Simulator;
use bmp_uarch::presets;
use bmp_workloads::spec;

use crate::engine::Ctx;
use crate::table::{f2, f3};
use crate::{Scale, Table};

/// E-F10: per benchmark, the model's per-misprediction resolution and
/// CPI against the simulator's measurements.
pub fn fig10_model_validation(ctx: &Ctx, scale: Scale) -> Table {
    let cfg = presets::baseline_4wide();
    let sim = Simulator::new(cfg.clone());
    let mut t = Table::new(
        "fig10_model_validation",
        "Figure 10 (E-F10): interval model vs. cycle-level simulation",
        &[
            "benchmark",
            "events-agree",
            "sim-resolution",
            "model-resolution",
            "resolution-err",
            "correlation",
            "sim-CPI",
            "stack-CPI",
            "sched-CPI",
        ],
    );
    for profile in spec::all_profiles() {
        let trace = ctx.trace(&profile, scale);
        let res = ctx.sim(&sim, &trace);
        let analysis = ctx.analyze(&cfg, &trace);
        let measured: Vec<(usize, u64)> = res
            .mispredicts
            .iter()
            .map(|m| (m.branch_idx, m.resolution()))
            .collect();
        let v = ValidationReport::from_pairs(&analysis, &measured);
        let stack = cpi::predict(&trace, &cfg);
        let sched = cpi::predict_cycles_scheduled(&trace, &cfg) as f64 / trace.len() as f64;
        t.push_row(vec![
            profile.name.clone(),
            f3(v.event_agreement()),
            f2(v.measured_mean().unwrap_or(0.0)),
            f2(v.model_mean().unwrap_or(0.0)),
            v.aggregate_relative_error()
                .map(f3)
                .unwrap_or_else(|| "-".into()),
            v.correlation().map(f3).unwrap_or_else(|| "-".into()),
            f3(res.cpi()),
            f3(stack.cpi()),
            f3(sched),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulator() {
        let ctx = Ctx::new();
        let t = fig10_model_validation(
            &ctx,
            Scale {
                ops: 30_000,
                seed: 5,
            },
        );
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            let agree: f64 = row[1].parse().unwrap();
            assert!(agree > 0.9, "{}: event agreement {agree}", row[0]);
            if row[4] != "-" {
                let err: f64 = row[4].parse().unwrap();
                assert!(
                    err < 0.5,
                    "{}: aggregate resolution error {err} too large",
                    row[0]
                );
            }
            let sim_cpi: f64 = row[6].parse().unwrap();
            let sched_cpi: f64 = row[8].parse().unwrap();
            let rel = (sched_cpi - sim_cpi).abs() / sim_cpi;
            assert!(
                rel < 0.4,
                "{}: scheduled CPI off by {rel}: {sched_cpi} vs {sim_cpi}",
                row[0]
            );
        }
    }
}
