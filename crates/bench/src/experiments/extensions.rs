//! Extension experiments E-X1 … E-X8: beyond the paper's evaluation, the
//! studies its framework invites.

use bmp_core::closed_form;
use bmp_sim::Simulator;
use bmp_uarch::{presets, PredictorConfig, PrefetchConfig};

use crate::engine::Ctx;
use crate::table::{f2, f3};
use crate::{Scale, Table};

/// E-X1: the misprediction penalty under different predictors. Better
/// predictors reduce the *number* of penalties, but the paper's point is
/// that the per-event penalty is a property of the program and the
/// window, not of the predictor — so the mean penalty should stay in the
/// same band while MPKI and IPC move a lot.
pub fn ex1_predictor_study(ctx: &Ctx, scale: Scale) -> Table {
    let predictors: [(&str, PredictorConfig); 6] = [
        ("bimodal", PredictorConfig::Bimodal { entries: 4096 }),
        (
            "gshare",
            PredictorConfig::GShare {
                entries: 4096,
                history_bits: 12,
            },
        ),
        (
            "local",
            PredictorConfig::Local {
                history_entries: 1024,
                history_bits: 10,
                pattern_entries: 1024,
            },
        ),
        (
            "tournament",
            PredictorConfig::Tournament {
                entries: 4096,
                history_bits: 12,
            },
        ),
        (
            "perceptron",
            PredictorConfig::Perceptron {
                entries: 512,
                history_bits: 24,
            },
        ),
        ("perfect", PredictorConfig::Perfect),
    ];
    let mut t = Table::new(
        "ex1_predictor_study",
        "Extension E-X1: penalty and performance per branch predictor",
        &[
            "benchmark",
            "predictor",
            "br-miss-rate",
            "br-MPKI",
            "mean-penalty",
            "IPC",
        ],
    );
    for name in ["twolf", "gzip"] {
        let trace = ctx.named_trace(name, scale);
        for (pname, pcfg) in predictors {
            let cfg = presets::baseline_4wide()
                .to_builder()
                .predictor(pcfg)
                .build()
                .expect("valid predictor");
            let res = ctx.sim(&Simulator::new(cfg), &trace);
            t.push_row(vec![
                name.to_owned(),
                pname.to_owned(),
                f3(res.branch_stats.miss_rate()),
                f2(res.branch_stats.mpki(res.instructions)),
                f2(res.mean_penalty().unwrap_or(0.0)),
                f3(res.ipc()),
            ]);
        }
    }
    t
}

/// E-X2: penalty versus issue-window size. The resolution saturates near
/// the window drain bound, so growing the window *raises* the
/// misprediction penalty even as it raises IPC — the tension the paper's
/// framework exposes.
pub fn ex2_window_sweep(ctx: &Ctx, scale: Scale) -> Table {
    let mut t = Table::new(
        "ex2_window_sweep",
        "Extension E-X2: penalty vs. issue-window size",
        &[
            "benchmark",
            "window",
            "rob",
            "measured-resolution",
            "model-resolution",
            "IPC",
        ],
    );
    for name in ["twolf", "gzip"] {
        let trace = ctx.named_trace(name, scale);
        for window in [16u32, 32, 64, 128, 256] {
            let rob = window * 2;
            let cfg = presets::baseline_4wide()
                .to_builder()
                .window_size(window)
                .rob_size(rob)
                .build()
                .expect("valid window");
            let res = ctx.sim(&Simulator::new(cfg.clone()), &trace);
            let analysis = ctx.analyze(&cfg, &trace);
            t.push_row(vec![
                name.to_owned(),
                window.to_string(),
                rob.to_string(),
                f2(res.mean_resolution().unwrap_or(0.0)),
                f2(analysis.mean_resolution().unwrap_or(0.0)),
                f3(res.ipc()),
            ]);
        }
    }
    t
}

/// E-X3: three fidelity levels of the same framework — the closed-form
/// (statistics-only) estimate, the trace-scheduling model, and the
/// cycle-level simulator.
///
/// The closed form computes a window-*drain* estimate from aggregate
/// statistics: an upper bound on the branch-chain (local) resolution but
/// blind to cross-event shadows, so it sits between the scheduled model's
/// local resolution and the simulator's effective one. The error column
/// is against the local resolution.
pub fn ex3_closed_form(ctx: &Ctx, scale: Scale) -> Table {
    use bmp_workloads::spec;
    let cfg = presets::baseline_4wide();
    let sim = Simulator::new(cfg.clone());
    let mut t = Table::new(
        "ex3_closed_form",
        "Extension E-X3: closed-form vs. scheduled model vs. simulation (mean resolution)",
        &[
            "benchmark",
            "sim-effective",
            "model-effective",
            "model-local",
            "closed-form",
            "closed-form-err-vs-local",
        ],
    );
    for profile in spec::all_profiles() {
        let trace = ctx.trace(&profile, scale);
        let res = ctx.sim(&sim, &trace);
        let analysis = ctx.analyze(&cfg, &trace);
        let cf = closed_form::estimate(&trace, &cfg);
        let local = if analysis.breakdowns.is_empty() {
            0.0
        } else {
            analysis
                .breakdowns
                .iter()
                .map(|b| b.local_resolution as f64)
                .sum::<f64>()
                / analysis.breakdowns.len() as f64
        };
        let err = if local > 0.0 {
            (cf.mean_resolution - local).abs() / local
        } else {
            0.0
        };
        t.push_row(vec![
            profile.name.clone(),
            f2(res.mean_resolution().unwrap_or(0.0)),
            f2(analysis.mean_resolution().unwrap_or(0.0)),
            f2(local),
            f2(cf.mean_resolution),
            f3(err),
        ]);
    }
    t
}

/// E-X4: hardware prefetching attacks contributors (v) and the I-miss
/// events: streaming benchmarks gain, pointer-chasing ones do not.
pub fn ex4_prefetch_study(ctx: &Ctx, scale: Scale) -> Table {
    let mut t = Table::new(
        "ex4_prefetch_study",
        "Extension E-X4: stride + next-line prefetching on vs. off",
        &[
            "benchmark",
            "prefetch",
            "l1d-miss-rate",
            "long-D-MPKI",
            "mean-penalty",
            "IPC",
            "prefetches",
        ],
    );
    for name in ["bzip2", "gzip", "mcf", "gcc"] {
        let trace = ctx.named_trace(name, scale);
        for (label, pf) in [
            ("off", PrefetchConfig::off()),
            ("on", PrefetchConfig::aggressive()),
        ] {
            let base = presets::baseline_4wide();
            let caches = base.caches.with_prefetch(pf).expect("valid prefetch");
            let cfg = base
                .to_builder()
                .caches(caches)
                .build()
                .expect("valid machine");
            let res = ctx.sim(&Simulator::new(cfg), &trace);
            let n = res.instructions;
            t.push_row(vec![
                name.to_owned(),
                label.to_owned(),
                f3(res.hierarchy.l1d.miss_rate()),
                f2(res.hierarchy.long_dmisses as f64 * 1000.0 / n as f64),
                f2(res.mean_penalty().unwrap_or(0.0)),
                f3(res.ipc()),
                (res.hierarchy.dprefetches + res.hierarchy.iprefetches).to_string(),
            ]);
        }
    }
    t
}

/// E-X5: ROB occupancy and where the dispatch slots go — the machine-state
/// view behind contributor (ii). High mean occupancy means mispredicted
/// branches dispatch into full windows (long drains); the slot columns
/// name the bottleneck.
pub fn ex5_occupancy_study(ctx: &Ctx, scale: Scale) -> Table {
    use bmp_workloads::spec;
    let cfg = presets::baseline_4wide();
    let sim = Simulator::new(cfg);
    let mut t = Table::new(
        "ex5_occupancy_study",
        "Extension E-X5: ROB occupancy and dispatch-slot attribution",
        &[
            "benchmark",
            "mean-occupancy",
            "rob-full-frac",
            "slots-used",
            "slots-frontend",
            "slots-rob",
            "slots-window",
            "mean-resolution",
        ],
    );
    for profile in spec::all_profiles() {
        let trace = ctx.trace(&profile, scale);
        let res = ctx.sim(&sim, &trace);
        let total = res.slots.total().max(1) as f64;
        t.push_row(vec![
            profile.name.clone(),
            f2(res.mean_rob_occupancy()),
            f3(res.rob_full_fraction()),
            f3(res.slots.used as f64 / total),
            f3(res.slots.frontend_starved as f64 / total),
            f3(res.slots.rob_full as f64 / total),
            f3(res.slots.window_full as f64 / total),
            f2(res.mean_resolution().unwrap_or(0.0)),
        ]);
    }
    t
}

/// E-X6: cache replacement policies. LRU exploits the workloads' temporal
/// reuse; FIFO and random give some of it up, and the damage shows as
/// higher miss rates and lower IPC.
pub fn ex6_replacement_study(ctx: &Ctx, scale: Scale) -> Table {
    use bmp_uarch::{CacheGeometry, HierarchyConfig, ReplacementKind};
    let mut t = Table::new(
        "ex6_replacement_study",
        "Extension E-X6: L1D/L2 replacement policy",
        &["benchmark", "policy", "l1d-miss-rate", "long-D-MPKI", "IPC"],
    );
    for name in ["gzip", "parser", "mcf"] {
        let trace = ctx.named_trace(name, scale);
        for policy in [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::Random,
        ] {
            let base = presets::baseline_4wide();
            let l1d = CacheGeometry::new(32 * 1024, 64, 4, 2)
                .expect("valid L1D")
                .with_replacement(policy);
            let l2 = CacheGeometry::new(1024 * 1024, 64, 8, 12)
                .expect("valid L2")
                .with_replacement(policy);
            let caches = HierarchyConfig::new(base.caches.l1i(), l1d, Some(l2), 200)
                .expect("valid hierarchy");
            let cfg = base
                .to_builder()
                .caches(caches)
                .build()
                .expect("valid machine");
            let res = ctx.sim(&Simulator::new(cfg), &trace);
            t.push_row(vec![
                name.to_owned(),
                policy.to_string(),
                f3(res.hierarchy.l1d.miss_rate()),
                f2(res.hierarchy.long_dmisses as f64 * 1000.0 / res.instructions as f64),
                f3(res.ipc()),
            ]);
        }
    }
    t
}

/// E-X7: indirect-branch target prediction. Indirect mispredictions are
/// classified by branch kind from the trace; the gtarget predictor
/// (history-hashed target cache) recovers the cyclic dispatch sequences a
/// last-target BTB cannot.
pub fn ex7_indirect_study(ctx: &Ctx, scale: Scale) -> Table {
    use bmp_trace::BranchKind;
    use bmp_uarch::IndirectPredictorConfig;
    let mut t = Table::new(
        "ex7_indirect_study",
        "Extension E-X7: indirect-target prediction (BTB last-target vs gtarget)",
        &[
            "benchmark",
            "target-predictor",
            "indirect-miss-rate",
            "indirect-misses",
            "cond-misses",
            "IPC",
        ],
    );
    for name in ["perlbmk", "gap", "eon", "gcc"] {
        let trace = ctx.named_trace(name, scale);
        let indirect_total = trace
            .iter()
            .filter(|o| {
                o.branch_info()
                    .is_some_and(|b| b.kind == BranchKind::IndirectJump)
            })
            .count();
        for (label, icfg) in [
            ("btb", IndirectPredictorConfig::BtbLastTarget),
            (
                "gtarget",
                IndirectPredictorConfig::GTarget {
                    entries: 1024,
                    history_bits: 10,
                },
            ),
        ] {
            let cfg = presets::baseline_4wide()
                .to_builder()
                .indirect_predictor(icfg)
                .build()
                .expect("valid machine");
            let res = ctx.sim(&Simulator::new(cfg), &trace);
            let mut indirect_misses = 0usize;
            let mut cond_misses = 0usize;
            for m in &res.mispredicts {
                match trace
                    .get(m.branch_idx)
                    .and_then(|o| o.branch_info())
                    .map(|b| b.kind)
                {
                    Some(BranchKind::IndirectJump) => indirect_misses += 1,
                    Some(BranchKind::Conditional) => cond_misses += 1,
                    _ => {}
                }
            }
            t.push_row(vec![
                name.to_owned(),
                label.to_owned(),
                f3(indirect_misses as f64 / indirect_total.max(1) as f64),
                indirect_misses.to_string(),
                cond_misses.to_string(),
                f3(res.ipc()),
            ]);
        }
    }
    t
}

/// E-X8: measurement methodology — cold start vs. 20% warmup. Compulsory
/// misses inflate every cold-start rate at laptop-scale trace lengths;
/// warmup (statistics reset after the first fifth, machine state kept)
/// recovers the steady state the paper's SimPoint-sampled runs measured.
pub fn ex8_warmup_study(ctx: &Ctx, scale: Scale) -> Table {
    use bmp_sim::SimOptions;
    let mut t = Table::new(
        "ex8_warmup_study",
        "Extension E-X8: cold start vs. 20% warmup",
        &[
            "benchmark",
            "mode",
            "IPC",
            "long-D-MPKI",
            "L1I-MPKI",
            "mean-penalty",
        ],
    );
    let base = presets::baseline_4wide();
    for name in ["gzip", "gcc", "mcf", "crafty"] {
        let trace = ctx.named_trace(name, scale);
        for (mode, opts) in [
            ("cold", SimOptions::default()),
            ("warm", SimOptions::with_warmup(scale.ops as u64 / 5)),
        ] {
            let res = ctx.sim(&Simulator::with_options(base.clone(), opts), &trace);
            let n = res.instructions.max(1);
            t.push_row(vec![
                name.to_owned(),
                mode.to_owned(),
                f3(res.ipc()),
                f2(res.hierarchy.long_dmisses as f64 * 1000.0 / n as f64),
                f2(res.hierarchy.l1i.mpki(n)),
                f2(res.mean_penalty().unwrap_or(0.0)),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            ops: 10_000,
            seed: 5,
        }
    }

    #[test]
    fn ex1_perfect_wins_and_penalties_stay_banded() {
        let ctx = Ctx::new();
        let t = ex1_predictor_study(&ctx, tiny());
        let twolf: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "twolf").collect();
        let ipc = |p: &str| -> f64 {
            twolf.iter().find(|r| r[1] == p).unwrap()[5]
                .parse()
                .unwrap()
        };
        assert!(ipc("perfect") > ipc("bimodal"), "oracle must win");
        // Real predictors' mean penalties stay within a 3x band.
        let pens: Vec<f64> = twolf
            .iter()
            .filter(|r| r[1] != "perfect")
            .map(|r| r[4].parse().unwrap())
            .collect();
        let (lo, hi) = pens
            .iter()
            .fold((f64::MAX, 0.0f64), |(l, h), &p| (l.min(p), h.max(p)));
        assert!(hi / lo < 3.0, "penalty band too wide: {pens:?}");
    }

    #[test]
    fn ex2_bigger_windows_raise_resolution() {
        let ctx = Ctx::new();
        let t = ex2_window_sweep(&ctx, tiny());
        let res: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[0] == "twolf")
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(
            res.last().unwrap() > res.first().unwrap(),
            "256-entry window must drain longer than 16: {res:?}"
        );
    }

    #[test]
    fn ex3_closed_form_brackets_sensibly() {
        let ctx = Ctx::new();
        let t = ex3_closed_form(
            &ctx,
            Scale {
                ops: 30_000,
                seed: 5,
            },
        );
        // The closed form computes a window-drain-flavoured estimate: it
        // should sit between the branch-chain bound (the local scheduled
        // resolution) and a generous multiple of the simulator's
        // effective resolution, on every benchmark.
        for row in &t.rows {
            let sim: f64 = row[1].parse().unwrap();
            let local: f64 = row[3].parse().unwrap();
            let cf: f64 = row[4].parse().unwrap();
            assert!(
                cf >= local * 0.5 && cf <= sim * 1.5,
                "{}: closed form {cf} outside [0.5*local {local}, 1.5*sim {sim}]",
                row[0]
            );
        }
    }

    #[test]
    fn ex4_prefetch_helps_streaming_benchmarks() {
        let ctx = Ctx::new();
        let t = ex4_prefetch_study(
            &ctx,
            Scale {
                ops: 30_000,
                seed: 5,
            },
        );
        let get = |bench: &str, pf: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == bench && r[1] == pf).unwrap()[col]
                .parse()
                .unwrap()
        };
        // bzip2 streams: miss rate must drop and IPC rise with prefetch.
        assert!(get("bzip2", "on", 2) < get("bzip2", "off", 2));
        assert!(get("bzip2", "on", 5) > get("bzip2", "off", 5));
        // Prefetches actually issued.
        assert!(get("bzip2", "on", 6) > 100.0);
        assert_eq!(get("bzip2", "off", 6), 0.0);
    }

    #[test]
    fn ex5_occupancy_reconciles() {
        let ctx = Ctx::new();
        let t = ex5_occupancy_study(&ctx, tiny());
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            let slots: f64 = row[3..7].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!(
                (slots - 1.0).abs() < 0.01,
                "{}: slots sum to {slots}",
                row[0]
            );
            let occ: f64 = row[1].parse().unwrap();
            assert!((0.0..=128.0).contains(&occ));
        }
        // mcf keeps the fullest ROB.
        let occ = |b: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == b).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(occ("mcf") > occ("crafty"), "mcf must be ROB-bound");
    }

    #[test]
    fn ex6_lru_beats_random_on_reuse_heavy_workloads() {
        let ctx = Ctx::new();
        let t = ex6_replacement_study(
            &ctx,
            Scale {
                ops: 30_000,
                seed: 5,
            },
        );
        let rate = |b: &str, p: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == b && r[1] == p).unwrap()[2]
                .parse()
                .unwrap()
        };
        // LRU should not lose to random on the reuse-heavy profiles.
        for b in ["gzip", "parser"] {
            assert!(
                rate(b, "lru") <= rate(b, "random") + 0.01,
                "{b}: lru {} vs random {}",
                rate(b, "lru"),
                rate(b, "random")
            );
        }
    }

    #[test]
    fn ex7_gtarget_beats_btb_on_indirect_heavy_profiles() {
        let ctx = Ctx::new();
        let t = ex7_indirect_study(
            &ctx,
            Scale {
                ops: 40_000,
                seed: 5,
            },
        );
        let miss = |b: &str, p: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == b && r[1] == p).unwrap()[2]
                .parse()
                .unwrap()
        };
        // On the interpreter-like profile, the history-hashed target
        // cache must clearly beat the last-target BTB (cyclic sites).
        assert!(
            miss("perlbmk", "gtarget") < miss("perlbmk", "btb") * 0.8,
            "gtarget {} vs btb {}",
            miss("perlbmk", "gtarget"),
            miss("perlbmk", "btb")
        );
        // Conditional misses are untouched by the target predictor.
        let cond = |b: &str, p: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == b && r[1] == p).unwrap()[4]
                .parse()
                .unwrap()
        };
        assert_eq!(cond("perlbmk", "btb"), cond("perlbmk", "gtarget"));
    }

    #[test]
    fn ex8_warmup_raises_ipc_and_cuts_compulsory_misses() {
        let ctx = Ctx::new();
        let t = ex8_warmup_study(
            &ctx,
            Scale {
                ops: 40_000,
                seed: 5,
            },
        );
        let get = |b: &str, m: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == b && r[1] == m).unwrap()[col]
                .parse()
                .unwrap()
        };
        for b in ["gzip", "crafty"] {
            assert!(
                get(b, "warm", 3) < get(b, "cold", 3),
                "{b}: warm long-D-MPKI must drop"
            );
            assert!(get(b, "warm", 2) > get(b, "cold", 2) * 0.9, "{b}: IPC sane");
        }
    }
}
