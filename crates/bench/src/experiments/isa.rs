//! The execution-driven experiment family (E-X11): the five-contributor
//! penalty decomposition over *executed* RV32IM kernel traces, and the
//! head-to-head profile comparison against the statistical workloads.
//!
//! Every workload the original reconstruction ran was synthesized from
//! measured distributions, so the interval model had only ever been
//! validated on dependence structure drawn from its own generative
//! assumptions. The `bmp-isa` kernels close that loop: real programs,
//! functionally executed, with branch outcomes and producer distances
//! read off architectural state. The decomposition, both simulation
//! engines, and the static bounds run on these traces *unchanged* —
//! the only new code on the path is the executor that produced them.
//!
//! `ex_isa_contributors` is the E-X9-shaped table for the kernel suite:
//! per-kernel misprediction statistics and the four local contributor
//! means under the baseline machine. `ex_isa_vs_synthetic` puts each
//! executed kernel next to the statistical profiles on the axes the
//! generators actually control (mix, dependence distance, branch
//! behaviour, penalty), making the executed-vs-synthetic deltas that
//! `docs/ISA.md` discusses reproducible numbers rather than prose.

use bmp_sim::Simulator;
use bmp_uarch::{presets, OpClass};

use crate::engine::{Ctx, TraceHandle};
use crate::table::{f2, f3};
use crate::{Scale, Table};

/// The statistical profiles the comparison table puts next to the
/// kernels: the same four-workload mix the predictor-generation family
/// uses (compressible/integer pair plus the two most branch-hostile
/// profiles).
pub const ISA_COMPARISON_WORKLOADS: [&str; 4] = ["gzip", "gcc", "twolf", "crafty"];

/// E-X11a: per-kernel five-contributor split under the baseline
/// machine. Columns mirror `ex_predictor_generations` so the executed
/// rows read side-by-side with the synthetic ones.
pub fn ex_isa_contributors(ctx: &Ctx, scale: Scale) -> Table {
    let mut t = Table::new(
        "ex_isa_contributors",
        "Extension E-X11: five-contributor split over executed RV32IM kernels",
        &[
            "kernel",
            "ops",
            "br-miss-rate",
            "br-MPKI",
            "mean-penalty",
            "mean-base",
            "mean-ilp",
            "mean-fu",
            "mean-dmiss",
            "IPC",
        ],
    );
    let cfg = presets::baseline_4wide();
    for name in bmp_isa::NAMES {
        let trace = ctx.kernel_trace(name, scale);
        let res = ctx.sim(&Simulator::new(cfg.clone()), &trace);
        let analysis = ctx.analyze(&cfg, &trace);
        let (base, ilp, fu, dmiss) = analysis
            .mean_contributions()
            .unwrap_or((0.0, 0.0, 0.0, 0.0));
        t.push_row(vec![
            name.to_owned(),
            trace.len().to_string(),
            f3(res.branch_stats.miss_rate()),
            f2(res.branch_stats.mpki(res.instructions)),
            f2(res.mean_penalty().unwrap_or(0.0)),
            f2(base),
            f2(ilp),
            f2(fu),
            f2(dmiss),
            f3(res.ipc()),
        ]);
    }
    t
}

/// One row of the comparison table, shared by both workload sources.
fn profile_row(source: &str, name: &str, ctx: &Ctx, trace: &TraceHandle) -> Vec<String> {
    let cfg = presets::baseline_4wide();
    let res = ctx.sim(&Simulator::new(cfg.clone()), trace);
    let stats = trace.stats();
    let branch_frac = stats.fraction(OpClass::Branch);
    let mem_frac = stats.fraction(OpClass::Load) + stats.fraction(OpClass::Store);
    let analysis = ctx.analyze(&cfg, trace);
    vec![
        source.to_owned(),
        name.to_owned(),
        f3(branch_frac),
        f3(mem_frac),
        f2(stats.dep_distances().mean().unwrap_or(0.0)),
        f2(stats.avg_taken_run()),
        f3(res.branch_stats.miss_rate()),
        f2(res.mean_penalty().unwrap_or(0.0)),
        f2(analysis.mean_penalty().unwrap_or(0.0)),
        f3(res.ipc()),
    ]
}

/// E-X11b: executed kernels and statistical profiles on one set of
/// axes — instruction mix, dependence-distance mean, dynamic run
/// length, misprediction rate, and the measured-vs-modelled penalty.
/// The `source` column ("executed" / "synthetic") is what the docs
/// sweep points at when it retires the "all workloads are statistical"
/// claim.
pub fn ex_isa_vs_synthetic(ctx: &Ctx, scale: Scale) -> Table {
    let mut t = Table::new(
        "ex_isa_vs_synthetic",
        "Extension E-X11: executed kernels vs statistical profiles",
        &[
            "source",
            "workload",
            "branch-frac",
            "mem-frac",
            "mean-dep-dist",
            "avg-taken-run",
            "br-miss-rate",
            "sim-penalty",
            "model-penalty",
            "IPC",
        ],
    );
    for name in bmp_isa::NAMES {
        let trace = ctx.kernel_trace(name, scale);
        t.push_row(profile_row("executed", name, ctx, &trace));
    }
    for name in ISA_COMPARISON_WORKLOADS {
        let trace = ctx.named_trace(name, scale);
        t.push_row(profile_row("synthetic", name, ctx, &trace));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineChoice;

    fn tiny() -> Scale {
        Scale {
            ops: 3_000,
            seed: 7,
        }
    }

    #[test]
    fn contributors_cover_every_kernel() {
        let ctx = Ctx::new();
        let t = ex_isa_contributors(&ctx, tiny());
        assert_eq!(t.rows.len(), bmp_isa::NAMES.len());
        for (row, name) in t.rows.iter().zip(bmp_isa::NAMES) {
            assert_eq!(row[0], name);
            assert_eq!(row[1], "3000", "executed traces fill the budget");
            let miss_rate: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&miss_rate), "row {row:?}");
            let ipc: f64 = row[9].parse().unwrap();
            assert!(ipc > 0.0, "row {row:?}");
            // The local contributors are means over real mispredicted
            // intervals; base is strictly positive whenever anything
            // mispredicted (every kernel does at this scale).
            let penalty: f64 = row[4].parse().unwrap();
            assert!(penalty > 0.0, "{name}: no misprediction penalty?");
        }
    }

    #[test]
    fn comparison_rows_cover_both_sources() {
        let ctx = Ctx::new();
        let t = ex_isa_vs_synthetic(&ctx, tiny());
        assert_eq!(
            t.rows.len(),
            bmp_isa::NAMES.len() + ISA_COMPARISON_WORKLOADS.len()
        );
        let executed = t.rows.iter().filter(|r| r[0] == "executed").count();
        assert_eq!(executed, bmp_isa::NAMES.len());
        for row in &t.rows {
            let branch_frac: f64 = row[2].parse().unwrap();
            assert!(
                (0.0..=0.5).contains(&branch_frac),
                "implausible branch fraction in {row:?}"
            );
            let dep: f64 = row[4].parse().unwrap();
            assert!(dep >= 1.0, "mean dependence distance < 1 in {row:?}");
        }
    }

    #[test]
    fn isa_tables_are_engine_independent() {
        let event = Ctx::with_engine(EngineChoice::EventDriven);
        let reference = Ctx::with_engine(EngineChoice::Reference);
        assert_eq!(
            ex_isa_contributors(&event, tiny()).rows,
            ex_isa_contributors(&reference, tiny()).rows
        );
        assert_eq!(
            ex_isa_vs_synthetic(&event, tiny()).rows,
            ex_isa_vs_synthetic(&reference, tiny()).rows
        );
    }
}
