//! The sensitivity sweeps E-F6 … E-F9, one per penalty contributor.

use bmp_sim::Simulator;
use bmp_uarch::fp::fnv1a;
use bmp_uarch::{presets, LatencyTable, PredictorConfig};
use bmp_workloads::{micro, spec};

use crate::artifacts::cache_key;
use crate::engine::{Ctx, TraceHandle};
use crate::table::{f2, f3};
use crate::{Scale, Table};

/// Synthesizes (or fetches from the cache) the mispredicting
/// dependence-chain microbenchmark of E-F7/E-F8, addressed by its full
/// parameter set.
fn chain_kernel(ctx: &Ctx, scale: Scale, chain: u32, taken_bias: f64) -> TraceHandle {
    let key = cache_key(
        "micro",
        &[
            fnv1a(b"branch_resolution_kernel"),
            scale.ops as u64,
            u64::from(chain),
            taken_bias.to_bits(),
            scale.seed,
        ],
    );
    ctx.keyed_trace(key, || {
        micro::branch_resolution_kernel(scale.ops, chain, taken_bias, scale.seed)
    })
}

/// E-F6: penalty versus frontend pipeline depth (contributor i). The
/// penalty tracks `resolution + depth`: a line of slope one whose offset
/// is the (depth-independent) resolution — the paper's argument that the
/// penalty is *not* just the pipeline length.
pub fn fig6_pipeline_depth(ctx: &Ctx, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig6_pipeline_depth",
        "Figure 6 (E-F6): penalty vs. frontend pipeline depth",
        &[
            "benchmark",
            "frontend-depth",
            "measured-penalty",
            "measured-resolution",
            "model-penalty",
            "IPC",
        ],
    );
    for name in ["twolf", "gcc"] {
        let trace = ctx.named_trace(name, scale);
        for depth in [1u32, 5, 10, 20, 30, 40] {
            let cfg = presets::deep_frontend(depth).expect("valid depth");
            let res = ctx.sim(&Simulator::new(cfg.clone()), &trace);
            let analysis = ctx.analyze(&cfg, &trace);
            t.push_row(vec![
                name.to_owned(),
                depth.to_string(),
                f2(res.mean_penalty().unwrap_or(0.0)),
                f2(res.mean_resolution().unwrap_or(0.0)),
                f2(analysis.mean_penalty().unwrap_or(0.0)),
                f3(res.ipc()),
            ]);
        }
    }
    t
}

/// E-F7: penalty versus functional-unit latency scaling (contributor iv).
pub fn fig7_fu_latency(ctx: &Ctx, scale: Scale) -> Table {
    let mut t = Table::new(
        "fig7_fu_latency",
        "Figure 7 (E-F7): resolution time vs. functional-unit latency scaling",
        &[
            "workload",
            "latency-scale",
            "measured-resolution",
            "model-resolution",
            "model-fu-share(iv)",
        ],
    );
    // A mispredicting mul-chain kernel plus a real profile.
    let branchy = chain_kernel(ctx, scale, 8, 1.0);
    let twolf = ctx.named_trace("twolf", scale);
    for (label, trace, predictor) in [
        ("chain-kernel", &branchy, PredictorConfig::AlwaysNotTaken),
        ("twolf", &twolf, PredictorConfig::default()),
    ] {
        for factor in [1.0, 1.5, 2.0, 3.0] {
            let cfg = presets::baseline_4wide()
                .to_builder()
                .latencies(LatencyTable::default().scaled(factor))
                .predictor(predictor)
                .build()
                .expect("valid config");
            let res = ctx.sim(&Simulator::new(cfg.clone()), trace);
            let analysis = ctx.analyze(&cfg, trace);
            let fu_share = analysis
                .mean_contributions()
                .map(|(_, _, fu, _)| fu)
                .unwrap_or(0.0);
            t.push_row(vec![
                label.to_owned(),
                f2(factor),
                f2(res.mean_resolution().unwrap_or(0.0)),
                f2(analysis.mean_resolution().unwrap_or(0.0)),
                f2(fu_share),
            ]);
        }
    }
    t
}

/// E-F8: resolution time versus the dependence-chain length ahead of the
/// branch (contributor iii — inherent ILP), on the controlled
/// microbenchmark.
pub fn fig8_ilp(ctx: &Ctx, scale: Scale) -> Table {
    let cfg = presets::baseline_4wide()
        .to_builder()
        .predictor(PredictorConfig::AlwaysNotTaken)
        .build()
        .expect("valid config");
    let sim = Simulator::new(cfg.clone());
    let mut t = Table::new(
        "fig8_ilp",
        "Figure 8 (E-F8): resolution time vs. dependence-chain length before the branch",
        &[
            "chain-length",
            "measured-resolution",
            "model-resolution",
            "model-ilp-share(iii)",
        ],
    );
    for chain in [1u32, 2, 4, 8, 16, 32] {
        let trace = chain_kernel(ctx, scale, chain, 1.0);
        let res = ctx.sim(&sim, &trace);
        let analysis = ctx.analyze(&cfg, &trace);
        let ilp_share = analysis
            .mean_contributions()
            .map(|(_, ilp, _, _)| ilp)
            .unwrap_or(0.0);
        t.push_row(vec![
            chain.to_string(),
            f2(res.mean_resolution().unwrap_or(0.0)),
            f2(analysis.mean_resolution().unwrap_or(0.0)),
            f2(ilp_share),
        ]);
    }
    t
}

/// E-F9: penalty versus L1 D-cache size (contributor v — short misses).
/// The workload's hot set is 24 KiB, so small L1s turn its loads into
/// short misses that stretch the chains feeding branches.
pub fn fig9_l1d_misses(ctx: &Ctx, scale: Scale) -> Table {
    let mut profile = spec::by_name("parser").expect("known profile");
    profile.memory.hot_bytes = 24 * 1024;
    profile.memory.hot_frac = 0.93;
    profile.memory.warm_frac = 0.06;
    let trace = ctx.trace(&profile, scale);
    let mut t = Table::new(
        "fig9_l1d_misses",
        "Figure 9 (E-F9): resolution time vs. L1 D-cache size (24 KiB hot set)",
        &[
            "l1d-size-KiB",
            "l1d-miss-rate",
            "measured-resolution",
            "model-resolution",
            "model-short-dmiss-share(v)",
        ],
    );
    for kib in [4u64, 8, 16, 32, 64] {
        let cfg = presets::l1d_sized(kib * 1024).expect("valid L1D size");
        let res = ctx.sim(&Simulator::new(cfg.clone()), &trace);
        let analysis = ctx.analyze(&cfg, &trace);
        let dmiss_share = analysis
            .mean_contributions()
            .map(|(_, _, _, v)| v)
            .unwrap_or(0.0);
        t.push_row(vec![
            kib.to_string(),
            f3(res.hierarchy.l1d.miss_rate()),
            f2(res.mean_resolution().unwrap_or(0.0)),
            f2(analysis.mean_resolution().unwrap_or(0.0)),
            f2(dmiss_share),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            ops: 10_000,
            seed: 5,
        }
    }

    #[test]
    fn fig6_penalty_grows_with_depth() {
        let ctx = Ctx::new();
        let t = fig6_pipeline_depth(&ctx, tiny());
        let twolf: Vec<(u32, f64)> = t
            .rows
            .iter()
            .filter(|r| r[0] == "twolf")
            .map(|r| (r[1].parse().unwrap(), r[2].parse().unwrap()))
            .collect();
        assert_eq!(twolf.len(), 6);
        for pair in twolf.windows(2) {
            assert!(
                pair[1].1 > pair[0].1,
                "penalty must grow with depth: {twolf:?}"
            );
        }
        // Slope roughly 1: penalty(40) - penalty(1) ~ 39.
        let delta = twolf.last().unwrap().1 - twolf.first().unwrap().1;
        assert!(
            (25.0..=60.0).contains(&delta),
            "depth sweep delta {delta} should be near 39"
        );
    }

    #[test]
    fn fig7_resolution_grows_with_latency() {
        let ctx = Ctx::new();
        let t = fig7_fu_latency(&ctx, tiny());
        let kernel: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[0] == "chain-kernel")
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(kernel.last().unwrap() > kernel.first().unwrap());
    }

    #[test]
    fn fig8_resolution_tracks_chain_length() {
        let ctx = Ctx::new();
        let t = fig8_ilp(&ctx, tiny());
        let measured: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for pair in measured.windows(2) {
            assert!(
                pair[1] >= pair[0] - 0.5,
                "resolution should not shrink with chains: {measured:?}"
            );
        }
        assert!(measured.last().unwrap() > &20.0, "32-chains are slow");
    }

    #[test]
    fn fig9_small_l1_hurts() {
        let ctx = Ctx::new();
        let t = fig9_l1d_misses(&ctx, tiny());
        let first: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(
            first > last,
            "4 KiB L1 must give a larger resolution than 64 KiB: {first} vs {last}"
        );
        let mr_first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let mr_last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(mr_first > mr_last, "miss rate must fall with size");
    }

    #[test]
    fn chain_kernel_is_cached_by_parameters() {
        let ctx = Ctx::new();
        let a = chain_kernel(&ctx, tiny(), 4, 1.0);
        let b = chain_kernel(&ctx, tiny(), 4, 1.0);
        let c = chain_kernel(&ctx, tiny(), 8, 1.0);
        assert_eq!(a.key(), b.key());
        assert!(std::sync::Arc::ptr_eq(a.trace(), b.trace()));
        assert_ne!(a.key(), c.key());
    }
}
