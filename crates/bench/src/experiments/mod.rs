//! The experiment implementations, one function per table/figure of the
//! reconstructed evaluation and its extensions (DESIGN.md, E-T1 … E-F11,
//! E-X1 … E-X11).

mod characterize;
mod extensions;
mod generations;
mod isa;
mod sensitivity;
mod tables;
mod validation;

pub use characterize::{
    fig11_penalty_distribution, fig1_interval_profile, fig2_penalty_per_benchmark,
    fig3_penalty_vs_interval, fig4_interval_distribution, fig5_contributor_breakdown,
};
pub use extensions::{
    ex1_predictor_study, ex2_window_sweep, ex3_closed_form, ex4_prefetch_study,
    ex5_occupancy_study, ex6_replacement_study, ex7_indirect_study, ex8_warmup_study,
};
pub use generations::{
    ex_h2p_contributors, ex_predictor_generations, generation_machine, generation_predictor,
    GENERATIONS, GENERATION_WORKLOADS,
};
pub use isa::{ex_isa_contributors, ex_isa_vs_synthetic, ISA_COMPARISON_WORKLOADS};
pub use sensitivity::{fig6_pipeline_depth, fig7_fu_latency, fig8_ilp, fig9_l1d_misses};
pub use tables::{table1_config, table2_benchmarks};
pub use validation::fig10_model_validation;

use crate::Scale;
use crate::Table;

/// Runs every experiment in canonical order through a single-threaded
/// engine (shared cache, sequential execution), returning the tables.
pub fn all(scale: Scale) -> Vec<Table> {
    crate::Engine::new(1).run_all(scale).tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_runs_at_tiny_scale() {
        let tables = all(Scale {
            ops: 5_000,
            seed: 3,
        });
        assert_eq!(tables.len(), 25);
        for t in &tables {
            assert!(!t.rows.is_empty(), "table {} is empty", t.id);
            assert!(!t.headers.is_empty());
        }
    }
}
