//! The characterization figures E-F1 … E-F5.

use bmp_core::{IntervalLengthHistogram, LENGTH_BUCKETS};
use bmp_sim::{SimOptions, Simulator};
use bmp_uarch::presets;
use bmp_workloads::spec;

use crate::convert::measured_interval_lengths;
use crate::engine::Ctx;
use crate::table::{f2, f3};
use crate::{Scale, Table};

/// Benchmarks used when a figure needs representatives rather than the
/// full suite.
const REPRESENTATIVES: [&str; 3] = ["gzip", "gcc", "twolf"];

/// E-F1: the interval-behaviour transient — average dispatch rate around
/// a branch misprediction (the paper's motivating timeline: steady rate
/// `D`, a drain-and-refill hole, recovery).
///
/// Only mispredictions at least 50 cycles away from the previous and
/// next recorded events are averaged, so the transient is not polluted by
/// neighbouring events.
pub fn fig1_interval_profile(ctx: &Ctx, scale: Scale) -> Table {
    const BEFORE: i64 = 20;
    const AFTER: i64 = 60;
    const ISOLATION: i64 = 50;
    let cfg = presets::baseline_4wide();
    let sim = Simulator::with_options(cfg, SimOptions::with_timeline());
    // crafty-like: predictable branches and quiet caches, so enough
    // mispredictions are far from any other event.
    let trace = ctx.named_trace("crafty", scale);
    let res = ctx.sim(&sim, &trace);
    let timeline = res.dispatch_timeline.as_ref().expect("timeline enabled");

    // Event cycles, for isolation filtering.
    let event_cycles: Vec<u64> = res.events.iter().map(|e| e.cycle).collect();
    let mut sums = vec![0u64; (BEFORE + AFTER + 1) as usize];
    let mut count = 0u64;
    for m in &res.mispredicts {
        let t0 = m.fetch_cycle as i64;
        let isolated = event_cycles
            .iter()
            .all(|&c| c as i64 == t0 || (c as i64 - t0).abs() > ISOLATION);
        if !isolated {
            continue;
        }
        if t0 - BEFORE < 0 || t0 + AFTER >= timeline.len() as i64 {
            continue;
        }
        for (slot, rel) in (-BEFORE..=AFTER).enumerate() {
            sums[slot] += u64::from(timeline[(t0 + rel) as usize]);
        }
        count += 1;
    }
    let mut t = Table::new(
        "fig1_interval_profile",
        &format!(
            "Figure 1 (E-F1): mean dispatch rate around an isolated misprediction \
             (crafty-like, {count} events averaged)"
        ),
        &["cycle-rel-to-mispredict-fetch", "mean-dispatch-rate"],
    );
    for (slot, rel) in (-BEFORE..=AFTER).enumerate() {
        let mean = if count == 0 {
            0.0
        } else {
            sums[slot] as f64 / count as f64
        };
        t.push_row(vec![rel.to_string(), f3(mean)]);
    }
    t
}

/// E-F2: the headline figure — average misprediction penalty per
/// benchmark, measured three ways against the frontend pipeline length
/// it is commonly equated with:
///
/// * **per-event accounting** — resolution + refill per misprediction;
/// * **two-run difference** — `(cycles − cycles_with_oracle) / events`,
///   the black-box penalty (overlap with other events makes it differ
///   from per-event accounting);
/// * **the interval model's prediction**.
pub fn fig2_penalty_per_benchmark(ctx: &Ctx, scale: Scale) -> Table {
    use bmp_uarch::PredictorConfig;
    let cfg = presets::baseline_4wide();
    let oracle = cfg
        .to_builder()
        .predictor(PredictorConfig::Perfect)
        .build()
        .expect("valid oracle machine");
    let sim = Simulator::new(cfg.clone());
    let oracle_sim = Simulator::new(oracle);
    let mut t = Table::new(
        "fig2_penalty_per_benchmark",
        "Figure 2 (E-F2): average branch misprediction penalty per benchmark \
         (frontend pipeline length = 5 cycles)",
        &[
            "benchmark",
            "measured-penalty",
            "two-run-penalty",
            "model-penalty",
            "frontend-depth",
            "measured-resolution",
        ],
    );
    for profile in spec::all_profiles() {
        let trace = ctx.trace(&profile, scale);
        let res = ctx.sim(&sim, &trace);
        let perfect = ctx.sim(&oracle_sim, &trace);
        let analysis = ctx.analyze(&cfg, &trace);
        let extra_events = res
            .mispredicts
            .len()
            .saturating_sub(perfect.mispredicts.len());
        let two_run = if extra_events > 0 {
            res.cycles.saturating_sub(perfect.cycles) as f64 / extra_events as f64
        } else {
            0.0
        };
        t.push_row(vec![
            profile.name.clone(),
            f2(res.mean_penalty().unwrap_or(0.0)),
            f2(two_run),
            f2(analysis.mean_penalty().unwrap_or(0.0)),
            cfg.frontend_depth.to_string(),
            f2(res.mean_resolution().unwrap_or(0.0)),
        ]);
    }
    t
}

/// E-F3: branch resolution time versus the number of instructions since
/// the last miss event (contributor ii — burstiness). Three series per
/// benchmark: measured, model-local (pure ramp-up) and model-effective.
pub fn fig3_penalty_vs_interval(ctx: &Ctx, scale: Scale) -> Table {
    let cfg = presets::baseline_4wide();
    let sim = Simulator::new(cfg.clone());
    let mut t = Table::new(
        "fig3_penalty_vs_interval",
        "Figure 3 (E-F3): branch resolution time vs. instructions since the last miss event",
        &[
            "benchmark",
            "interval-bucket-lo",
            "n-measured",
            "measured-resolution",
            "model-local-resolution",
            "model-effective-resolution",
        ],
    );
    for name in REPRESENTATIVES {
        let trace = ctx.named_trace(name, scale);
        let res = ctx.sim(&sim, &trace);
        let lengths = measured_interval_lengths(&res, trace.len());
        // Bucket the measured resolutions the same way the model does.
        let mut sums = vec![0u64; LENGTH_BUCKETS.len() + 1];
        let mut counts = vec![0u64; LENGTH_BUCKETS.len() + 1];
        for (m, &len) in res.mispredicts.iter().zip(&lengths) {
            let bucket = LENGTH_BUCKETS
                .iter()
                .position(|&b| len < b)
                .map(|p| p.saturating_sub(1))
                .unwrap_or(LENGTH_BUCKETS.len());
            sums[bucket] += m.resolution();
            counts[bucket] += 1;
        }
        let analysis = ctx.analyze(&cfg, &trace);
        let local = analysis.local_resolution_by_interval_length();
        let global = analysis.resolution_by_interval_length();
        let find = |curve: &[(usize, f64, u64)], lo: usize| {
            curve.iter().find(|(b, _, _)| *b == lo).map(|(_, m, _)| *m)
        };
        for (i, &lo) in LENGTH_BUCKETS.iter().enumerate() {
            if counts[i] == 0 {
                continue;
            }
            t.push_row(vec![
                name.to_owned(),
                lo.to_string(),
                counts[i].to_string(),
                f2(sums[i] as f64 / counts[i] as f64),
                find(&local, lo).map(f2).unwrap_or_else(|| "-".into()),
                find(&global, lo).map(f2).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t
}

/// E-F4: the distribution of inter-miss interval lengths per benchmark —
/// the burstiness characterization.
pub fn fig4_interval_distribution(ctx: &Ctx, scale: Scale) -> Table {
    let cfg = presets::baseline_4wide();
    let mut t = Table::new(
        "fig4_interval_distribution",
        "Figure 4 (E-F4): distribution of inter-miss-event interval lengths",
        &["benchmark", "interval-bucket-lo", "fraction", "count"],
    );
    for profile in spec::all_profiles() {
        let trace = ctx.trace(&profile, scale);
        let analysis = ctx.analyze(&cfg, &trace);
        let hist = IntervalLengthHistogram::from_intervals(&analysis.intervals);
        for (i, &lo) in LENGTH_BUCKETS.iter().enumerate() {
            if hist.count(i) == 0 {
                continue;
            }
            t.push_row(vec![
                profile.name.clone(),
                lo.to_string(),
                f3(hist.fraction(i)),
                hist.count(i).to_string(),
            ]);
        }
        let over = LENGTH_BUCKETS.len();
        if hist.count(over) > 0 {
            t.push_row(vec![
                profile.name.clone(),
                format!("{}+", LENGTH_BUCKETS[over - 1]),
                f3(hist.fraction(over)),
                hist.count(over).to_string(),
            ]);
        }
    }
    t
}

/// E-F5: the five-contributor decomposition of the mean penalty per
/// benchmark: frontend (i), the branch's own execution, inherent ILP
/// (iii), functional-unit latencies (iv), short D-misses (v), and the
/// cross-interval window carryover (part of ii).
pub fn fig5_contributor_breakdown(ctx: &Ctx, scale: Scale) -> Table {
    let cfg = presets::baseline_4wide();
    let mut t = Table::new(
        "fig5_contributor_breakdown",
        "Figure 5 (E-F5): decomposition of the mean misprediction penalty",
        &[
            "benchmark",
            "frontend(i)",
            "base",
            "ilp(iii)",
            "fu-latency(iv)",
            "short-dmiss(v)",
            "carryover(ii)",
            "total-penalty",
        ],
    );
    for profile in spec::all_profiles() {
        let trace = ctx.trace(&profile, scale);
        let analysis = ctx.analyze(&cfg, &trace);
        let Some((base, ilp, fu, dmiss)) = analysis.mean_contributions() else {
            continue;
        };
        let n = analysis.breakdowns.len() as f64;
        let carry: f64 = analysis
            .breakdowns
            .iter()
            .map(|b| b.carryover as f64)
            .sum::<f64>()
            / n;
        t.push_row(vec![
            profile.name.clone(),
            f2(f64::from(analysis.frontend_depth)),
            f2(base),
            f2(ilp),
            f2(fu),
            f2(dmiss),
            f2(carry),
            f2(analysis.mean_penalty().unwrap_or(0.0)),
        ]);
    }
    t
}

/// E-F11: the distribution of per-misprediction penalties — beyond the
/// mean, the shape: a mass of cheap bursty events, a body near the window
/// drain, and a long-miss-shadow tail. Measured (simulator) and modeled
/// side by side, per representative benchmark.
pub fn fig11_penalty_distribution(ctx: &Ctx, scale: Scale) -> Table {
    const BOUNDS: [u64; 7] = [2, 5, 10, 20, 50, 100, 200];
    let cfg = presets::baseline_4wide();
    let sim = Simulator::new(cfg.clone());
    let mut t = Table::new(
        "fig11_penalty_distribution",
        "Figure 11 (E-F11): distribution of branch resolution times",
        &[
            "benchmark",
            "resolution-bucket-lo",
            "measured-frac",
            "model-frac",
            "measured-n",
        ],
    );
    for name in REPRESENTATIVES {
        let trace = ctx.named_trace(name, scale);
        let res = ctx.sim(&sim, &trace);
        let analysis = ctx.analyze(&cfg, &trace);

        // Measured histogram over the same buckets.
        let mut measured = vec![0u64; BOUNDS.len() + 1];
        for m in &res.mispredicts {
            let bucket = BOUNDS
                .iter()
                .position(|&b| m.resolution() < b)
                .unwrap_or(BOUNDS.len());
            measured[bucket] += 1;
        }
        let modeled = analysis.resolution_histogram(&BOUNDS);
        let m_total: u64 = measured.iter().sum::<u64>().max(1);
        let a_total: u64 = modeled.iter().sum::<u64>().max(1);
        for i in 0..=BOUNDS.len() {
            if measured[i] == 0 && modeled[i] == 0 {
                continue;
            }
            let lo = if i == 0 {
                "0".to_owned()
            } else {
                BOUNDS[i - 1].to_string()
            };
            t.push_row(vec![
                name.to_owned(),
                lo,
                f3(measured[i] as f64 / m_total as f64),
                f3(modeled[i] as f64 / a_total as f64),
                measured[i].to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            ops: 10_000,
            seed: 5,
        }
    }

    #[test]
    fn fig1_shows_a_dispatch_hole() {
        let ctx = Ctx::new();
        let t = fig1_interval_profile(
            &ctx,
            Scale {
                ops: 60_000,
                seed: 5,
            },
        );
        // Parse the series back.
        let series: Vec<(i64, f64)> = t
            .rows
            .iter()
            .map(|r| (r[0].parse().unwrap(), r[1].parse().unwrap()))
            .collect();
        let before: f64 = series
            .iter()
            .filter(|(c, _)| (-10..=-1).contains(c))
            .map(|(_, v)| v)
            .sum::<f64>()
            / 10.0;
        // The frontend pipe keeps dispatching for ~frontend_depth cycles
        // after the mispredict is fetched; the hole opens at +6.
        let hole: f64 = series
            .iter()
            .filter(|(c, _)| (7..=11).contains(c))
            .map(|(_, v)| v)
            .sum::<f64>()
            / 5.0;
        assert!(
            before > hole + 0.5,
            "dispatch must collapse after the mispredict fetch: before {before}, hole {hole}"
        );
    }

    #[test]
    fn fig2_penalty_exceeds_frontend_everywhere() {
        let ctx = Ctx::new();
        let t = fig2_penalty_per_benchmark(&ctx, tiny());
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            let measured: f64 = row[1].parse().unwrap();
            let two_run: f64 = row[2].parse().unwrap();
            let fe: f64 = row[4].parse().unwrap();
            assert!(
                measured > fe,
                "{}: measured penalty {measured} must exceed frontend {fe}",
                row[0]
            );
            // The black-box measurement agrees on the headline.
            assert!(
                two_run > fe * 0.8,
                "{}: two-run penalty {two_run} should also exceed the frontend",
                row[0]
            );
        }
    }

    #[test]
    fn fig3_has_all_series() {
        let ctx = Ctx::new();
        let t = fig3_penalty_vs_interval(&ctx, tiny());
        assert!(!t.rows.is_empty());
        // Model-local series should ramp up within a benchmark. Only
        // well-populated buckets are meaningful at test scale.
        for name in REPRESENTATIVES {
            let vals: Vec<f64> = t
                .rows
                .iter()
                .filter(|r| r[0] == name && r[4] != "-" && r[2].parse::<u64>().unwrap() >= 10)
                .map(|r| r[4].parse().unwrap())
                .collect();
            if vals.len() >= 3 {
                let max = vals.iter().cloned().fold(0.0f64, f64::max);
                assert!(
                    max > vals[0],
                    "{name}: local resolution should ramp up: {vals:?}"
                );
            }
        }
    }

    #[test]
    fn fig4_fractions_sum_to_one_per_benchmark() {
        let ctx = Ctx::new();
        let t = fig4_interval_distribution(&ctx, tiny());
        for profile in ["gzip", "mcf"] {
            let sum: f64 = t
                .rows
                .iter()
                .filter(|r| r[0] == profile)
                .map(|r| r[2].parse::<f64>().unwrap())
                .sum();
            assert!((sum - 1.0).abs() < 0.02, "{profile} fractions sum to {sum}");
        }
    }

    #[test]
    fn fig5_components_reconcile() {
        let ctx = Ctx::new();
        let t = fig5_contributor_breakdown(&ctx, tiny());
        for row in &t.rows {
            let parts: Vec<f64> = row[1..7].iter().map(|c| c.parse().unwrap()).collect();
            let total: f64 = row[7].parse().unwrap();
            let sum: f64 = parts.iter().sum();
            assert!(
                (sum - total).abs() < 0.1,
                "{}: components {sum} vs total {total}",
                row[0]
            );
        }
    }

    #[test]
    fn fig11_distributions_normalize_and_track() {
        let ctx = Ctx::new();
        let t = fig11_penalty_distribution(
            &ctx,
            Scale {
                ops: 30_000,
                seed: 5,
            },
        );
        for name in REPRESENTATIVES {
            let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == name).collect();
            let m_sum: f64 = rows.iter().map(|r| r[2].parse::<f64>().unwrap()).sum();
            let a_sum: f64 = rows.iter().map(|r| r[3].parse::<f64>().unwrap()).sum();
            assert!(
                (m_sum - 1.0).abs() < 0.02,
                "{name} measured sums to {m_sum}"
            );
            assert!((a_sum - 1.0).abs() < 0.02, "{name} model sums to {a_sum}");
            // Model and measurement put their mass in overlapping
            // buckets: total variation distance bounded.
            let tv: f64 = rows
                .iter()
                .map(|r| (r[2].parse::<f64>().unwrap() - r[3].parse::<f64>().unwrap()).abs())
                .sum::<f64>()
                / 2.0;
            assert!(tv < 0.45, "{name}: distribution divergence {tv}");
        }
    }
}
