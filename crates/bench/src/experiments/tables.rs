//! E-T1 (machine configuration) and E-T2 (benchmark characteristics).

use bmp_sim::{SimOptions, Simulator};
use bmp_uarch::{presets, FU_KINDS};
use bmp_workloads::spec;

use crate::engine::Ctx;
use crate::table::{f2, f3};
use crate::{Scale, Table};

/// E-T1: the baseline machine configuration, as the paper's Table 1
/// lists its processor parameters.
pub fn table1_config() -> Table {
    let cfg = presets::baseline_4wide();
    let mut t = Table::new(
        "table1_config",
        "Table 1 (E-T1): baseline processor configuration",
        &["parameter", "value"],
    );
    let mut row = |k: &str, v: String| t.push_row(vec![k.to_owned(), v]);
    row("fetch / dispatch / issue / commit width", {
        format!(
            "{} / {} / {} / {}",
            cfg.fetch_width, cfg.dispatch_width, cfg.issue_width, cfg.commit_width
        )
    });
    row(
        "frontend pipeline depth",
        format!("{} cycles", cfg.frontend_depth),
    );
    row(
        "issue window / ROB",
        format!("{} / {}", cfg.window_size, cfg.rob_size),
    );
    let fus = FU_KINDS
        .iter()
        .map(|&k| format!("{}x {}", cfg.fus.count(k), k))
        .collect::<Vec<_>>()
        .join(", ");
    row("functional units", fus);
    row("branch predictor", cfg.predictor.to_string());
    row(
        "BTB / RAS",
        format!("{} entries / {} deep", cfg.btb_entries, cfg.ras_entries),
    );
    let c = |g: bmp_uarch::CacheGeometry| {
        format!(
            "{} KiB, {}-way, {} B lines, {} cycles",
            g.size_bytes() / 1024,
            g.ways(),
            g.line_bytes(),
            g.hit_latency()
        )
    };
    row("L1 I-cache", c(cfg.caches.l1i()));
    row("L1 D-cache", c(cfg.caches.l1d()));
    if let Some(l2) = cfg.caches.l2() {
        row("unified L2", c(l2));
    }
    row(
        "memory latency",
        format!("{} cycles", cfg.caches.mem_latency()),
    );
    t
}

/// E-T2: per-benchmark characteristics of the twelve SPECint2000-like
/// workloads on the baseline machine. The first 20% of each trace warms
/// the caches and predictors (statistics reset at the boundary), so the
/// rates below are steady-state rather than compulsory-miss-dominated.
pub fn table2_benchmarks(ctx: &Ctx, scale: Scale) -> Table {
    let cfg = presets::baseline_4wide();
    let mut t = Table::new(
        "table2_benchmarks",
        "Table 2 (E-T2): benchmark characteristics on the baseline machine (20% warmup)",
        &[
            "benchmark",
            "IPC",
            "br-miss-rate",
            "br-MPKI",
            "L1I-MPKI",
            "L1D-MPKI",
            "L2-MPKI",
            "long-D-MPKI",
        ],
    );
    let sim = Simulator::with_options(cfg, SimOptions::with_warmup(scale.ops as u64 / 5));
    for profile in spec::all_profiles() {
        let trace = ctx.trace(&profile, scale);
        let res = ctx.sim(&sim, &trace);
        let n = res.instructions;
        t.push_row(vec![
            profile.name.clone(),
            f3(res.ipc()),
            f3(res.branch_stats.miss_rate()),
            f2(res.branch_stats.mpki(n)),
            f2(res.hierarchy.l1i.mpki(n)),
            f2(res.hierarchy.l1d.mpki(n)),
            f2(res.hierarchy.l2.mpki(n)),
            f2(res.hierarchy.long_dmisses as f64 * 1000.0 / n as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_core_parameters() {
        let t = table1_config();
        assert!(t.rows.iter().any(|r| r[0].contains("frontend")));
        assert!(t.rows.iter().any(|r| r[0].contains("predictor")));
        assert!(t.rows.len() >= 9);
    }

    #[test]
    fn table2_covers_all_benchmarks() {
        let ctx = Ctx::new();
        let t = table2_benchmarks(
            &ctx,
            Scale {
                ops: 5_000,
                seed: 1,
            },
        );
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            let ipc: f64 = row[1].parse().unwrap();
            assert!(ipc > 0.0 && ipc <= 4.0, "IPC {ipc} out of range");
        }
    }
}
