//! Experiment scaling knobs.

/// Workload size and seed shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Dynamic instructions per workload run.
    pub ops: usize,
    /// Workload synthesis seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            ops: 200_000,
            seed: 42,
        }
    }
}

impl Scale {
    /// Reads the scale from the environment: `BMP_OPS` (instructions,
    /// default 200 000) and `BMP_SEED` (default 42). Unparsable values
    /// fall back to the defaults.
    pub fn from_env() -> Self {
        let d = Self::default();
        let ops = std::env::var("BMP_OPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v > 0)
            .unwrap_or(d.ops);
        let seed = std::env::var("BMP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d.seed);
        Self { ops, seed }
    }

    /// A small scale for unit tests.
    pub fn tiny() -> Self {
        Self {
            ops: 20_000,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let s = Scale::default();
        assert_eq!(s.ops, 200_000);
        assert_eq!(s.seed, 42);
        assert!(Scale::tiny().ops < s.ops);
    }
}
