//! Deterministic fault injection for the experiment harness.
//!
//! The fault-tolerance machinery (per-cell panic isolation, retries, the
//! crash-safe journal, `--resume`) is only trustworthy if it is
//! exercised, so the harness can be told to fail on purpose. A
//! [`FaultPlan`] is parsed from the `BMP_FAULT` environment variable (or
//! `bmp-bench --inject <spec>`) and threaded explicitly to the few
//! places that consult it — there is no global state, so tests can
//! construct plans directly and run in parallel.
//!
//! # Spec grammar
//!
//! A spec is one or more rules joined by `;`:
//!
//! ```text
//! rule  := kind ':' target [':' 'times=' N]
//! kind  := 'panic' | 'io' | 'budget' | 'torn-write' | 'corrupt'
//! target:= 'exp=' NAME | 'cell=' LABEL | 'index=' N | 'file=' NAME | 'store'
//! ```
//!
//! Examples:
//!
//! * `panic:exp=fig8_ilp` — every attempt of experiment `fig8_ilp`
//!   panics (so it ultimately fails and lands in the journal);
//! * `panic:cell=sim:gcc:base:times=1` — the first computation of that
//!   cell panics, the retry succeeds (proving retry determinism);
//! * `io:file=fig9_cpi` — writing `fig9_cpi.csv` fails;
//! * `budget:exp=tab2_penalty` — the experiment runs a sacrificial
//!   simulation with a tiny cycle budget, so a *real*
//!   `SimError::BudgetExceeded` travels the failure path.
//!
//! The `torn-write` and `corrupt` kinds target the persistent artifact
//! store (`BMP_STORE`, see `docs/SERVING.md`): `torn-write` leaves a
//! truncated record at the final path (a crash mid-write), `corrupt`
//! flips one payload bit after checksumming (silent media corruption).
//! Both are detected — never served — by the store's verification, so
//! they exercise the quarantine-and-recompute path end to end:
//!
//! * `torn-write:store:times=1` — the first store write this process
//!   performs is torn;
//! * `corrupt:index=3:times=1` — the store's 4th write (its write
//!   sequence number is the site index) is bit-flipped;
//! * `torn-write:store` — every store write is torn (the store
//!   degrades to a pure recompute cache, results stay correct).
//!
//! Every injected fault is deterministic: rules match by name/index and
//! fire a bounded number of times (`times=N`; default: every time), so
//! a fault schedule plus a seed fully determines the run.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// What kind of failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the targeted unit of work.
    Panic,
    /// Fail the write of the targeted output file.
    Io,
    /// Trip the cycle-budget watchdog in the targeted experiment.
    Budget,
    /// Leave a truncated record visible at the final path of a store
    /// write — the on-disk state a crash mid-write produces.
    TornWrite,
    /// Flip one payload bit of a store write after checksumming —
    /// silent corruption the next read must catch.
    Corrupt,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "io" => Some(FaultKind::Io),
            "budget" => Some(FaultKind::Budget),
            "torn-write" => Some(FaultKind::TornWrite),
            "corrupt" => Some(FaultKind::Corrupt),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Budget => "budget",
            FaultKind::TornWrite => "torn-write",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// What unit of work a rule selects.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FaultTarget {
    /// An experiment by registry name.
    Exp(String),
    /// A shared cell by label.
    Cell(String),
    /// A job by flat index (cells and experiments both count).
    Index(usize),
    /// An output file by table id (filename stem).
    File(String),
    /// Any write of the persistent artifact store.
    Store,
}

/// One parsed rule with its firing budget.
#[derive(Debug)]
struct FaultRule {
    kind: FaultKind,
    target: FaultTarget,
    /// Maximum number of times this rule fires (`u32::MAX` = unlimited).
    times: u32,
    fired: AtomicU32,
}

/// Identifies the unit of work asking "should I fail?".
///
/// Construct with the helpers and chain the optional dimensions:
/// `FaultSite::exp("fig8_ilp")`, `FaultSite::cell("sim:gcc").index(3)`,
/// `FaultSite::file("fig9_cpi")`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultSite<'a> {
    exp: Option<&'a str>,
    cell: Option<&'a str>,
    index: Option<usize>,
    file: Option<&'a str>,
    store: bool,
}

impl<'a> FaultSite<'a> {
    /// A site identified by experiment name.
    pub fn exp(name: &'a str) -> Self {
        Self {
            exp: Some(name),
            ..Self::default()
        }
    }

    /// A site identified by cell label.
    pub fn cell(label: &'a str) -> Self {
        Self {
            cell: Some(label),
            ..Self::default()
        }
    }

    /// A site identified by output file stem (table id).
    pub fn file(stem: &'a str) -> Self {
        Self {
            file: Some(stem),
            ..Self::default()
        }
    }

    /// Adds a flat job index to the site.
    pub fn index(mut self, index: usize) -> Self {
        self.index = Some(index);
        self
    }

    /// A persistent-store write site; `seq` is the store's write
    /// sequence number, so `index=N` rules can pick an arbitrary write
    /// point (the crash-recovery proptest's lever).
    pub fn store(seq: usize) -> Self {
        Self {
            store: true,
            index: Some(seq),
            ..Self::default()
        }
    }
}

/// A parsed, counting fault schedule. An empty (default) plan never
/// fires and costs one slice iteration per query.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan contains any rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed rule.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let mut parts = raw.split(':');
            let kind = parts
                .next()
                .and_then(FaultKind::parse)
                .ok_or_else(|| format!("bad fault kind in {raw:?} (panic|io|budget)"))?;
            let target_raw = parts
                .next()
                .ok_or_else(|| format!("missing target in {raw:?}"))?;
            // The cell label itself may contain ':', so everything up to
            // a trailing `times=N` segment belongs to the target.
            let mut target_parts = vec![target_raw];
            let mut times = u32::MAX;
            for extra in parts {
                if let Some(n) = extra.strip_prefix("times=") {
                    times = n
                        .parse()
                        .map_err(|_| format!("bad times={n:?} in {raw:?}"))?;
                } else {
                    target_parts.push(extra);
                }
            }
            let target_full = target_parts.join(":");
            let target = if let Some(name) = target_full.strip_prefix("exp=") {
                FaultTarget::Exp(name.to_string())
            } else if let Some(label) = target_full.strip_prefix("cell=") {
                FaultTarget::Cell(label.to_string())
            } else if let Some(n) = target_full.strip_prefix("index=") {
                FaultTarget::Index(
                    n.parse()
                        .map_err(|_| format!("bad index={n:?} in {raw:?}"))?,
                )
            } else if let Some(stem) = target_full.strip_prefix("file=") {
                FaultTarget::File(stem.to_string())
            } else if target_full == "store" {
                FaultTarget::Store
            } else {
                return Err(format!(
                    "bad target {target_full:?} in {raw:?} (exp=|cell=|index=|file=|store)"
                ));
            };
            rules.push(FaultRule {
                kind,
                target,
                times,
                fired: AtomicU32::new(0),
            });
        }
        Ok(Self { rules })
    }

    /// Reads `BMP_FAULT` from the environment.
    ///
    /// # Errors
    ///
    /// Propagates parse errors so a typo in the spec aborts the run
    /// loudly instead of silently injecting nothing.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("BMP_FAULT") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(Self::none()),
        }
    }

    /// Returns `true` when a rule of `kind` matches `site` and still has
    /// firing budget left. Each `true` consumes one firing.
    pub fn fires(&self, kind: FaultKind, site: FaultSite<'_>) -> bool {
        for rule in &self.rules {
            if rule.kind != kind {
                continue;
            }
            let matched = match &rule.target {
                FaultTarget::Exp(n) => site.exp == Some(n.as_str()),
                FaultTarget::Cell(l) => site.cell == Some(l.as_str()),
                FaultTarget::Index(i) => site.index == Some(*i),
                FaultTarget::File(f) => site.file == Some(f.as_str()),
                FaultTarget::Store => site.store,
            };
            if !matched {
                continue;
            }
            // Claim a firing slot atomically so concurrent cells never
            // over-fire a bounded rule.
            if rule
                .fired
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < rule.times).then_some(n + 1)
                })
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// The injected I/O error used for `io:` faults.
    pub fn io_error(context: &str) -> std::io::Error {
        std::io::Error::other(format!("injected io fault at {context}"))
    }

    /// Builds the persistent store's write-fault hook from a shared
    /// plan: `torn-write`/`corrupt` rules matching a store site (the
    /// write sequence number is the site index) become the store's
    /// injected faults. The hook owns its `Arc`, so it can outlive the
    /// caller; firing budgets are shared with every other query of the
    /// same plan.
    pub fn store_hook(plan: std::sync::Arc<FaultPlan>) -> bmp_core::store::WriteFaultHook {
        use bmp_core::store::InjectedWriteFault;
        Box::new(move |_key, seq| {
            let site = FaultSite::store(seq as usize);
            if plan.fires(FaultKind::TornWrite, site) {
                InjectedWriteFault::Torn
            } else if plan.fires(FaultKind::Corrupt, site) {
                InjectedWriteFault::BitFlip
            } else {
                InjectedWriteFault::None
            }
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            let target = match &r.target {
                FaultTarget::Exp(n) => format!("exp={n}"),
                FaultTarget::Cell(l) => format!("cell={l}"),
                FaultTarget::Index(i) => format!("index={i}"),
                FaultTarget::File(s) => format!("file={s}"),
                FaultTarget::Store => "store".to_string(),
            };
            write!(f, "{}:{}", r.kind.as_str(), target)?;
            if r.times != u32::MAX {
                write!(f, ":times={}", r.times)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let plan = FaultPlan::parse(
            "panic:exp=fig8_ilp; io:file=fig9_cpi:times=2;budget:cell=sim:gcc:base:times=1",
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.to_string(),
            "panic:exp=fig8_ilp; io:file=fig9_cpi:times=2; budget:cell=sim:gcc:base:times=1"
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("explode:exp=x").is_err());
        assert!(FaultPlan::parse("panic:everything").is_err());
        assert!(FaultPlan::parse("panic:index=many").is_err());
    }

    #[test]
    fn firing_respects_times_and_targets() {
        let plan = FaultPlan::parse("panic:exp=a:times=1; panic:index=7").unwrap();
        assert!(plan.fires(FaultKind::Panic, FaultSite::exp("a")));
        assert!(
            !plan.fires(FaultKind::Panic, FaultSite::exp("a")),
            "times=1 fires once"
        );
        assert!(!plan.fires(FaultKind::Panic, FaultSite::exp("b")));
        assert!(!plan.fires(FaultKind::Io, FaultSite::exp("a")));
        assert!(plan.fires(FaultKind::Panic, FaultSite::cell("x").index(7)));
        assert!(
            plan.fires(FaultKind::Panic, FaultSite::cell("y").index(7)),
            "unbounded rules keep firing"
        );
    }

    #[test]
    fn cell_labels_with_colons_match() {
        let plan = FaultPlan::parse("panic:cell=sim:gcc:base").unwrap();
        assert!(plan.fires(FaultKind::Panic, FaultSite::cell("sim:gcc:base")));
        assert!(!plan.fires(FaultKind::Panic, FaultSite::cell("sim:gcc")));
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.fires(FaultKind::Panic, FaultSite::exp("a").index(0)));
    }

    #[test]
    fn store_rules_parse_and_fire() {
        let plan = FaultPlan::parse("torn-write:store:times=1; corrupt:index=3:times=1").unwrap();
        assert_eq!(
            plan.to_string(),
            "torn-write:store:times=1; corrupt:index=3:times=1"
        );
        assert!(plan.fires(FaultKind::TornWrite, FaultSite::store(0)));
        assert!(
            !plan.fires(FaultKind::TornWrite, FaultSite::store(1)),
            "times=1 fires once"
        );
        assert!(!plan.fires(FaultKind::Corrupt, FaultSite::store(2)));
        assert!(
            plan.fires(FaultKind::Corrupt, FaultSite::store(3)),
            "index rules pick the store's Nth write"
        );
        // Store rules never leak onto non-store sites of the same index.
        let plan = FaultPlan::parse("torn-write:store").unwrap();
        assert!(!plan.fires(FaultKind::TornWrite, FaultSite::cell("sim:gcc").index(0)));
    }

    #[test]
    fn store_hook_maps_rules_to_injected_faults() {
        use bmp_core::store::InjectedWriteFault;
        let plan = std::sync::Arc::new(
            FaultPlan::parse("torn-write:index=0:times=1; corrupt:index=1:times=1").unwrap(),
        );
        let hook = FaultPlan::store_hook(plan);
        assert_eq!(hook(99, 0), InjectedWriteFault::Torn);
        assert_eq!(hook(99, 1), InjectedWriteFault::BitFlip);
        assert_eq!(hook(99, 2), InjectedWriteFault::None);
    }
}
