//! Property tests for the content-addressed artifact cache: going through
//! the cache must be observationally identical to fresh synthesis, for
//! arbitrary `(profile, ops, seed)` triples, and concurrent lookups must
//! collapse onto one shared instance.

use std::sync::Arc;

use bmp_bench::{Ctx, Scale};
use bmp_workloads::spec;
use proptest::prelude::*;

fn arb_scale() -> impl Strategy<Value = Scale> {
    (100usize..3_000, 0u64..1_000).prop_map(|(ops, seed)| Scale { ops, seed })
}

fn arb_profile_name() -> impl Strategy<Value = &'static str> {
    (0usize..spec::NAMES.len()).prop_map(|i| spec::NAMES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cache is transparent: a cache-mediated trace is op-for-op
    /// identical to a fresh synthesis from the same profile and scale.
    #[test]
    fn cached_trace_equals_fresh_synthesis(name in arb_profile_name(), scale in arb_scale()) {
        let ctx = Ctx::new();
        let cached = ctx.trace(&spec::by_name(name).expect("known profile"), scale);
        let fresh = spec::by_name(name)
            .expect("known profile")
            .generate(scale.ops, scale.seed);
        prop_assert_eq!(cached.trace().as_ref(), &fresh);
    }

    /// Concurrent lookups of the same key return the same shared
    /// instance, computed exactly once.
    #[test]
    fn concurrent_lookups_share_one_trace(name in arb_profile_name(), scale in arb_scale()) {
        let ctx = Ctx::new();
        let profile = spec::by_name(name).expect("known profile");
        let handles: Vec<_> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| s.spawn(|| ctx.trace(&profile, scale)))
                .collect();
            workers.into_iter().map(|w| w.join().expect("no panic")).collect()
        });
        for h in &handles[1..] {
            prop_assert!(Arc::ptr_eq(handles[0].trace(), h.trace()));
            prop_assert_eq!(handles[0].key(), h.key());
        }
        prop_assert_eq!(ctx.cache_stats().trace_misses, 1, "exactly one synthesis");
    }

    /// Distinct scales or profiles never alias in the cache.
    #[test]
    fn distinct_keys_never_alias(
        name in arb_profile_name(),
        scale in arb_scale(),
        bump in 1usize..50,
    ) {
        let ctx = Ctx::new();
        let profile = spec::by_name(name).expect("known profile");
        let a = ctx.trace(&profile, scale);
        let b = ctx.trace(
            &profile,
            Scale { ops: scale.ops + bump, seed: scale.seed },
        );
        prop_assert_ne!(a.key(), b.key());
        prop_assert!(!Arc::ptr_eq(a.trace(), b.trace()));
        prop_assert_eq!(ctx.cache_stats().trace_misses, 2);
    }
}
