//! Golden-table regression tests: seven experiments' CSVs at a small,
//! fixed scale (`BMP_OPS=2000`, `BMP_SEED=42`) are committed under
//! `tests/golden/` and must reproduce exactly. Any change to trace
//! synthesis, the simulator, the interval model or the experiment
//! plumbing that shifts a single digit shows up here.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```sh
//! BMP_GOLDEN_REGEN=1 cargo test -p bmp-bench --test golden_tables
//! ```

use bmp_bench::{Ctx, Scale};

fn golden_scale() -> Scale {
    Scale {
        ops: 2_000,
        seed: 42,
    }
}

fn check(name: &str, produce: fn(&Ctx, Scale) -> bmp_bench::Table) {
    let ctx = Ctx::new();
    let table = produce(&ctx, golden_scale());
    assert_eq!(table.id, name);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.csv"));
    let actual = table.to_csv();
    if std::env::var_os("BMP_GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name}: output drifted from the committed golden table; \
         if the change is intentional, regenerate with BMP_GOLDEN_REGEN=1"
    );
}

#[test]
fn fig2_matches_golden() {
    check(
        "fig2_penalty_per_benchmark",
        bmp_bench::experiments::fig2_penalty_per_benchmark,
    );
}

#[test]
fn fig5_matches_golden() {
    check(
        "fig5_contributor_breakdown",
        bmp_bench::experiments::fig5_contributor_breakdown,
    );
}

#[test]
fn fig10_matches_golden() {
    check(
        "fig10_model_validation",
        bmp_bench::experiments::fig10_model_validation,
    );
}

#[test]
fn predictor_generations_match_golden() {
    check(
        "ex_predictor_generations",
        bmp_bench::experiments::ex_predictor_generations,
    );
}

#[test]
fn h2p_contributors_match_golden() {
    check(
        "ex_h2p_contributors",
        bmp_bench::experiments::ex_h2p_contributors,
    );
}

// The two E-X11 executed-kernel tables additionally pin the bmp-isa
// executor: any change to kernel codegen, the decoder, or the trace
// emitter shifts these CSVs.

#[test]
fn isa_contributors_match_golden() {
    check(
        "ex_isa_contributors",
        bmp_bench::experiments::ex_isa_contributors,
    );
}

#[test]
fn isa_vs_synthetic_matches_golden() {
    check(
        "ex_isa_vs_synthetic",
        bmp_bench::experiments::ex_isa_vs_synthetic,
    );
}
