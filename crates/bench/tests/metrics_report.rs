//! Observability-layer regression tests: the metrics pipeline (collect →
//! save → load → report/diff) against committed golden output, and the
//! zero-observable-effect guarantee that turning metrics on changes no
//! CSV byte.
//!
//! To regenerate the golden diff after an *intentional* model change:
//!
//! ```sh
//! BMP_GOLDEN_REGEN=1 cargo test -p bmp-bench --test metrics_report
//! ```

use bmp_bench::engine::{experiment_defs, EngineChoice, ExperimentDef};
use bmp_bench::{collect_experiment, metrics, report, Ctx, Scale};
use bmp_core::ExperimentMetrics;

fn def(name: &str) -> ExperimentDef {
    experiment_defs()
        .into_iter()
        .find(|d| d.name == name)
        .expect("known experiment")
}

fn run_at(seed: u64, names: &[&str]) -> Vec<ExperimentMetrics> {
    let ctx = Ctx::with_settings(EngineChoice::EventDriven, true);
    let scale = Scale { ops: 2_000, seed };
    names
        .iter()
        .map(|n| collect_experiment(&ctx, &def(n), scale))
        .collect()
}

/// Golden-file test on a known pair of metrics runs: the same two
/// experiments at seeds 42 and 43 produce a fixed diff. Catches drift
/// in the accounting itself *and* in the diff renderer.
#[test]
fn diff_of_known_runs_matches_golden() {
    let names = ["fig3_penalty_vs_interval", "table2_benchmarks"];
    let old = run_at(42, &names);
    let new = run_at(43, &names);
    let rendered = report::diff(&old, &new).render();

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_diff.txt");
    if std::env::var_os("BMP_GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        rendered, expected,
        "metrics diff drifted from the committed golden; \
         if intentional, regenerate with BMP_GOLDEN_REGEN=1"
    );
}

/// The full file pipeline: save both runs to disk, load them back the
/// way `bmp-report` does, and check the diff is unchanged by the
/// round-trip (and empty for identical runs).
#[test]
fn diff_survives_the_file_round_trip() {
    let names = ["fig3_penalty_vs_interval"];
    let old = run_at(42, &names);
    let new = run_at(43, &names);
    let in_memory = report::diff(&old, &new).render();

    let tmp = std::env::temp_dir().join(format!("bmp_metrics_diff_{}", std::process::id()));
    let (old_dir, new_dir) = (tmp.join("old"), tmp.join("new"));
    for (dir, docs) in [(&old_dir, &old), (&new_dir, &new)] {
        for doc in docs.iter() {
            metrics::save_metrics(dir, doc).expect("save metrics");
        }
    }
    let old_loaded = report::load_dir(&old_dir.join("metrics")).expect("load old");
    let new_loaded = report::load_dir(&new_dir.join("metrics")).expect("load new");
    std::fs::remove_dir_all(&tmp).ok();

    assert_eq!(old_loaded, old);
    assert_eq!(report::diff(&old_loaded, &new_loaded).render(), in_memory);
    assert!(report::diff(&old_loaded, &old_loaded).is_empty());
}

/// Turning metrics on must not change a single CSV byte: the three
/// committed golden tables reproduce exactly from a metrics-on context
/// (the metrics-off identity is the existing `golden_tables` test,
/// which runs with `BMP_METRICS` unset).
#[test]
fn metrics_on_tables_match_the_committed_goldens() {
    let scale = Scale {
        ops: 2_000,
        seed: 42,
    };
    let ctx = Ctx::with_settings(EngineChoice::EventDriven, true);
    assert!(ctx.metrics_on());
    for (name, produce) in [
        (
            "fig2_penalty_per_benchmark",
            bmp_bench::experiments::fig2_penalty_per_benchmark
                as fn(&Ctx, Scale) -> bmp_bench::Table,
        ),
        (
            "fig5_contributor_breakdown",
            bmp_bench::experiments::fig5_contributor_breakdown,
        ),
        (
            "fig10_model_validation",
            bmp_bench::experiments::fig10_model_validation,
        ),
    ] {
        let table = produce(&ctx, scale);
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{name}.csv"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        assert_eq!(
            table.to_csv(),
            expected,
            "{name}: collecting metrics must not perturb the table"
        );
    }
}
