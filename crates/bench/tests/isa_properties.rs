//! Property tests over the executed-kernel pipeline (ISSUE 10): for
//! every kernel, at randomized op budgets and seeds, the recorded trace
//! must (a) pass the BMP1xx well-formedness and BMP9xx provenance lint
//! families with zero findings, and (b) produce bit-identical results
//! on both simulation engines after the CompiledTrace / SuperblockMap
//! round-trip the event-driven engine consumes.
//!
//! These are the executor's external contracts: the bench registry, the
//! analyzers and the golden tables all assume them per-kernel at fixed
//! scales; this test asserts them across the input space.

use bmp_sim::Simulator;
use bmp_trace::SuperblockMap;
use bmp_uarch::presets;
use proptest::prelude::*;

fn lint_codes(trace: &bmp_trace::Trace) -> Vec<&'static str> {
    bmp_analyze::lint_trace(trace)
        .iter()
        .chain(bmp_analyze::lint_executed_trace(trace).iter())
        .map(|d| d.code)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_traces_are_lint_clean_and_engine_identical(
        kernel in prop::sample::select(bmp_isa::NAMES.to_vec()),
        ops in 512_usize..4096,
        seed in 0_u64..1024,
    ) {
        let trace = bmp_isa::kernel_trace(kernel, ops, seed).expect("registered kernel");
        prop_assert_eq!(trace.len(), ops, "executed traces fill the op budget exactly");

        // (a) Zero findings from both lint families.
        let codes = lint_codes(&trace);
        prop_assert!(codes.is_empty(), "{}: lint findings {:?}", kernel, codes);

        // (b) The compiled round-trip drives the event-driven engine to
        // the same result the reference engine computes from the raw
        // trace — bit identity, not approximate agreement.
        let cfg = presets::baseline_4wide();
        let sim = Simulator::new(cfg.clone());
        let compiled = trace.compile();
        let sb = SuperblockMap::build(&compiled, cfg.caches.l1i().line_bytes());
        let event = sim.run_compiled_with(&compiled, &sb);
        let reference = sim.run_reference(&trace);
        prop_assert_eq!(event, reference, "{}: engines diverged", kernel);
    }

    #[test]
    fn kernel_traces_are_deterministic(
        kernel in prop::sample::select(bmp_isa::NAMES.to_vec()),
        seed in 0_u64..1024,
    ) {
        let a = bmp_isa::kernel_trace(kernel, 1_500, seed).expect("registered kernel");
        let b = bmp_isa::kernel_trace(kernel, 1_500, seed).expect("registered kernel");
        prop_assert_eq!(a.ops(), b.ops(), "{}: re-execution diverged", kernel);
    }
}

#[test]
fn unknown_kernel_is_none() {
    assert!(bmp_isa::kernel_trace("gzip", 1_000, 1).is_none());
    assert!(bmp_isa::kernel_trace("", 1_000, 1).is_none());
}
