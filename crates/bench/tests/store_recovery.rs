//! End-to-end crash-safety of the persistent artifact store
//! (`BMP_STORE`): a run interrupted mid-write — simulated with the
//! `torn-write` fault at arbitrary write points — or silently corrupted
//! on disk must, on restart against the same store, quarantine the
//! damage, recompute, and reproduce byte-identical CSVs. The store may
//! lose work; it must never serve bad bytes or change a result.
//!
//! Also covers the `--resume` hardening: a journal record whose CSV was
//! corrupted (not just deleted) after the fact triggers a recompute
//! instead of a silent skip.

use std::collections::HashMap;
use std::path::Path;
use std::process::Command;

/// Runs the `run_all` binary in `dir` at the shared tiny scale.
fn run_all_in(dir: &Path, args: &[&str], fault: Option<&str>, store: Option<&Path>) -> i32 {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
    cmd.current_dir(dir)
        .args(args)
        .env("BMP_OPS", "500")
        .env("BMP_SEED", "42")
        .env("BMP_THREADS", "2")
        .env("BMP_ATTEMPTS", "2")
        .env_remove("BMP_FAULT")
        .env_remove("BMP_STORE");
    if let Some(spec) = fault {
        cmd.env("BMP_FAULT", spec);
    }
    if let Some(store) = store {
        cmd.env("BMP_STORE", store);
    }
    let out = cmd.output().expect("run_all spawns");
    out.status.code().expect("run_all exits normally")
}

/// All `*.csv` files under `dir/results`, as name → bytes.
fn csvs_under(dir: &Path) -> HashMap<String, Vec<u8>> {
    std::fs::read_dir(dir.join("results"))
        .expect("results dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".csv"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("csv readable"),
            )
        })
        .collect()
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bmp_store_e2e_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Files in the store's quarantine directory.
fn quarantined(store: &Path) -> usize {
    std::fs::read_dir(store.join("quarantine"))
        .map(|it| it.flatten().count())
        .unwrap_or(0)
}

/// Every `.rec` record file in the store's shard directories.
fn record_files(store: &Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(store).expect("store readable").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.path().is_dir() && name.len() == 2 {
            for rec in std::fs::read_dir(entry.path())
                .expect("shard readable")
                .flatten()
            {
                if rec.file_name().to_string_lossy().ends_with(".rec") {
                    out.push(rec.path());
                }
            }
        }
    }
    out
}

/// The acceptance flow: tear a store write at several different write
/// points (a crash mid-write leaves exactly this on-disk state), then
/// restart against the same store. The faulted run itself is already
/// byte-identical to a clean run — a store fault may cost recompute,
/// never correctness — and the restart's recovery scan quarantines the
/// torn record instead of serving it.
#[test]
fn torn_writes_at_arbitrary_points_recover_on_restart() {
    let clean = fresh_dir("torn_clean");
    assert_eq!(run_all_in(&clean, &[], None, None), 0, "clean run exits 0");
    let baseline = csvs_under(&clean);
    assert!(!baseline.is_empty());

    for write_point in [0usize, 5] {
        let dir = fresh_dir(&format!("torn_{write_point}"));
        let store = dir.join("store");
        let spec = format!("torn-write:index={write_point}:times=1");
        assert_eq!(
            run_all_in(&dir, &[], Some(&spec), Some(&store)),
            0,
            "a torn store write must not fail the run (write point {write_point})"
        );
        assert_eq!(
            csvs_under(&dir),
            baseline,
            "CSVs byte-identical despite the torn write at point {write_point}"
        );

        // Restart: wipe the results and recompute from the same store.
        std::fs::remove_dir_all(dir.join("results")).expect("wipe results");
        assert_eq!(run_all_in(&dir, &[], None, Some(&store)), 0);
        assert_eq!(
            csvs_under(&dir),
            baseline,
            "restart against the damaged store reproduces the bytes (point {write_point})"
        );
        assert!(
            quarantined(&store) >= 1,
            "the torn record was quarantined, not silently dropped (point {write_point})"
        );
    }
}

/// Silent media corruption: flip one bit in a stored record between
/// runs. The next run's recovery scan must quarantine it and recompute;
/// the corrupt bytes must never influence a CSV.
#[test]
fn bit_flipped_records_are_quarantined_never_served() {
    let dir = fresh_dir("bitflip");
    let store = dir.join("store");
    assert_eq!(run_all_in(&dir, &[], None, Some(&store)), 0);
    let baseline = csvs_under(&dir);
    let records = record_files(&store);
    assert!(!records.is_empty(), "the run persisted records");

    // Corrupt one record on disk, the way failing media would.
    let victim = &records[records.len() / 2];
    let mut bytes = std::fs::read(victim).expect("record readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(victim, &bytes).expect("record rewritable");

    std::fs::remove_dir_all(dir.join("results")).expect("wipe results");
    assert_eq!(run_all_in(&dir, &[], None, Some(&store)), 0);
    assert_eq!(
        csvs_under(&dir),
        baseline,
        "recomputed CSVs are byte-identical; corruption never leaked"
    );
    assert!(
        quarantined(&store) >= 1,
        "the flipped record was quarantined"
    );
    assert!(
        !store.join("LOCK").exists(),
        "the exiting process released the store lock"
    );
}

/// The in-process `corrupt` fault (bit flip after checksumming) writes
/// records that *look* atomic but fail verification: the same run stays
/// byte-identical, and a warm restart quarantines them.
#[test]
fn injected_corruption_faults_keep_results_identical() {
    let clean = fresh_dir("corrupt_clean");
    assert_eq!(run_all_in(&clean, &[], None, None), 0);
    let baseline = csvs_under(&clean);

    let dir = fresh_dir("corrupt_store");
    let store = dir.join("store");
    assert_eq!(
        run_all_in(&dir, &[], Some("corrupt:store:times=2"), Some(&store)),
        0
    );
    assert_eq!(csvs_under(&dir), baseline);

    std::fs::remove_dir_all(dir.join("results")).expect("wipe results");
    assert_eq!(run_all_in(&dir, &[], None, Some(&store)), 0);
    assert_eq!(csvs_under(&dir), baseline);
    assert!(
        quarantined(&store) >= 2,
        "both corrupted writes quarantined"
    );
}

/// `--resume` validates journal records against CSV *content*, not mere
/// existence: a corrupted (but present) CSV is recomputed.
#[test]
fn resume_recomputes_a_corrupted_csv() {
    let dir = fresh_dir("resume_hash");
    assert_eq!(run_all_in(&dir, &[], None, None), 0);
    let baseline = csvs_under(&dir);

    // Corrupt one CSV in place — same file, same mtime semantics a
    // partial disk failure would leave. The legacy existence check
    // would happily skip this experiment.
    let victim = dir.join("results/fig8_ilp.csv");
    std::fs::write(&victim, b"id,garbage\n1,2\n").expect("csv writable");

    assert_eq!(run_all_in(&dir, &["--resume"], None, None), 0);
    assert_eq!(
        csvs_under(&dir),
        baseline,
        "--resume detected the hash mismatch and recomputed the CSV"
    );
}
