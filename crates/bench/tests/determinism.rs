//! The engine's central guarantee: the produced tables are byte-identical
//! for any thread count. `BMP_THREADS=1` is the exact legacy sequential
//! path (no cell fan-out), so comparing it against an 8-worker run covers
//! both phases of the job graph, the result merge order, and the cache.

use bmp_bench::{Engine, Scale};

/// A cross-section of the registry: both tables, figure experiments that
/// share baseline/oracle/warmup simulations, a microbenchmark sweep, and
/// two extension studies.
const SUBSET: &[&str] = &[
    "table1_config",
    "table2_benchmarks",
    "fig2_penalty_per_benchmark",
    "fig5_contributor_breakdown",
    "fig8_ilp",
    "fig10_model_validation",
    "ex5_occupancy_study",
    "ex8_warmup_study",
    "ex_predictor_generations",
    "ex_h2p_contributors",
];

#[test]
fn results_are_identical_for_any_thread_count() {
    let scale = Scale {
        ops: 2_000,
        seed: 42,
    };
    let sequential = Engine::new(1).run_named(SUBSET, scale);
    let parallel = Engine::new(8).run_named(SUBSET, scale);

    assert_eq!(sequential.tables.len(), SUBSET.len());
    assert_eq!(parallel.tables.len(), SUBSET.len());
    for (seq, par) in sequential.tables.iter().zip(&parallel.tables) {
        assert_eq!(seq.id, par.id, "merge order must be the registry order");
        assert_eq!(
            seq.to_csv(),
            par.to_csv(),
            "{}: 1-thread and 8-thread CSVs must match byte for byte",
            seq.id
        );
    }
}

#[test]
fn repeated_runs_share_the_cache() {
    let scale = Scale {
        ops: 2_000,
        seed: 42,
    };
    let engine = Engine::new(4);
    let first = engine.run_named(&["fig2_penalty_per_benchmark"], scale);
    let second = engine.run_named(&["fig2_penalty_per_benchmark"], scale);
    assert_eq!(
        first.tables[0].to_csv(),
        second.tables[0].to_csv(),
        "a warm cache must not change the result"
    );
    // The second run computed nothing new.
    assert_eq!(
        second.cache.trace_misses + second.cache.sim_misses + second.cache.analysis_misses,
        first.cache.trace_misses + first.cache.sim_misses + first.cache.analysis_misses,
        "every artifact of the repeat run must come from the cache"
    );
}
