//! Loopback end-to-end tests for `bmp-serve`'s hardening: admission
//! control under overload (429), deadline enforcement (504), request
//! coalescing of identical jobs, and graceful drain (in-flight work
//! completes, then the server exits).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bmp_bench::engine::{Ctx, EngineChoice};
use bmp_bench::serve::{ServeConfig, Server};
use bmp_bench::Scale;

/// Binds a server with the given knobs and runs it on a thread.
fn spawn_server(
    cfg: ServeConfig,
    scale: Scale,
) -> (
    SocketAddr,
    Arc<bmp_bench::serve::ServerState>,
    std::thread::JoinHandle<()>,
) {
    let ctx = Arc::new(Ctx::with_settings(EngineChoice::EventDriven, false));
    let server = Server::bind(cfg, ctx, scale).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let state = server.state();
    let join = std::thread::spawn(move || server.run());
    (addr, state, join)
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        handlers: 2,
        queue_depth: 4,
        default_deadline_ms: 30_000,
        attempts: 1,
        results_dir: std::env::temp_dir().join("bmp_serve_e2e_no_results"),
        read_timeout: Duration::from_secs(2),
    }
}

/// One full request/response round trip.
fn talk(addr: SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("send");
    s.flush().expect("flush");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn post_job(addr: SocketAddr, body: &str) -> String {
    talk(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Overload: with one handler wedged and the queue full, the acceptor
/// answers 429 immediately — bounded admission, no unbounded buffering.
#[test]
fn overload_returns_429() {
    let cfg = ServeConfig {
        handlers: 1,
        queue_depth: 1,
        ..small_cfg()
    };
    let (addr, state, join) = spawn_server(cfg, Scale { ops: 500, seed: 42 });

    // Wedge the single handler: a connection that sends nothing holds
    // it until the read timeout.
    let wedge = TcpStream::connect(addr).expect("wedge connects");
    std::thread::sleep(Duration::from_millis(200));
    // Fill the one queue slot the same way.
    let filler = TcpStream::connect(addr).expect("filler connects");
    std::thread::sleep(Duration::from_millis(200));

    // The next connection must be rejected at the door.
    let got = talk(addr, "GET /healthz HTTP/1.1\r\n\r\n");
    assert!(got.starts_with("HTTP/1.1 429"), "expected 429, got: {got}");
    assert!(
        state
            .counters
            .rejected_busy
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the rejection was counted"
    );

    drop(wedge);
    drop(filler);
    state.begin_drain();
    join.join().expect("server drains");
}

/// Deadlines: a job whose deadline already passed when a handler picks
/// it up is answered 504 without burning compute.
#[test]
fn expired_deadline_returns_504() {
    let (addr, state, join) = spawn_server(small_cfg(), Scale { ops: 500, seed: 42 });
    let got = post_job(addr, "{\"experiment\": \"fig8_ilp\", \"deadline_ms\": 0}");
    assert!(got.starts_with("HTTP/1.1 504"), "expected 504, got: {got}");
    assert_eq!(
        state
            .counters
            .deadline_expired
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // The service is still healthy afterwards.
    let got = talk(addr, "GET /readyz HTTP/1.1\r\n\r\n");
    assert!(got.starts_with("HTTP/1.1 200"), "{got}");
    state.begin_drain();
    join.join().expect("server drains");
}

/// Coalescing: concurrent identical submissions produce one computation
/// and byte-identical bodies for every caller.
#[test]
fn identical_jobs_coalesce_to_one_computation() {
    let cfg = ServeConfig {
        handlers: 4,
        ..small_cfg()
    };
    // Enough work that the duplicates arrive while the leader computes.
    let (addr, state, join) = spawn_server(
        cfg,
        Scale {
            ops: 20_000,
            seed: 42,
        },
    );

    let body = "{\"experiment\": \"fig2_penalty_per_benchmark\"}";
    let mut clients = Vec::new();
    for _ in 0..4 {
        clients.push(std::thread::spawn(move || post_job(addr, body)));
    }
    let responses: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    for got in &responses {
        assert!(
            got.starts_with("HTTP/1.1 200"),
            "every caller gets the table: {got}"
        );
    }
    let first_body = responses[0].split("\r\n\r\n").nth(1).expect("body");
    for got in &responses[1..] {
        assert_eq!(
            got.split("\r\n\r\n").nth(1).expect("body"),
            first_body,
            "coalesced callers receive byte-identical CSV"
        );
    }
    assert!(
        state
            .counters
            .coalesced
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "at least one duplicate attached to the in-flight job"
    );
    state.begin_drain();
    join.join().expect("server drains");
}

/// Graceful drain: work in flight when the drain request arrives still
/// completes with a 200; afterwards the server exits and the port no
/// longer accepts work.
#[test]
fn drain_completes_in_flight_jobs() {
    let (addr, _state, join) = spawn_server(
        small_cfg(),
        Scale {
            ops: 20_000,
            seed: 42,
        },
    );

    let inflight =
        std::thread::spawn(move || post_job(addr, "{\"experiment\": \"fig7_fu_latency\"}"));
    // Let the job get picked up, then drain mid-computation.
    std::thread::sleep(Duration::from_millis(150));
    let got = talk(addr, "POST /drain HTTP/1.1\r\n\r\n");
    assert!(got.starts_with("HTTP/1.1 202"), "{got}");

    let got = inflight.join().expect("in-flight client");
    assert!(
        got.starts_with("HTTP/1.1 200"),
        "the in-flight job completed through the drain: {got}"
    );
    join.join().expect("run() returned after the drain");

    // The listener is gone; new work is refused at the TCP level.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(mut s) = refused {
        // Some platforms complete the handshake from the backlog; the
        // read then sees EOF/reset instead of a response.
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut buf = String::new();
        let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
        let n = s.read_to_string(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "no handler answers after drain: {buf}");
    }
}
