//! The robustness contract end to end: under *any* injected fault
//! schedule, the experiments that survive produce CSVs byte-identical to
//! a clean run (property test over random schedules), and the `run_all`
//! binary's journal / exit-code / `--resume` flow recovers a faulted run
//! into exactly the clean run's results directory.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::process::Command;

use bmp_bench::engine::{experiment_defs, ExperimentDef, OutcomeKind, RunPolicy};
use bmp_bench::{Engine, FaultPlan, Scale};
use bmp_core::journal::{RunJournal, RunStatus};
use proptest::prelude::*;

/// A small cross-section of the registry: a table, two figure
/// experiments sharing baseline cells, and an extension study.
const SUBSET: &[&str] = &[
    "table1_config",
    "fig2_penalty_per_benchmark",
    "fig8_ilp",
    "ex3_closed_form",
];

const SCALE: Scale = Scale {
    ops: 1_000,
    seed: 42,
};

fn subset_defs() -> Vec<ExperimentDef> {
    experiment_defs()
        .into_iter()
        .filter(|d| SUBSET.contains(&d.name))
        .collect()
}

/// CSV bytes per experiment from a clean (fault-free) tolerant run.
fn clean_csvs(threads: usize) -> HashMap<&'static str, String> {
    let plan = FaultPlan::none();
    let policy = RunPolicy::with_attempts(2, &plan);
    let report = Engine::new(threads).run_tolerant(&subset_defs(), SCALE, &policy, &|_| {});
    report
        .outcomes
        .iter()
        .map(|o| match &o.kind {
            OutcomeKind::Completed(t) => (o.name, t.to_csv()),
            other => panic!("clean run must complete {}: {other:?}", o.name),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every random schedule of panic/budget faults over the subset,
    /// the surviving experiments' CSVs are byte-identical to a clean
    /// run's, and exactly the experiments whose fault outlasts the retry
    /// budget fail.
    #[test]
    fn surviving_csvs_match_a_clean_run_under_any_fault_schedule(
        threads in prop::sample::select(vec![1usize, 4]),
        faults in prop::collection::vec(
            (
                prop::sample::select(SUBSET.to_vec()),
                prop::sample::select(vec!["panic", "budget"]),
                1u32..=3,
            ),
            0..=3,
        ),
    ) {
        let attempts = 2u32;
        // One rule per experiment; a later tuple for the same name
        // is dropped so the expected-failure predicate stays simple.
        let mut by_name: HashMap<&str, (&str, u32)> = HashMap::new();
        for (name, kind, times) in &faults {
            by_name.entry(name).or_insert((kind, *times));
        }
        let spec = by_name
            .iter()
            .map(|(name, (kind, times))| format!("{kind}:exp={name}:times={times}"))
            .collect::<Vec<_>>()
            .join(";");
        let plan = if spec.is_empty() {
            FaultPlan::none()
        } else {
            FaultPlan::parse(&spec).expect("generated spec parses")
        };
        let expected_failed: HashSet<&str> = by_name
            .iter()
            .filter(|(_, (_, times))| *times >= attempts)
            .map(|(name, _)| *name)
            .collect();

        let clean = clean_csvs(threads);
        let policy = RunPolicy::with_attempts(attempts, &plan);
        let report = Engine::new(threads).run_tolerant(&subset_defs(), SCALE, &policy, &|_| {});

        for outcome in &report.outcomes {
            match &outcome.kind {
                OutcomeKind::Completed(table) => {
                    prop_assert!(
                        !expected_failed.contains(outcome.name),
                        "{} completed but its fault outlasts the retry budget (spec {spec})",
                        outcome.name
                    );
                    prop_assert_eq!(
                        &table.to_csv(),
                        &clean[outcome.name],
                        "{} must be byte-identical to the clean run (spec {})",
                        outcome.name, spec
                    );
                }
                OutcomeKind::Failed(e) => {
                    prop_assert!(
                        expected_failed.contains(outcome.name),
                        "{} failed unexpectedly under spec {spec}: {e}",
                        outcome.name
                    );
                    prop_assert_eq!(outcome.attempts, attempts);
                }
                OutcomeKind::Skipped => prop_assert!(false, "nothing was skipped"),
            }
        }
    }
}

/// Runs the `run_all` binary in `dir` with the given extra args/env and
/// returns its exit code.
fn run_all_in(dir: &Path, args: &[&str], fault_env: Option<&str>) -> i32 {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
    cmd.current_dir(dir)
        .args(args)
        .env("BMP_OPS", "500")
        .env("BMP_SEED", "42")
        .env("BMP_THREADS", "2")
        .env("BMP_ATTEMPTS", "2")
        .env_remove("BMP_FAULT");
    if let Some(spec) = fault_env {
        cmd.env("BMP_FAULT", spec);
    }
    let out = cmd.output().expect("run_all spawns");
    out.status.code().expect("run_all exits normally")
}

/// All `*.csv` files under `dir/results`, as name → bytes.
fn csvs_under(dir: &Path) -> HashMap<String, Vec<u8>> {
    std::fs::read_dir(dir.join("results"))
        .expect("results dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".csv"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("csv readable"),
            )
        })
        .collect()
}

fn journal_in(dir: &Path) -> RunJournal {
    let text =
        std::fs::read_to_string(dir.join("results/run_journal.json")).expect("journal exists");
    RunJournal::parse(&text).expect("journal parses")
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bmp_fault_e2e_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The acceptance flow: a run where one experiment panics exits non-zero
/// with the failure journaled while every sibling completes; removing
/// the fault and re-running with `--resume` skips the completed work and
/// recovers a results directory byte-identical to a clean run's.
#[test]
fn a_faulted_run_resumes_into_the_clean_results() {
    let clean = fresh_dir("clean");
    assert_eq!(run_all_in(&clean, &[], None), 0, "clean run exits 0");
    let clean_journal = journal_in(&clean);
    assert_eq!(clean_journal.failed_count(), 0);
    let clean_files = csvs_under(&clean);
    assert!(!clean_files.is_empty());

    // Fault the run through the environment (the CLI flag takes the same
    // path): fig8_ilp panics on every attempt and ultimately fails.
    let faulted = fresh_dir("faulted");
    assert_eq!(
        run_all_in(&faulted, &[], Some("panic:exp=fig8_ilp")),
        i32::from(bmp_bench::EXIT_EXPERIMENT_FAILED),
        "a failed experiment makes the run exit 1"
    );
    let journal = journal_in(&faulted);
    let rec = journal.find("fig8_ilp").expect("failure is journaled");
    assert_eq!(rec.status, RunStatus::Failed);
    assert_eq!(rec.attempts, 2, "both attempts were consumed");
    assert!(rec.error.as_deref().is_some_and(|e| e.contains("injected")));
    assert!(
        !faulted.join("results/fig8_ilp.csv").exists(),
        "a failed experiment writes no CSV"
    );
    let survivors = csvs_under(&faulted);
    assert_eq!(survivors.len(), clean_files.len() - 1, "siblings completed");

    // Remove the fault and resume: only fig8_ilp re-runs, and the
    // recovered directory matches the clean one byte for byte.
    assert_eq!(run_all_in(&faulted, &["--resume"], None), 0);
    let resumed = journal_in(&faulted);
    assert_eq!(resumed.failed_count(), 0);
    assert_eq!(resumed.experiments.len(), clean_journal.experiments.len());
    let recovered = csvs_under(&faulted);
    assert_eq!(recovered.len(), clean_files.len());
    for (name, bytes) in &clean_files {
        assert_eq!(
            recovered.get(name),
            Some(bytes),
            "{name} must be byte-identical to the clean run after resume"
        );
    }

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&faulted);
}

/// Write failures are the *other* failure domain: the experiment itself
/// succeeds, the run exits 2 (not 1), the journal marks the record
/// failed so `--resume` re-runs it once the disk heals.
#[test]
fn an_injected_write_failure_exits_2_and_resumes() {
    let dir = fresh_dir("iofault");
    assert_eq!(
        run_all_in(
            &dir,
            &["--inject", "io:file=fig2_penalty_per_benchmark"],
            None
        ),
        i32::from(bmp_bench::EXIT_WRITE_FAILED),
        "a write failure with no experiment failure exits 2"
    );
    let rec = journal_in(&dir)
        .find("fig2_penalty_per_benchmark")
        .cloned()
        .expect("write failure is journaled");
    assert_eq!(rec.status, RunStatus::Failed);
    assert!(rec
        .error
        .as_deref()
        .is_some_and(|e| e.contains("write failed")));
    assert!(!dir.join("results/fig2_penalty_per_benchmark.csv").exists());

    assert_eq!(
        run_all_in(&dir, &["--resume"], None),
        0,
        "resume heals the write"
    );
    assert!(dir.join("results/fig2_penalty_per_benchmark.csv").exists());
    assert_eq!(journal_in(&dir).failed_count(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed fault spec is a usage error: exit 2 before any work runs.
#[test]
fn a_bad_fault_spec_is_a_usage_error() {
    let dir = fresh_dir("badspec");
    assert_eq!(
        run_all_in(&dir, &["--inject", "frobnicate:exp=x"], None),
        i32::from(bmp_bench::EXIT_WRITE_FAILED)
    );
    assert!(!dir.join("results").exists(), "no work ran");
    let _ = std::fs::remove_dir_all(&dir);
}
