//! Criterion benchmarks of the analytical model — the ablation for
//! design decision D1 (DESIGN.md): the interval model must be much
//! cheaper than cycle-level simulation while predicting the same
//! penalties (accuracy is quantified by experiment E-F10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bmp_core::{cpi, FunctionalOutcome, PenaltyModel};
use bmp_sim::Simulator;
use bmp_uarch::presets;
use bmp_workloads::spec;

const OPS: usize = 50_000;

/// D1 ablation: analytical model vs cycle-level simulation on the same
/// trace. Compare the two groups' times to read off the speedup.
fn model_vs_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("d1_model_vs_sim");
    let cfg = presets::baseline_4wide();
    let trace = spec::by_name("gcc")
        .expect("known profile")
        .generate(OPS, 1);
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("penalty_model", |b| {
        let model = PenaltyModel::new(cfg.clone());
        b.iter(|| model.analyze(&trace));
    });
    group.bench_function("cycle_level_sim", |b| {
        let sim = Simulator::new(cfg.clone());
        b.iter(|| sim.run(&trace));
    });
    group.finish();
}

fn model_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_stages");
    let cfg = presets::baseline_4wide();
    let trace = spec::by_name("twolf")
        .expect("known profile")
        .generate(OPS, 1);
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("functional_pass", |b| {
        b.iter(|| FunctionalOutcome::compute(&trace, &cfg));
    });
    group.bench_function("cpi_stack", |b| {
        b.iter(|| cpi::predict(&trace, &cfg));
    });
    group.bench_function("scheduled_cycles", |b| {
        b.iter(|| cpi::predict_cycles_scheduled(&trace, &cfg));
    });
    group.finish();
}

/// D1a ablation: the two model granularities. The local per-interval
/// schedule powers the knock-out decomposition; the whole-trace schedule
/// ("interval simulation") adds cross-interval state.
fn d1a_local_vs_global(c: &mut Criterion) {
    use bmp_core::drain::{schedule_interval, schedule_trace, MachineModel, WindowParams};
    use bmp_core::{segment, FunctionalOutcome, IntervalEventKind};

    let cfg = presets::baseline_4wide();
    let trace = spec::by_name("twolf")
        .expect("known profile")
        .generate(OPS, 1);
    let outcome = FunctionalOutcome::compute(&trace, &cfg);
    let intervals = segment(trace.len(), &outcome.events);

    let mut group = c.benchmark_group("d1a_schedule_granularity");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("local_per_interval", |b| {
        let params = WindowParams::from(&cfg);
        b.iter(|| {
            let mut total = 0u64;
            for iv in &intervals {
                if iv.kind != Some(IntervalEventKind::BranchMispredict) {
                    continue;
                }
                let ops = &trace.ops()[iv.start..=iv.end];
                let s = schedule_interval(
                    ops,
                    params,
                    &cfg.latencies,
                    |i| outcome.load_latency[iv.start + i],
                    false,
                );
                total += s.resolution(ops.len() - 1);
            }
            total
        });
    });
    group.bench_function("whole_trace", |b| {
        let model = MachineModel::from(&cfg);
        let events: Vec<_> = outcome
            .events
            .iter()
            .filter_map(|e| match e.kind {
                IntervalEventKind::BranchMispredict => {
                    Some(bmp_core::drain::FrontendEvent::Mispredict { pos: e.pos })
                }
                _ => None,
            })
            .collect();
        b.iter(|| {
            schedule_trace(
                trace.ops(),
                model,
                &cfg.latencies,
                |i| outcome.load_latency[i],
                &events,
                false,
            )
            .total_cycles()
        });
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    for name in ["gzip", "mcf"] {
        let profile = spec::by_name(name).expect("known profile");
        group.throughput(Throughput::Elements(OPS as u64));
        group.bench_with_input(BenchmarkId::new("generate", name), &profile, |b, p| {
            b.iter(|| p.generate(OPS, 1));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    model_vs_simulation,
    model_stages,
    d1a_local_vs_global,
    workload_generation
);
criterion_main!(benches);
