//! Criterion microbenchmarks of the component models: predictors and
//! caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bmp_branch::build_predictor;
use bmp_cache::MemoryHierarchy;
use bmp_uarch::{HierarchyConfig, PredictorConfig};

fn predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictors");
    const N: u64 = 10_000;
    group.throughput(Throughput::Elements(N));
    let configs = [
        PredictorConfig::Bimodal { entries: 4096 },
        PredictorConfig::GShare {
            entries: 4096,
            history_bits: 12,
        },
        PredictorConfig::Local {
            history_entries: 1024,
            history_bits: 10,
            pattern_entries: 1024,
        },
        PredictorConfig::Tournament {
            entries: 4096,
            history_bits: 12,
        },
    ];
    for cfg in configs {
        group.bench_with_input(BenchmarkId::from_parameter(cfg.name()), &cfg, |b, cfg| {
            let mut p = build_predictor(cfg);
            b.iter(|| {
                let mut wrong = 0u32;
                for i in 0..N {
                    let pc = (i % 97) * 4;
                    let taken = i % 3 != 0;
                    if p.predict(pc, taken) != taken {
                        wrong += 1;
                    }
                    p.update(pc, taken);
                }
                wrong
            });
        });
    }
    group.finish();
}

fn hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hierarchy");
    const N: u64 = 10_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("data_access_stream", |b| {
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..N {
                // A mix of hits (small stride) and misses (large jumps).
                let addr = if i % 8 == 0 { i * 8192 } else { (i % 512) * 64 };
                total += u64::from(mem.data_access(addr).latency);
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, predictors, hierarchy);
criterion_main!(benches);
