//! Criterion benchmarks of the cycle-level simulator's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bmp_sim::Simulator;
use bmp_uarch::presets;
use bmp_workloads::spec;

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let cfg = presets::baseline_4wide();
    const OPS: usize = 50_000;
    for name in ["gzip", "gcc", "mcf"] {
        let trace = spec::by_name(name).expect("known profile").generate(OPS, 1);
        group.throughput(Throughput::Elements(OPS as u64));
        group.bench_with_input(BenchmarkId::new("run", name), &trace, |b, t| {
            let sim = Simulator::new(cfg.clone());
            b.iter(|| sim.run(t));
        });
    }
    group.finish();
}

fn sim_width_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_width");
    let trace = spec::by_name("gzip")
        .expect("known profile")
        .generate(20_000, 1);
    for width in [2u32, 4, 8] {
        let cfg = presets::baseline_4wide()
            .to_builder()
            .width(width)
            .build()
            .expect("valid width");
        group.bench_with_input(BenchmarkId::from_parameter(width), &cfg, |b, cfg| {
            let sim = Simulator::new(cfg.clone());
            b.iter(|| sim.run(&trace));
        });
    }
    group.finish();
}

criterion_group!(benches, sim_throughput, sim_width_scaling);
criterion_main!(benches);
