//! `BMP8xx` — persistent-store consistency.
//!
//! `run_all` and `bmp-serve` optionally persist simulation results in
//! the content-addressed on-disk store (`BMP_STORE`, see
//! [`bmp_core::store`] and `docs/SERVING.md`). The store verifies every
//! record it serves, so corruption can never reach a consumer — but a
//! store that *holds* corruption silently recomputes on every run.
//! These rules audit a store tree offline (read-only, without taking
//! the owner lock) so operators see the damage instead of paying for it
//! repeatedly:
//!
//! * `BMP800` (error) — a record file is unreadable or fails
//!   verification (truncated, bad magic, version skew, checksum
//!   mismatch, trailing bytes).
//! * `BMP801` (error) — placement defects: the header's key does not
//!   match the filename, the file sits in the wrong shard directory,
//!   or a `.rec` filename is not 16 hex digits.
//! * `BMP802` (warn) — `quarantine/` holds records awaiting recompute;
//!   each is a past integrity save worth investigating.
//! * `BMP803` (warn) — the `LOCK` file is stale (its recorded owner
//!   pid is dead) or malformed; the next open breaks it automatically.
//! * `BMP804` (warn) — foreign files in the store tree: crash-leftover
//!   `.tmp` files (swept on the next open) or anything the store never
//!   writes.

use std::path::Path;

use bmp_core::store::{decode_record, key_from_file_name, read_lock, record_rel_path};

use crate::diag::Diagnostic;

/// Runs the `BMP80x` rules over the store tree at `root`, read-only.
/// The owner lock is *not* taken: auditing a store a live process owns
/// is legal (records are immutable once renamed into place).
pub fn lint_store(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) => {
            diags.push(Diagnostic::error(
                "BMP800",
                root.display().to_string(),
                format!("cannot read store root: {e}"),
            ));
            return diags;
        }
    };

    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        let is_dir = entry.file_type().map(|t| t.is_dir()).unwrap_or(false);
        match name.as_str() {
            "LOCK" if !is_dir => lint_lock(&path, &mut diags),
            "quarantine" if is_dir => lint_quarantine(&path, &mut diags),
            shard if is_dir && is_shard_name(shard) => lint_shard(&path, shard, &mut diags),
            _ => diags.push(
                Diagnostic::warn(
                    "BMP804",
                    path.display().to_string(),
                    "foreign entry in the store root — the store only writes \
                     LOCK, quarantine/ and two-hex-digit shard directories",
                )
                .with_suggestion("remove it, or move it out of the store tree"),
            ),
        }
    }
    diags
}

/// A shard directory name: exactly the two lowercase hex digits of the
/// key's top byte.
fn is_shard_name(name: &str) -> bool {
    name.len() == 2
        && name
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

fn lint_lock(path: &Path, diags: &mut Vec<Diagnostic>) {
    match read_lock(path) {
        Some(info) if info.alive => {} // live owner: normal during a run
        Some(info) => match info.pid {
            Some(pid) => diags.push(
                Diagnostic::warn(
                    "BMP803",
                    path.display().to_string(),
                    format!("stale lock: owner pid {pid} is dead; the next open breaks it"),
                )
                .with_suggestion("no action needed unless opens keep failing"),
            ),
            None => diags.push(Diagnostic::warn(
                "BMP803",
                path.display().to_string(),
                format!(
                    "malformed lock file (expected 'pid <n>', got {:?}); \
                     the next open breaks it",
                    info.owner
                ),
            )),
        },
        None => diags.push(Diagnostic::warn(
            "BMP803",
            path.display().to_string(),
            "unreadable lock file; the next open breaks it",
        )),
    }
}

fn lint_quarantine(dir: &Path, diags: &mut Vec<Diagnostic>) {
    let count = std::fs::read_dir(dir)
        .map(|it| it.flatten().count())
        .unwrap_or(0);
    if count > 0 {
        diags.push(
            Diagnostic::warn(
                "BMP802",
                dir.display().to_string(),
                format!(
                    "{count} quarantined record(s) awaiting recompute — each marks \
                     a past integrity failure the store refused to serve"
                ),
            )
            .with_suggestion(
                "re-run with BMP_STORE set to repopulate; delete the quarantine \
                 once investigated",
            ),
        );
    }
}

fn lint_shard(dir: &Path, shard: &str, diags: &mut Vec<Diagnostic>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        diags.push(Diagnostic::error(
            "BMP800",
            dir.display().to_string(),
            "cannot read shard directory",
        ));
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let locus = path.display().to_string();
        let name = entry.file_name().to_string_lossy().into_owned();

        if name.ends_with(".tmp") {
            diags.push(
                Diagnostic::warn(
                    "BMP804",
                    &locus,
                    "crash-leftover temporary file; the next open sweeps it",
                )
                .with_suggestion("no action needed"),
            );
            continue;
        }
        let Some(key) = key_from_file_name(&name) else {
            diags.push(Diagnostic::error(
                "BMP801",
                &locus,
                "filename is not <16-hex-digits>.rec — the store never wrote this",
            ));
            continue;
        };
        let want = record_rel_path(key);
        let want_shard = want
            .parent()
            .map(|p| p.display().to_string())
            .unwrap_or_default();
        if want_shard != shard {
            diags.push(Diagnostic::error(
                "BMP801",
                &locus,
                format!(
                    "record for key {key:016x} sits in shard {shard}/ but belongs \
                     in {want_shard}/ — lookups will never find it"
                ),
            ));
            // Still verify the bytes below: a misplaced record can also
            // be corrupt, and both findings matter.
        }
        match std::fs::read(&path) {
            Ok(bytes) => {
                if let Err(defect) = decode_record(key, &bytes) {
                    diags.push(
                        Diagnostic::error("BMP800", &locus, format!("corrupt record: {defect}"))
                            .with_suggestion(
                                "the store quarantines and recomputes this on its next \
                                 open; nothing will be served from it",
                            ),
                    );
                }
            }
            Err(e) => diags.push(Diagnostic::error(
                "BMP800",
                &locus,
                format!("unreadable record: {e}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::store::encode_record;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bmp_storelint_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_record(root: &Path, key: u64, payload: &[u8]) -> std::path::PathBuf {
        let rel = record_rel_path(key);
        let path = root.join(&rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode_record(key, payload)).unwrap();
        path
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_store_lints_clean() {
        let root = tmpdir("clean");
        std::fs::create_dir_all(root.join("quarantine")).unwrap();
        std::fs::write(root.join("LOCK"), format!("pid {}", std::process::id())).unwrap();
        write_record(&root, 0xdead_beef_0000_0001, b"payload");
        let diags = lint_store(&root);
        std::fs::remove_dir_all(&root).ok();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn corrupt_and_misplaced_records_fire_800_and_801() {
        let root = tmpdir("corrupt");
        // Bit-flipped payload: checksum mismatch.
        let p = write_record(&root, 0x1100_0000_0000_0002, b"payload");
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&p, bytes).unwrap();
        // A record moved to the wrong shard.
        let good = write_record(&root, 0x2200_0000_0000_0003, b"ok");
        let wrong = root.join("ff");
        std::fs::create_dir_all(&wrong).unwrap();
        std::fs::rename(&good, wrong.join(good.file_name().unwrap())).unwrap();
        let diags = lint_store(&root);
        std::fs::remove_dir_all(&root).ok();
        let codes = codes(&diags);
        assert!(codes.contains(&"BMP800"), "{diags:?}");
        assert!(codes.contains(&"BMP801"), "{diags:?}");
    }

    #[test]
    fn quarantine_stale_lock_and_foreign_files_warn() {
        let root = tmpdir("warns");
        std::fs::create_dir_all(root.join("quarantine")).unwrap();
        std::fs::write(root.join("quarantine/x.rec.checksum"), b"junk").unwrap();
        // A pid that cannot be running (beyond pid_max on Linux).
        std::fs::write(root.join("LOCK"), "pid 4194304999").unwrap();
        std::fs::write(root.join("README"), b"what is this").unwrap();
        std::fs::create_dir_all(root.join("aa")).unwrap();
        std::fs::write(root.join("aa/leftover.tmp"), b"partial").unwrap();
        let diags = lint_store(&root);
        std::fs::remove_dir_all(&root).ok();
        let codes = codes(&diags);
        assert!(codes.contains(&"BMP802"), "{diags:?}");
        assert!(codes.contains(&"BMP803"), "{diags:?}");
        assert!(codes.contains(&"BMP804"), "{diags:?}");
        assert!(
            diags.iter().all(|d| d.severity != crate::Severity::Error),
            "these are all warnings: {diags:?}"
        );
    }
}
