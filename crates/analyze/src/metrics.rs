//! `BMP5xx` — metrics-file consistency.
//!
//! With `BMP_METRICS=1`, `run_all` writes one observability document per
//! experiment under `results/metrics/` (schema: [`bmp_core::metrics`],
//! contract: `docs/OBSERVABILITY.md`). Future performance work measures
//! itself against these files, so they get the same static scrutiny as
//! configs and journals: the accounting identities that hold by
//! construction in the writer must still hold in the file a reader is
//! about to trust.
//!
//! * `BMP500` (error) — the document cannot be parsed or carries an
//!   unsupported `version`.
//! * `BMP501` (error) — the model's contributor identity is broken:
//!   `base + ilp + fu_latency + short_dmiss` must equal
//!   `local_resolution`, and `local_resolution + carryover` must equal
//!   `resolution`.
//! * `BMP502` (error) — branch-interval counts disagree with the
//!   mispredict count: the accountant emits exactly one branch interval
//!   per recorded mispredict.
//! * `BMP503` (error) — a CPI stack with non-finite or negative
//!   components; (warn) — the model CPI deviates from the measured CPI
//!   by more than 50% (the interval model is first-order, but a gap
//!   that large means the stack and the measurement describe different
//!   machines).
//! * `BMP504` (error) — histogram shape: both histograms must have
//!   [`HISTOGRAM_BUCKETS`] buckets, the length histogram must sum to
//!   the total interval count, and the resolution histogram to the
//!   branch-interval count.
//! * `BMP505` (error) — refill conservation: every branch interval
//!   contributes exactly `frontend_depth` refill cycles, so
//!   `refill_total` must equal `bmiss × frontend_depth` (and the model's
//!   `refill` must equal `intervals × frontend_depth`).

use bmp_core::metrics::{ExperimentMetrics, WorkloadMetrics, HISTOGRAM_BUCKETS, METRICS_VERSION};

use crate::diag::Diagnostic;

fn lint_workload(diags: &mut Vec<Diagnostic>, doc: &ExperimentMetrics, w: &WorkloadMetrics) {
    let locus = format!("{}/{}", doc.name, w.workload);

    if w.intervals.bmiss != w.mispredicts {
        diags.push(Diagnostic::error(
            "BMP502",
            &locus,
            format!(
                "{} branch intervals but {} mispredicts — the accountant \
                 emits exactly one branch interval per mispredict",
                w.intervals.bmiss, w.mispredicts
            ),
        ));
    }

    if w.length_histogram.len() != HISTOGRAM_BUCKETS
        || w.resolution_histogram.len() != HISTOGRAM_BUCKETS
    {
        diags.push(Diagnostic::error(
            "BMP504",
            &locus,
            format!(
                "histograms must have {HISTOGRAM_BUCKETS} buckets (found {} length, \
                 {} resolution)",
                w.length_histogram.len(),
                w.resolution_histogram.len()
            ),
        ));
    } else {
        let len_sum: u64 = w.length_histogram.iter().sum();
        if len_sum != w.intervals.total() {
            diags.push(Diagnostic::error(
                "BMP504",
                &locus,
                format!(
                    "length histogram sums to {len_sum} but {} intervals were \
                     recorded — every interval lands in exactly one bucket",
                    w.intervals.total()
                ),
            ));
        }
        let res_sum: u64 = w.resolution_histogram.iter().sum();
        if res_sum != w.intervals.bmiss {
            diags.push(Diagnostic::error(
                "BMP504",
                &locus,
                format!(
                    "resolution histogram sums to {res_sum} but {} branch \
                     intervals were recorded",
                    w.intervals.bmiss
                ),
            ));
        }
    }

    if w.refill_total != w.intervals.bmiss * u64::from(w.frontend_depth) {
        diags.push(Diagnostic::error(
            "BMP505",
            &locus,
            format!(
                "refill_total {} != {} branch intervals × frontend depth {}",
                w.refill_total, w.intervals.bmiss, w.frontend_depth
            ),
        ));
    }

    let Some(m) = &w.model else { return };
    let model_locus = format!("{locus} (model)");

    let contributors = m.base + m.ilp + m.fu_latency + m.short_dmiss;
    if contributors != m.local_resolution {
        diags.push(Diagnostic::error(
            "BMP501",
            &model_locus,
            format!(
                "contributors sum to {contributors} but local_resolution is {} — \
                 base+ilp+fu_latency+short_dmiss must account for every \
                 isolated-schedule cycle",
                m.local_resolution
            ),
        ));
    }
    if m.local_resolution as i64 + m.carryover != m.resolution as i64 {
        diags.push(Diagnostic::error(
            "BMP501",
            &model_locus,
            format!(
                "local_resolution {} + carryover {} != resolution {} — the \
                 cross-interval carryover must close the gap exactly",
                m.local_resolution, m.carryover, m.resolution
            ),
        ));
    }
    if m.refill != m.intervals * u64::from(w.frontend_depth) {
        diags.push(Diagnostic::error(
            "BMP505",
            &model_locus,
            format!(
                "model refill {} != {} intervals × frontend depth {}",
                m.refill, m.intervals, w.frontend_depth
            ),
        ));
    }

    let s = &m.cpi_stack;
    let components = [
        s.base_cycles,
        s.branch_cycles,
        s.icache_cycles,
        s.long_dmiss_cycles,
    ];
    if components.iter().any(|c| !c.is_finite() || *c < 0.0) {
        diags.push(Diagnostic::error(
            "BMP503",
            &model_locus,
            "CPI stack has non-finite or negative components",
        ));
    } else if w.cycles > 0 && w.instructions > 0 {
        let measured = w.cycles as f64 / w.instructions as f64;
        let model_cpi = s.cpi();
        if measured > 0.0 && ((model_cpi - measured) / measured).abs() > 0.5 {
            diags.push(
                Diagnostic::warn(
                    "BMP503",
                    &model_locus,
                    format!(
                        "model CPI {model_cpi:.3} deviates from measured CPI \
                         {measured:.3} by more than 50%"
                    ),
                )
                .with_suggestion(
                    "a first-order stack tracks the measurement loosely, but a gap \
                     this large usually means the stack was built for a different \
                     configuration or scale",
                ),
            );
        }
    }
}

/// Runs the `BMP50x` rules over a parsed metrics document.
pub fn lint_metrics(doc: &ExperimentMetrics) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for w in &doc.workloads {
        lint_workload(&mut diags, doc, w);
    }
    diags
}

/// Parses `text` as a metrics document and lints it; an unparseable
/// document is itself the finding (`BMP500`).
pub fn lint_metrics_text(text: &str) -> Vec<Diagnostic> {
    match ExperimentMetrics::parse(text) {
        Ok(doc) => lint_metrics(&doc),
        Err(e) => vec![Diagnostic::error(
            "BMP500",
            "metrics",
            format!("metrics document does not parse (version {METRICS_VERSION} expected): {e}"),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::accounting::records_from_analysis;
    use bmp_core::metrics::ModelMetrics;
    use bmp_core::PenaltyModel;
    use bmp_uarch::presets;
    use bmp_workloads::spec;

    fn healthy_doc() -> ExperimentMetrics {
        let trace = spec::by_name("gzip").unwrap().generate(5_000, 7);
        let cfg = presets::baseline_4wide();
        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let stack = bmp_core::cpi::predict(&trace, &cfg);
        let records = records_from_analysis(&analysis);
        let mut doc = ExperimentMetrics::new("fig2_penalty", 5_000, 7);
        let mut w = WorkloadMetrics::from_records(
            "gzip",
            trace.len() as u64,
            0,
            analysis.frontend_depth,
            analysis.breakdowns.len() as u64,
            &records,
        );
        w.model = Some(ModelMetrics::from_analysis(&analysis, stack));
        doc.workloads.push(w);
        doc
    }

    #[test]
    fn a_healthy_document_is_clean() {
        let doc = healthy_doc();
        let diags = lint_metrics(&doc);
        assert!(diags.is_empty(), "{diags:?}");
        // And survives the writer round-trip just as clean.
        assert!(lint_metrics_text(&doc.to_json()).is_empty());
    }

    #[test]
    fn unparseable_text_is_bmp500() {
        let d = lint_metrics_text("{ nope");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "BMP500");
        let wrong = healthy_doc().to_json().replace(
            &format!("\"version\": {METRICS_VERSION}"),
            "\"version\": 99",
        );
        assert_eq!(lint_metrics_text(&wrong)[0].code, "BMP500");
    }

    #[test]
    fn broken_contributor_identity_is_bmp501() {
        let mut doc = healthy_doc();
        doc.workloads[0].model.as_mut().unwrap().ilp += 1;
        let codes: Vec<_> = lint_metrics(&doc).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP501"), "{codes:?}");
    }

    #[test]
    fn broken_carryover_identity_is_bmp501() {
        let mut doc = healthy_doc();
        doc.workloads[0].model.as_mut().unwrap().carryover += 3;
        let codes: Vec<_> = lint_metrics(&doc).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP501"), "{codes:?}");
    }

    #[test]
    fn mismatched_mispredicts_is_bmp502() {
        let mut doc = healthy_doc();
        doc.workloads[0].mispredicts += 5;
        let codes: Vec<_> = lint_metrics(&doc).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP502"), "{codes:?}");
    }

    #[test]
    fn histogram_drift_is_bmp504() {
        let mut doc = healthy_doc();
        doc.workloads[0].length_histogram[0] += 1;
        let codes: Vec<_> = lint_metrics(&doc).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP504"), "{codes:?}");

        let mut short = healthy_doc();
        short.workloads[0].resolution_histogram.pop();
        let codes: Vec<_> = lint_metrics(&short).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP504"), "{codes:?}");
    }

    #[test]
    fn refill_drift_is_bmp505() {
        let mut doc = healthy_doc();
        doc.workloads[0].refill_total += 1;
        let codes: Vec<_> = lint_metrics(&doc).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP505"), "{codes:?}");

        let mut model = healthy_doc();
        model.workloads[0].model.as_mut().unwrap().refill += 1;
        let codes: Vec<_> = lint_metrics(&model).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP505"), "{codes:?}");
    }

    #[test]
    fn wild_cpi_stack_deviation_is_a_bmp503_warning() {
        let mut doc = healthy_doc();
        // Give the workload a measured epoch wildly off the model.
        doc.workloads[0].instructions = 1_000;
        doc.workloads[0].cycles = 1_000_000;
        let diags = lint_metrics(&doc);
        let hit = diags.iter().find(|d| d.code == "BMP503").expect("BMP503");
        assert_eq!(hit.severity, crate::Severity::Warn);
    }

    #[test]
    fn non_finite_stack_is_a_bmp503_error() {
        let mut doc = healthy_doc();
        doc.workloads[0]
            .model
            .as_mut()
            .unwrap()
            .cpi_stack
            .base_cycles = f64::NAN;
        let diags = lint_metrics(&doc);
        let hit = diags.iter().find(|d| d.code == "BMP503").expect("BMP503");
        assert_eq!(hit.severity, crate::Severity::Error);
    }
}
