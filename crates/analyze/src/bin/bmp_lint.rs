//! `bmp-lint`: run the model-consistency lint rules from the command
//! line.
//!
//! With no arguments it sweeps every machine preset and every workload
//! profile in the SPEC-like table, checking machine balance, trace
//! well-formedness and — by running the interval model, the CPI stack
//! and the reference simulator on each generated trace — result
//! conservation. Exit status: 0 clean (warnings allowed), 1 when any
//! error-severity finding fires, 2 on usage errors.

use std::io::Write;
use std::process::ExitCode;

use bmp_analyze::{analyze, lint_sim_result, staticpass, walk_inputs, AnalysisReport, Severity};
use bmp_sim::Simulator;
use bmp_uarch::{presets, MachineConfig};
use bmp_workloads::spec;

const USAGE: &str = "\
bmp-lint: static model-consistency linter (BMP rule codes)

USAGE:
    bmp-lint [OPTIONS]

OPTIONS:
    --json            render the report as one JSON object instead of text
    --preset NAME     lint only the named machine preset
    --profile NAME    lint only the named workload profile (skips the
                      preset pass unless --preset is also given)
    --journal PATH    lint a run journal (results/run_journal.json) with
                      the BMP4xx rules; given alone, skips the other
                      passes like --profile does
    --metrics PATH    lint a metrics document (results/metrics/*.json) or
                      a whole metrics directory with the BMP5xx rules;
                      given alone, skips the other passes too
    --static PATH     cross-check simulated results against statically
                      proven contributor bounds (BMP6xx). PATH is a
                      results directory (lints its *.csv tables and its
                      metrics/ subdirectory), a single CSV table, or a
                      single metrics document; given alone, skips the
                      other passes too
    --store PATH      audit a persistent artifact store directory
                      (BMP_STORE) with the BMP8xx rules: corrupt or
                      misplaced records, quarantine backlog, stale
                      locks, foreign files; given alone, skips the
                      other passes too
    --kernels         execute every bmp-isa RV32IM kernel and lint the
                      recorded trace: well-formedness (BMP1xx),
                      executed-trace provenance (BMP9xx), and model /
                      simulator conservation on the baseline machine;
                      given alone, skips the other passes too
    --ops N           trace length per workload profile (default 2000)
    --no-traces       lint machine presets only; skip workload traces
    --list            list preset and profile names, then exit
    -h, --help        show this help

Severities: errors make the exit status 1; warnings and infos do not.
See docs/ANALYZER.md for the BMP code catalogue.";

/// The machine presets swept by default, by stable CLI name.
fn all_presets() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("baseline_4wide", presets::baseline_4wide()),
        ("wide_8way", presets::wide_8way()),
        ("alpha21264_like", presets::alpha21264_like()),
        ("pentium4_like", presets::pentium4_like()),
        ("test_tiny", presets::test_tiny()),
        ("perfect_branches", presets::perfect_branches()),
        (
            "deep_frontend_20",
            presets::deep_frontend(20).expect("valid preset"),
        ),
        ("scaled_latencies_2x", presets::scaled_latencies(2.0)),
        (
            "l1d_16k",
            presets::l1d_sized(16 * 1024).expect("valid preset"),
        ),
    ]
}

/// Parsed command line.
struct Options {
    json: bool,
    preset: Option<String>,
    profile: Option<String>,
    journal: Option<String>,
    metrics: Option<String>,
    statics: Option<String>,
    store: Option<String>,
    kernels: bool,
    ops: usize,
    no_traces: bool,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        preset: None,
        profile: None,
        journal: None,
        metrics: None,
        statics: None,
        store: None,
        kernels: false,
        ops: 2000,
        no_traces: false,
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--kernels" => opts.kernels = true,
            "--no-traces" => opts.no_traces = true,
            "--list" => opts.list = true,
            "--preset" => {
                opts.preset = Some(
                    it.next()
                        .ok_or_else(|| "--preset needs a name".to_owned())?
                        .clone(),
                );
            }
            "--profile" => {
                opts.profile = Some(
                    it.next()
                        .ok_or_else(|| "--profile needs a name".to_owned())?
                        .clone(),
                );
            }
            "--journal" => {
                opts.journal = Some(
                    it.next()
                        .ok_or_else(|| "--journal needs a path".to_owned())?
                        .clone(),
                );
            }
            "--metrics" => {
                opts.metrics = Some(
                    it.next()
                        .ok_or_else(|| "--metrics needs a path".to_owned())?
                        .clone(),
                );
            }
            "--static" => {
                opts.statics = Some(
                    it.next()
                        .ok_or_else(|| "--static needs a path".to_owned())?
                        .clone(),
                );
            }
            "--store" => {
                opts.store = Some(
                    it.next()
                        .ok_or_else(|| "--store needs a path".to_owned())?
                        .clone(),
                );
            }
            "--ops" => {
                let v = it.next().ok_or_else(|| "--ops needs a count".to_owned())?;
                opts.ops = v
                    .parse::<usize>()
                    .map_err(|_| format!("--ops: '{v}' is not a count"))?;
                if opts.ops == 0 {
                    return Err("--ops must be positive".to_owned());
                }
            }
            "-h" | "--help" => {
                out(USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Prefixes every diagnostic locus with the target it was found in, so
/// one merged report stays attributable.
fn scoped(target: &str, mut report: AnalysisReport) -> AnalysisReport {
    for d in &mut report.diagnostics {
        d.locus = format!("{target}: {}", d.locus);
    }
    report
}

/// Writes a line to stdout, swallowing broken-pipe errors so
/// `bmp-lint --list | head` exits cleanly instead of panicking.
fn out(line: &str) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bmp-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let machines = all_presets();
    let profiles = spec::all_profiles();

    if opts.list {
        out("presets:");
        for (name, _) in &machines {
            out(&format!("  {name}"));
        }
        out("profiles:");
        for p in &profiles {
            out(&format!("  {}", p.name));
        }
        return ExitCode::SUCCESS;
    }

    let machines: Vec<_> = match &opts.preset {
        Some(want) => {
            let selected: Vec<_> = machines.into_iter().filter(|(n, _)| n == want).collect();
            if selected.is_empty() {
                eprintln!("bmp-lint: unknown preset '{want}' (try --list)");
                return ExitCode::from(2);
            }
            selected
        }
        None => machines,
    };
    let profiles: Vec<_> = match &opts.profile {
        Some(want) => {
            let selected: Vec<_> = profiles.into_iter().filter(|p| &p.name == want).collect();
            if selected.is_empty() {
                eprintln!("bmp-lint: unknown profile '{want}' (try --list)");
                return ExitCode::from(2);
            }
            selected
        }
        None => profiles,
    };

    let mut report = AnalysisReport::default();
    let mut targets = 0usize;

    // Pass 0: a run journal, when asked for. The path must be readable
    // — a missing journal is a usage error, not a lint finding.
    if let Some(path) = &opts.journal {
        let files = match walk_inputs(path, "json") {
            Ok(files) => files,
            Err(e) => {
                eprintln!("bmp-lint: {e}");
                return ExitCode::from(2);
            }
        };
        for file in files {
            targets += 1;
            report.merge(scoped(
                &format!("journal {}", file.path.display()),
                AnalysisReport::new(bmp_analyze::lint_journal_text(&file.content)),
            ));
        }
    }

    // Pass 0b: metrics documents. `--metrics` accepts one file or a
    // directory of them (`results/metrics/`).
    if let Some(path) = &opts.metrics {
        let files = match walk_inputs(path, "json") {
            Ok(files) => files,
            Err(e) => {
                eprintln!("bmp-lint: {e}");
                return ExitCode::from(2);
            }
        };
        for file in files {
            targets += 1;
            report.merge(scoped(
                &format!("metrics {}", file.path.display()),
                AnalysisReport::new(bmp_analyze::lint_metrics_text(&file.content)),
            ));
        }
    }

    // Pass 0c: static cross-checks (BMP6xx). A directory is treated as
    // a results tree: its CSV tables plus a `metrics/` subdirectory;
    // single files route by extension.
    if let Some(path) = &opts.statics {
        let p = std::path::Path::new(path);
        // (is_metrics, source) pairs: a results directory contributes
        // its CSV tables and, when present, its metrics/ subdirectory.
        let mut jobs: Vec<(bool, bmp_analyze::WalkedFile)> = Vec::new();
        let mut collect = |is_metrics: bool, path: &str, ext: &str| match walk_inputs(path, ext) {
            Ok(files) => {
                jobs.extend(files.into_iter().map(|f| (is_metrics, f)));
                true
            }
            Err(e) => {
                eprintln!("bmp-lint: {e}");
                false
            }
        };
        let ok = if p.is_dir() {
            let metrics_dir = p.join("metrics");
            collect(false, path, "csv")
                && (!metrics_dir.is_dir()
                    || collect(true, &metrics_dir.display().to_string(), "json"))
        } else {
            collect(p.extension().is_some_and(|x| x == "json"), path, "")
        };
        if !ok {
            return ExitCode::from(2);
        }
        for (is_metrics, file) in jobs {
            let locus = file.path.display().to_string();
            targets += 1;
            report.merge(if is_metrics {
                staticpass::lint_metrics_doc(&locus, &file.content)
            } else {
                staticpass::lint_csv(&locus, &file.content)
            });
        }
    }

    // Pass 0d: a persistent artifact store (BMP8xx). The path must be a
    // directory — a missing store is a usage error, not a lint finding.
    if let Some(path) = &opts.store {
        let p = std::path::Path::new(path);
        if !p.is_dir() {
            eprintln!("bmp-lint: --store {path}: not a directory");
            return ExitCode::from(2);
        }
        targets += 1;
        report.merge(AnalysisReport::new(bmp_analyze::lint_store(p)));
    }

    // Pass 0e: the executed-kernel suite (BMP1xx + BMP9xx + model and
    // simulator conservation). Each kernel is functionally executed at
    // the requested length and its recorded trace must carry the full
    // provenance fingerprint — the rules synthetic traces cannot pass.
    if opts.kernels {
        let reference = presets::baseline_4wide();
        let simulator = Simulator::new(reference.clone());
        for name in bmp_isa::NAMES {
            targets += 1;
            let target = format!("kernel {name}");
            let trace = bmp_isa::kernel_trace(name, opts.ops, 1).expect("registered kernel");
            report.merge(scoped(&target, analyze(&reference, Some(&trace))));
            report.merge(scoped(
                &target,
                AnalysisReport::new(bmp_analyze::lint_executed_trace(&trace)),
            ));
            let result = simulator.run(&trace);
            report.merge(scoped(
                &target,
                AnalysisReport::new(lint_sim_result(&result, &reference)),
            ));
        }
    }

    // Pass 1: every selected machine preset on its own. A bare
    // `--profile` (or `--journal` / `--metrics` / `--kernels`) request
    // means "lint this target", so the preset sweep only runs when
    // presets were not narrowed away.
    let narrowed = opts.profile.is_some()
        || opts.journal.is_some()
        || opts.metrics.is_some()
        || opts.statics.is_some()
        || opts.store.is_some()
        || opts.kernels;
    if !narrowed || opts.preset.is_some() {
        for (name, cfg) in &machines {
            targets += 1;
            report.merge(scoped(&format!("preset {name}"), analyze(cfg, None)));
        }
    }

    // Pass 2: every selected workload profile — trace well-formedness,
    // then model- and simulator-side conservation on the reference
    // (baseline) machine.
    if !opts.no_traces
        && ((opts.journal.is_none()
            && opts.metrics.is_none()
            && opts.statics.is_none()
            && opts.store.is_none()
            && !opts.kernels)
            || opts.profile.is_some())
    {
        let reference = presets::baseline_4wide();
        let simulator = Simulator::new(reference.clone());
        for profile in &profiles {
            targets += 1;
            let target = format!("profile {}", profile.name);
            if let Err(e) = profile.validate() {
                report.merge(scoped(
                    &target,
                    AnalysisReport::new(vec![bmp_analyze::Diagnostic::error(
                        "BMP100",
                        "profile",
                        format!("profile does not validate: {e}"),
                    )]),
                ));
                continue;
            }
            let trace = profile.generate(opts.ops, 1);
            report.merge(scoped(&target, analyze(&reference, Some(&trace))));

            let result = simulator.run(&trace);
            report.merge(scoped(
                &target,
                AnalysisReport::new(lint_sim_result(&result, &reference)),
            ));
        }
    }

    if opts.json {
        out(&report.render_json());
    } else {
        let mut human = report.render_human();
        human.push_str(&format!(
            "linted {targets} target(s); worst severity: {}",
            report.worst().map_or("none".to_owned(), |s| s.to_string())
        ));
        out(&human);
    }

    if report.worst() == Some(Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
