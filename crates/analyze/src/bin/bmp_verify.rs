//! `bmp-verify`: static bounds on the five penalty contributors,
//! checked against recorded results — no simulation.
//!
//! For every metrics document (written by `run_all` under
//! `BMP_METRICS=1`, default directory `results/metrics/`) this binary
//! regenerates each workload's trace from the registry, runs the
//! dependence-graph static pass (`bmp_analyze::staticpass`), and
//! prints, per contributor, the guaranteed lower bound, point
//! estimate, upper bound, and the recorded model total. It then runs
//! the BMP6xx lint family over the same documents, and ends with the
//! median point-estimate error of the static mean penalty against the
//! *simulator's* recorded mean penalty (the headline number in
//! `docs/STATIC_ANALYSIS.md`).
//!
//! Exit status: 0 when no BMP6xx error fired, 1 when one did, 2 on
//! usage errors (unreadable paths, no documents found).

use std::io::Write;
use std::process::ExitCode;

use bmp_analyze::staticpass::{self, lint, StaticBounds};
use bmp_analyze::{walk_inputs, AnalysisReport, Severity};
use bmp_core::metrics::{ExperimentMetrics, WorkloadMetrics};
use bmp_uarch::presets;

const USAGE: &str = "\
bmp-verify: static interval analysis — proven bounds on the five
penalty contributors, without simulation

USAGE:
    bmp-verify [OPTIONS] [PATH]

PATH is a metrics document or a directory of them (default:
results/metrics — produce one with `BMP_METRICS=1 run_all`).

OPTIONS:
    --json        machine-readable output (one JSON object)
    -h, --help    show this help

Exit status: 0 clean, 1 when a BMP6xx bound violation fired, 2 on
usage errors. See docs/STATIC_ANALYSIS.md for the derivations.";

/// Writes a line to stdout, swallowing broken-pipe errors.
fn out(line: &str) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

/// The static view of one workload of one document, plus the recorded
/// numbers it is compared against.
struct WorkloadView {
    doc: String,
    workload: String,
    bounds: StaticBounds,
    /// Recorded model totals in `contributor_rows` order, when the
    /// document carries a model section for the same interval count.
    observed: Option<[i64; 8]>,
    /// Simulator mean penalty (resolution + refill per branch).
    sim_mean_penalty: Option<f64>,
    /// Static point estimate of the same mean.
    static_mean_penalty: Option<f64>,
}

impl WorkloadView {
    fn build(doc: &ExperimentMetrics, w: &WorkloadMetrics, b: StaticBounds) -> Self {
        let observed = w
            .model
            .as_ref()
            .filter(|m| m.intervals == b.intervals)
            .map(|m| {
                [
                    m.refill as i64,
                    m.base as i64,
                    m.ilp as i64,
                    m.fu_latency as i64,
                    m.short_dmiss as i64,
                    m.carryover,
                    m.resolution as i64,
                    m.resolution as i64 + m.refill as i64,
                ]
            });
        let sim_mean_penalty = w.mean_penalty();
        let static_mean_penalty = b.mean_penalty_point();
        Self {
            doc: doc.name.clone(),
            workload: w.workload.clone(),
            bounds: b,
            observed,
            sim_mean_penalty,
            static_mean_penalty,
        }
    }

    /// Relative error of the static mean-penalty point estimate
    /// against the simulator's recorded mean penalty.
    fn rel_err_vs_sim(&self) -> Option<f64> {
        match (self.static_mean_penalty, self.sim_mean_penalty) {
            (Some(s), Some(m)) if m > 0.0 => Some((s - m).abs() / m),
            _ => None,
        }
    }
}

fn render_view(v: &WorkloadView) {
    out(&format!(
        "workload {}: {} instructions, {} branch intervals, frontend depth {}",
        v.workload, v.bounds.instructions, v.bounds.intervals, v.bounds.frontend_depth
    ));
    out(&format!(
        "  {:<14} {:>14} {:>14} {:>14} {:>14}",
        "contributor", "lower", "point", "upper", "model"
    ));
    for (i, (name, b)) in v.bounds.contributor_rows().iter().enumerate() {
        let observed = match &v.observed {
            Some(o) => o[i].to_string(),
            None => "-".to_owned(),
        };
        out(&format!(
            "  {:<14} {:>14} {:>14} {:>14} {:>14}",
            name, b.lo, b.point, b.hi, observed
        ));
    }
    match (v.static_mean_penalty, v.sim_mean_penalty) {
        (Some(s), Some(m)) if m > 0.0 => out(&format!(
            "  mean penalty: static point {s:.2}, simulated {m:.2} ({:+.1}% error)",
            (s - m) / m * 100.0
        )),
        (Some(s), _) => out(&format!(
            "  mean penalty: static point {s:.2} (no simulator record)"
        )),
        // An interval-free workload has nothing further to report.
        _ => {}
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_json(views: &[WorkloadView], median: Option<f64>, report: &AnalysisReport) -> String {
    let mut s = String::from("{\"workloads\":[");
    for (i, v) in views.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"experiment\":{},\"workload\":{},\"intervals\":{},\"contributors\":{{",
            json_escape(&v.doc),
            json_escape(&v.workload),
            v.bounds.intervals
        ));
        for (j, (name, b)) in v.bounds.contributor_rows().iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{}:{{\"lo\":{},\"point\":{},\"hi\":{}",
                json_escape(name),
                b.lo,
                b.point,
                b.hi
            ));
            if let Some(o) = &v.observed {
                s.push_str(&format!(",\"model\":{}", o[j]));
            }
            s.push('}');
        }
        s.push('}');
        if let (Some(sp), Some(mp)) = (v.static_mean_penalty, v.sim_mean_penalty) {
            s.push_str(&format!(
                ",\"mean_penalty\":{{\"static\":{sp:.4},\"sim\":{mp:.4}}}"
            ));
        }
        s.push('}');
    }
    s.push_str("],");
    match median {
        Some(m) => s.push_str(&format!("\"median_mean_penalty_err\":{m:.4},")),
        None => s.push_str("\"median_mean_penalty_err\":null,"),
    }
    s.push_str(&format!(
        "\"errors\":{},\"diagnostics\":{}}}",
        report.error_count(),
        report.render_json()
    ));
    s
}

fn median(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let n = xs.len();
    Some(if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    })
}

fn main() -> ExitCode {
    let mut json = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "-h" | "--help" => {
                out(USAGE);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("bmp-verify: unknown option '{other}'\n\n{USAGE}");
                return ExitCode::from(2);
            }
            other => {
                if path.replace(other.to_owned()).is_some() {
                    eprintln!("bmp-verify: at most one PATH\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let path = path.unwrap_or_else(|| "results/metrics".to_owned());

    let files = match walk_inputs(&path, "json") {
        Ok(files) => files,
        Err(e) => {
            eprintln!("bmp-verify: {e}");
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!(
            "bmp-verify: no metrics documents under '{path}' — generate \
             them with `BMP_METRICS=1 cargo run --release --bin run_all`"
        );
        return ExitCode::from(2);
    }

    let cfg = presets::baseline_4wide();
    let mut report = AnalysisReport::default();
    let mut views: Vec<WorkloadView> = Vec::new();

    for file in &files {
        let locus = file.path.display().to_string();
        report.merge(staticpass::lint_metrics_doc(&locus, &file.content));
        let Ok(doc) = ExperimentMetrics::parse(&file.content) else {
            continue; // already reported as BMP606
        };
        if !json {
            out(&format!(
                "== {} (ops {}, seed {})",
                doc.name, doc.ops, doc.seed
            ));
        }
        for w in &doc.workloads {
            match lint::static_bounds_for(&w.workload, doc.ops, doc.seed, &cfg) {
                Some(b) => {
                    let view = WorkloadView::build(&doc, w, b);
                    if !json {
                        render_view(&view);
                    }
                    views.push(view);
                }
                None => {
                    if !json {
                        out(&format!(
                            "workload {}: not in the registry — static bounds \
                             unavailable",
                            w.workload
                        ));
                    }
                }
            }
        }
        if !json {
            out("");
        }
    }

    let errs: Vec<f64> = views
        .iter()
        .filter_map(WorkloadView::rel_err_vs_sim)
        .collect();
    let med = median(errs.clone());

    if json {
        out(&render_json(&views, med, &report));
    } else {
        if !report.is_clean() {
            out(&report.render_human());
        }
        match med {
            Some(m) => out(&format!(
                "median static-vs-simulated mean-penalty error over {} \
                 workload cells: {:.2}%",
                errs.len(),
                m * 100.0
            )),
            None => out("no simulator records to compare point estimates against"),
        }
        out(&format!(
            "checked {} document(s), {} workload cell(s); {} bound violation(s)",
            files.len(),
            views.len(),
            report.error_count()
        ));
    }

    if report.worst() == Some(Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
