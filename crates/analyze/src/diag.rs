//! Structured diagnostics and report rendering.
//!
//! Every lint rule emits [`Diagnostic`]s carrying a stable `BMP###` code,
//! a severity, a locus naming the offending configuration field or trace
//! position, a human message, and (where a fix is mechanical) a
//! suggestion. [`AnalysisReport`] aggregates them and renders either a
//! compiler-style human listing or line-delimited JSON for tooling.
//! [`walk_inputs`] is the shared file/directory collector behind every
//! `bmp-lint` pass that reads artifacts from disk (`--journal`,
//! `--metrics`, `--static`).

use std::fmt;
use std::path::{Path, PathBuf};

/// How bad a finding is.
///
/// Ordering is semantic: `Info < Warn < Error`, so `max()` over a
/// report's diagnostics yields the worst severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; the model's answers are unaffected.
    Info,
    /// Suspicious: the configuration or data is legal but undermines a
    /// model assumption (results may be misleading).
    Warn,
    /// An invariant the model relies on is broken; results computed from
    /// this input are untrustworthy.
    Error,
}

impl Severity {
    /// Lowercase label used in both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`BMP000`–`BMP2xx`); see `docs/ANALYZER.md` for
    /// the catalogue.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// What the finding is anchored to: a config field
    /// (`machine.window_size`), a trace position (`trace[42]`), or a
    /// result component (`result.slots`).
    pub locus: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the fix is mechanical.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, locus: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            locus: locus.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// A warn-severity diagnostic.
    pub fn warn(code: &'static str, locus: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Warn,
            locus: locus.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, locus: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Info,
            locus: locus.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a fix suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Renders this diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"code\":");
        json_string(&mut s, self.code);
        s.push_str(",\"severity\":");
        json_string(&mut s, self.severity.label());
        s.push_str(",\"locus\":");
        json_string(&mut s, &self.locus);
        s.push_str(",\"message\":");
        json_string(&mut s, &self.message);
        s.push_str(",\"suggestion\":");
        match &self.suggestion {
            Some(sug) => json_string(&mut s, sug),
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    /// Compiler-style single finding:
    /// `error[BMP001] machine.fus: message` plus an indented suggestion
    /// line when present.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.locus, self.message
        )?;
        if let Some(sug) = &self.suggestion {
            write!(f, "\n    help: {sug}")?;
        }
        Ok(())
    }
}

/// The outcome of running a set of lint rules over one target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Every finding, in rule order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Wraps a list of findings.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Self { diagnostics }
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// `true` when there are no findings of any severity.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst severity present, or `None` on a clean report.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Appends another report's findings to this one.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Renders the compiler-style human listing, one finding per line
    /// (suggestions indented below), ending with a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.error_count(),
            self.warn_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the whole report as one JSON object:
    /// `{"errors":N,"warnings":N,"diagnostics":[...]}`.
    pub fn render_json(&self) -> String {
        let mut s = String::with_capacity(64 + 128 * self.diagnostics.len());
        s.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warn_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// One input file collected by [`walk_inputs`]: its path and contents.
#[derive(Debug, Clone)]
pub struct WalkedFile {
    /// Where the file was found.
    pub path: PathBuf,
    /// Its full contents.
    pub content: String,
}

/// Collects lintable input files from `path`.
///
/// A directory yields every direct child with extension `ext`, sorted
/// by name for deterministic reports; a file path yields that one file
/// regardless of extension (the caller asked for it explicitly). Any
/// I/O failure is an `Err` — the CLI treats unreadable inputs as usage
/// errors (exit 2), not lint findings.
pub fn walk_inputs(path: &str, ext: &str) -> Result<Vec<WalkedFile>, String> {
    let p = Path::new(path);
    let mut files: Vec<PathBuf> = Vec::new();
    if p.is_dir() {
        let entries =
            std::fs::read_dir(p).map_err(|e| format!("cannot read directory '{path}': {e}"))?;
        files.extend(
            entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == ext)),
        );
        files.sort();
    } else {
        files.push(p.to_path_buf());
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read '{}': {e}", path.display()))?;
        out.push(WalkedFile { path, content });
    }
    Ok(out)
}

/// Appends `value` to `out` as a JSON string literal with full escaping.
fn json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn report_counts_and_worst() {
        let r = AnalysisReport::new(vec![
            Diagnostic::info("BMP003", "machine.predictor", "underutilized"),
            Diagnostic::warn("BMP002", "machine.window_size", "too small"),
            Diagnostic::error("BMP001", "machine.fus", "unbalanced"),
        ]);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.worst(), Some(Severity::Error));
        assert!(!r.is_clean());
        assert!(AnalysisReport::default().is_clean());
    }

    #[test]
    fn human_rendering_is_compiler_style() {
        let d = Diagnostic::error("BMP001", "machine.fus", "5 units for a 8-wide dispatch")
            .with_suggestion("add functional units or narrow the machine");
        let s = d.to_string();
        assert!(s.starts_with("error[BMP001] machine.fus:"));
        assert!(s.contains("help: add functional units"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::warn("BMP102", "trace[3]", "bad \"quote\"\nnewline\ttab \\ slash");
        let j = d.to_json();
        assert!(j.contains(r#""message":"bad \"quote\"\nnewline\ttab \\ slash""#));
        assert!(j.contains(r#""suggestion":null"#));
    }

    #[test]
    fn report_json_shape() {
        let r = AnalysisReport::new(vec![Diagnostic::error("BMP201", "cpi", "m")]);
        let j = r.render_json();
        assert!(j.starts_with("{\"errors\":1,\"warnings\":0,\"diagnostics\":["));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn walk_inputs_collects_sorted_matching_files() {
        let dir = std::env::temp_dir().join(format!("bmp-diag-walk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.json"), "{}").unwrap();
        std::fs::write(dir.join("a.json"), "{}").unwrap();
        std::fs::write(dir.join("c.csv"), "x").unwrap();

        let walked = walk_inputs(dir.to_str().unwrap(), "json").unwrap();
        let names: Vec<_> = walked
            .iter()
            .map(|f| f.path.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.json", "b.json"]);

        // A single file is returned as-is, whatever its extension.
        let one = walk_inputs(dir.join("c.csv").to_str().unwrap(), "json").unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].content, "x");

        // Missing paths are errors, not findings.
        assert!(walk_inputs(dir.join("nope.json").to_str().unwrap(), "json").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_concatenates() {
        let mut a = AnalysisReport::new(vec![Diagnostic::info("BMP003", "x", "m")]);
        a.merge(AnalysisReport::new(vec![Diagnostic::warn(
            "BMP004", "y", "n",
        )]));
        assert_eq!(a.diagnostics.len(), 2);
    }
}
