//! `bmp-analyze`: a static model-consistency linter for the mispredict
//! workspace.
//!
//! The interval model of the branch misprediction penalty (Eyerman,
//! Smeets & Eeckhout, ISPASS 2006) rests on assumptions no type system
//! enforces: the machine is *balanced* around its dispatch width `D`,
//! traces are well-formed executions, and every decomposition the model
//! produces *conserves* the quantity it decomposes. This crate checks
//! all three as lint rules with stable `BMP###` codes:
//!
//! * `BMP0xx` — machine balance ([`machine`]): configurations that are
//!   structurally legal but break the model's steady-state premise
//!   (starved FU pools, windows smaller than the `c_fe · D` refill
//!   drain, under-indexed predictors, fetch/commit narrower than
//!   dispatch).
//! * `BMP1xx` — trace well-formedness ([`tracelint`]): cyclic or
//!   dangling dependences, control flow that contradicts recorded branch
//!   outcomes, and unsorted measured-resolution records — the documented
//!   precondition of `ValidationReport::from_pairs`.
//! * `BMP2xx` — result conservation ([`conserve`]): CPI stacks whose
//!   components do not sum to the CPI, penalty breakdowns whose five
//!   contributors do not sum to the resolution they explain, and
//!   simulator results that leak dispatch slots or ROB samples.
//! * `BMP30x` — compiled-trace structure ([`compiledlint`]): producer
//!   indices in the structure-of-arrays form the event-driven simulator
//!   consumes must be in bounds and strictly precede their consumers —
//!   the invariants the wakeup scheduler trusts without checking.
//! * `BMP31x` — superblock-map structure ([`superblocklint`]): the
//!   precomputed fetch segmentation must match the trace it claims to
//!   describe — `run_len` zero exactly on branches and counting down
//!   inside runs, no run crossing an I-cache line, `is_line_start`
//!   agreeing with the dynamic line compare — the invariants the batched
//!   fetch stage trusts without checking.
//! * `BMP4xx` — run-journal consistency ([`journal`]): the
//!   `results/run_journal.json` manifest `run_all` maintains and
//!   `--resume` trusts must parse, carry a supported version, and keep
//!   its per-experiment records unique, attempted, status/error
//!   consistent, fingerprinted and name-sorted.
//! * `BMP5xx` — metrics-file consistency ([`metrics`]): the
//!   `results/metrics/*.json` observability documents written under
//!   `BMP_METRICS=1` (see `docs/OBSERVABILITY.md`) must parse, keep the
//!   contributor and carryover identities, count one branch interval
//!   per mispredict, conserve refill cycles, keep their histograms
//!   complete, and carry a CPI stack that tracks the measured CPI.
//! * `BMP6xx` — static-bounds cross-checks ([`staticpass`]): the
//!   dependence-graph static pass recomputes guaranteed lower/upper
//!   bounds (and point estimates) for the five penalty contributors
//!   directly from the workload recipe and machine configuration —
//!   no simulation — and any simulated total outside its proven bound,
//!   in a metrics document or a published CSV table, is a hard error.
//! * `BMP8xx` — persistent-store consistency ([`storelint`]): an
//!   offline audit of a `BMP_STORE` tree — corrupt or misplaced
//!   records, pending quarantine entries, stale locks, foreign files —
//!   so operators see damage the store would otherwise just silently
//!   recompute around.
//! * `BMP9xx` — executed-trace provenance ([`provenance`]): the
//!   structural invariants a trace recorded from a real execution must
//!   carry (4-aligned RV32 PCs, straight-line continuity inside
//!   superblocks, architectural effective addresses, aligned branch
//!   targets) — what the `bmp-isa` functional executor guarantees by
//!   construction, checked so corruption anywhere between the executor
//!   and the model is loud.
//!
//! [`analyze`] is the one-call entry point; the `bmp-lint` binary runs it
//! over presets, workload profiles, or both (plus `--journal` for run
//! journals, `--metrics` for observability documents, `--static` for
//! bounds cross-checks and `--store` for persistent-store audits), and
//! renders either a compiler-style listing or JSON (`bmp-lint --json`). The `bmp-verify` binary renders the static
//! bounds themselves. The full code catalogue lives in
//! `docs/ANALYZER.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiledlint;
pub mod conserve;
pub mod diag;
pub mod journal;
pub mod machine;
pub mod metrics;
pub mod provenance;
pub mod staticpass;
pub mod storelint;
pub mod superblocklint;
pub mod tracelint;

pub use compiledlint::{lint_compiled, lint_producer_table};
pub use conserve::{lint_cpi_stack, lint_penalty_analysis, lint_sim_result};
pub use diag::{walk_inputs, AnalysisReport, Diagnostic, Severity, WalkedFile};
pub use journal::{lint_journal, lint_journal_text};
pub use machine::{lint_fu_coverage, lint_machine};
pub use metrics::{lint_metrics, lint_metrics_text};
pub use provenance::lint_executed_trace;
pub use staticpass::{StaticAnalysis, StaticBounds};
pub use storelint::lint_store;
pub use superblocklint::lint_superblock;
pub use tracelint::{lint_dag_edges, lint_measured_pairs, lint_trace};

use bmp_core::PenaltyModel;
use bmp_trace::Trace;
use bmp_uarch::MachineConfig;

/// Runs every applicable rule family over one machine configuration and,
/// when given, one trace.
///
/// The machine-balance rules always run. With a trace, the
/// well-formedness rules run over it, and — provided the configuration
/// is structurally valid — the interval model and CPI stack are computed
/// for the pair and fed through the conservation rules, so a single call
/// checks inputs *and* the model outputs they produce. (The
/// cycle-accurate simulator is not run here; use
/// [`lint_sim_result`] on an existing [`bmp_sim::SimResult`] or the
/// `bmp-lint` binary for that.)
pub fn analyze(cfg: &MachineConfig, trace: Option<&Trace>) -> AnalysisReport {
    let mut report = AnalysisReport::new(lint_machine(cfg));

    if let Some(trace) = trace {
        report.merge(AnalysisReport::new(lint_trace(trace)));
        let compiled = trace.compile();
        report.merge(AnalysisReport::new(lint_compiled(&compiled)));
        let sb = bmp_trace::SuperblockMap::build(&compiled, cfg.caches.l1i().line_bytes());
        report.merge(AnalysisReport::new(lint_superblock(&compiled, &sb)));

        // The model constructors reject invalid configs by panicking;
        // BMP000 has already reported that case, so stop short of it.
        if cfg.validate().is_ok() && !trace.is_empty() {
            let analysis = PenaltyModel::new(cfg.clone()).analyze(trace);
            report.merge(AnalysisReport::new(lint_penalty_analysis(&analysis)));

            let stack = bmp_core::cpi::predict(trace, cfg);
            report.merge(AnalysisReport::new(lint_cpi_stack(&stack)));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::presets;

    #[test]
    fn baseline_with_workload_trace_is_error_free() {
        let cfg = presets::baseline_4wide();
        let profile = bmp_workloads::spec::by_name("gcc").expect("spec profile");
        let trace = profile.generate(2000, 1);
        let report = analyze(&cfg, Some(&trace));
        assert_eq!(report.error_count(), 0, "{}", report.render_human());
    }

    #[test]
    fn every_preset_is_error_free() {
        let presets: Vec<(&str, MachineConfig)> = vec![
            ("baseline_4wide", presets::baseline_4wide()),
            ("wide_8way", presets::wide_8way()),
            ("alpha21264_like", presets::alpha21264_like()),
            ("pentium4_like", presets::pentium4_like()),
            ("test_tiny", presets::test_tiny()),
            ("perfect_branches", presets::perfect_branches()),
            ("deep_frontend_20", presets::deep_frontend(20).unwrap()),
            ("scaled_latencies_2x", presets::scaled_latencies(2.0)),
            ("l1d_16k", presets::l1d_sized(16 * 1024).unwrap()),
        ];
        for (name, cfg) in presets {
            let report = analyze(&cfg, None);
            assert_eq!(
                report.error_count(),
                0,
                "preset {name} has lint errors:\n{}",
                report.render_human()
            );
        }
    }

    #[test]
    fn analyze_surfaces_machine_errors() {
        use bmp_uarch::{FuPool, MachineConfigBuilder};
        let cfg = MachineConfigBuilder::new()
            .width(8)
            .window_size(128)
            .rob_size(256)
            .fus(FuPool::new([1, 1, 1, 1, 1]).unwrap())
            .build()
            .unwrap();
        assert!(analyze(&cfg, None).error_count() > 0);
    }
}
