//! Compiled-trace well-formedness lints (`BMP3xx`).
//!
//! The event-driven simulator core trusts two structural invariants of
//! [`CompiledTrace`] on its hot path and checks neither: every real
//! producer index is **in bounds** (`BMP301`), and producers strictly
//! **precede** their consumers (`BMP302`). `CompiledTrace::from_trace`
//! establishes both by construction — the distance encoding of the
//! source trace cannot express a forward or out-of-range edge — so these
//! rules are the defensive counterpart of [`crate::lint_dag_edges`]:
//! they cost one linear pass and protect any future source of compiled
//! traces (deserialization, transforms, hand-built fixtures) from
//! feeding the wakeup scheduler an edge it would mis-handle.
//!
//! An out-of-bounds producer panics the simulator at the first dispatch
//! of the consumer; a forward (producer ≥ consumer) edge is worse — the
//! wakeup scheduler registers the waiter against an op that has not been
//! fetched yet, so the consumer either issues too early or deadlocks the
//! wheel. Both are therefore errors, not warnings.

use bmp_trace::compiled::NO_PRODUCER;
use bmp_trace::CompiledTrace;

use crate::diag::Diagnostic;

/// Cap on repeated findings per rule, matching the trace linter.
const MAX_PER_CODE: usize = 8;

/// Runs the compiled-trace rules over `ct`.
///
/// Equivalent to [`lint_producer_table`] over the trace's producer
/// entries; provided so callers holding a [`CompiledTrace`] need not
/// re-extract the table themselves.
pub fn lint_compiled(ct: &CompiledTrace) -> Vec<Diagnostic> {
    let n = ct.len();
    lint_producer_table(n, (0..n).map(|i| ct.producers(i)))
}

/// `BMP301`/`BMP302`: checks a producer table of `nodes` entries, two
/// producer slots each, as yielded in consumer order.
///
/// `BMP301` fires when a non-sentinel producer index is `>= nodes`;
/// `BMP302` fires when a producer does not strictly precede its
/// consumer (`producers(i)[k] >= i`), the compiled-form statement of
/// acyclicity. Entries equal to [`NO_PRODUCER`] are ready-by-definition
/// sources and always pass.
pub fn lint_producer_table(
    nodes: usize,
    producers: impl IntoIterator<Item = [u32; 2]>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let (mut oob, mut fwd) = (0usize, 0usize);

    for (i, slots) in producers.into_iter().enumerate() {
        for (k, p) in slots.into_iter().enumerate() {
            if p == NO_PRODUCER {
                continue;
            }
            if p as usize >= nodes {
                oob += 1;
                if oob <= MAX_PER_CODE {
                    out.push(
                        Diagnostic::error(
                            "BMP301",
                            format!("compiled[{i}].producers[{k}]"),
                            format!(
                                "producer index {p} is out of bounds for a \
                                 {nodes}-op compiled trace"
                            ),
                        )
                        .with_suggestion(
                            "recompile from the source trace; from_trace only \
                             emits in-range indices or NO_PRODUCER",
                        ),
                    );
                }
            } else if p as usize >= i {
                fwd += 1;
                if fwd <= MAX_PER_CODE {
                    out.push(
                        Diagnostic::error(
                            "BMP302",
                            format!("compiled[{i}].producers[{k}]"),
                            format!(
                                "producer {p} does not precede its consumer {i}; \
                                 compiled dependences must satisfy producer < \
                                 consumer"
                            ),
                        )
                        .with_suggestion(
                            "a dependence must point strictly backward in program \
                             order; re-derive the compiled trace from a legal \
                             execution",
                        ),
                    );
                }
            }
        }
    }

    for (code, count) in [("BMP301", oob), ("BMP302", fwd)] {
        if count > MAX_PER_CODE {
            out.push(Diagnostic::info(
                code,
                "compiled",
                format!("... and {} more {code} finding(s)", count - MAX_PER_CODE),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::{MicroOp, Trace};
    use bmp_uarch::OpClass;

    fn chain(n: usize) -> CompiledTrace {
        let t: Trace = (0..n)
            .map(|i| {
                let src = if i == 0 { None } else { Some(1) };
                MicroOp::alu(0x1000 + 4 * i as u64, OpClass::IntAlu, [src, None])
            })
            .collect();
        t.compile()
    }

    #[test]
    fn compiled_chain_is_clean() {
        assert!(lint_compiled(&chain(64)).is_empty());
    }

    #[test]
    fn empty_compiled_trace_is_clean() {
        assert!(lint_compiled(&Trace::from_ops_unchecked(Vec::new()).compile()).is_empty());
    }

    #[test]
    fn sentinel_slots_always_pass() {
        // All-NO_PRODUCER tables are clean regardless of node count.
        let table = vec![[NO_PRODUCER, NO_PRODUCER]; 4];
        assert!(lint_producer_table(4, table).is_empty());
    }

    #[test]
    fn out_of_bounds_producer_is_an_error() {
        // Deliberately broken: op 1 names producer 9 in a 2-op table.
        let diags = lint_producer_table(2, vec![[NO_PRODUCER, NO_PRODUCER], [9, NO_PRODUCER]]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "BMP301");
        assert_eq!(diags[0].severity, crate::Severity::Error);
        assert_eq!(diags[0].locus, "compiled[1].producers[0]");
    }

    #[test]
    fn self_dependence_is_a_forward_edge() {
        // Deliberately broken: op 1 depends on itself.
        let diags = lint_producer_table(3, vec![[NO_PRODUCER; 2], [1, NO_PRODUCER], [0, 1]]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "BMP302");
        assert!(diags[0].message.contains("producer 1"));
    }

    #[test]
    fn forward_edge_is_an_error() {
        // Deliberately broken: op 0 depends on the later op 2.
        let diags = lint_producer_table(
            3,
            vec![[2, NO_PRODUCER], [NO_PRODUCER; 2], [NO_PRODUCER; 2]],
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "BMP302");
    }

    #[test]
    fn second_slot_is_checked_too() {
        let diags = lint_producer_table(2, vec![[NO_PRODUCER; 2], [0, 7]]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "BMP301");
        assert_eq!(diags[0].locus, "compiled[1].producers[1]");
    }

    #[test]
    fn repeated_findings_are_capped() {
        let table: Vec<[u32; 2]> = (0..20).map(|_| [99, NO_PRODUCER]).collect();
        let diags = lint_producer_table(20, table);
        let errors = diags.iter().filter(|d| d.code == "BMP301").count();
        // 8 individual findings plus one summary line.
        assert_eq!(errors, MAX_PER_CODE + 1);
        assert!(diags
            .iter()
            .any(|d| d.code == "BMP301" && d.message.contains("more BMP301")));
    }
}
