//! Machine-balance lints (`BMP0xx`).
//!
//! These rules check the *model assumptions* behind the interval
//! analysis, not structural validity — [`MachineConfig::validate`]
//! already guarantees the latter (and `BMP000` bridges its errors into
//! the report). The interval model's central premise is a *balanced*
//! design whose steady-state throughput equals the dispatch width `D`;
//! each rule flags a configuration where some other resource silently
//! caps throughput below `D` or starves the drain the penalty
//! decomposition measures.

use bmp_uarch::{FuKind, LatencyTable, MachineConfig, PredictorConfig, FU_KINDS, OP_CLASSES};

use crate::diag::Diagnostic;

/// Runs every machine-balance rule over `cfg`.
pub fn lint_machine(cfg: &MachineConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // BMP000: structural validity, bridged from the config's own checks.
    if let Err(e) = cfg.validate() {
        out.push(
            Diagnostic::error(
                "BMP000",
                "machine",
                format!("configuration is invalid: {e}"),
            )
            .with_suggestion(
                "construct configurations through MachineConfigBuilder::build, \
                     which rejects this",
            ),
        );
    }

    // BMP001: the FU pool must sustain the dispatch width. If the total
    // number of units is below D the machine can never reach its
    // steady-state throughput and every interval-model estimate built on
    // D is wrong.
    let units = cfg.fus.total();
    if units < cfg.dispatch_width {
        out.push(
            Diagnostic::error(
                "BMP001",
                "machine.fus",
                format!(
                    "{units} functional units cannot sustain a {}-wide dispatch; \
                     the interval model's steady-state throughput D is unreachable",
                    cfg.dispatch_width
                ),
            )
            .with_suggestion(format!(
                "provide at least {} units across the pool or narrow the machine",
                cfg.dispatch_width
            )),
        );
    } else if units < cfg.issue_width {
        out.push(Diagnostic::warn(
            "BMP001",
            "machine.fus",
            format!(
                "issue width {} exceeds the {units} available functional units; \
                 the extra issue slots can never be used",
                cfg.issue_width
            ),
        ));
    }

    // BMP002: during the frontend refill after a mispredict, the window
    // drains c_fe · D instructions. A window smaller than that cannot
    // hold the drain, so the ramp-up the model attributes to contributor
    // (ii) is clipped by the window instead.
    let drain = u64::from(cfg.frontend_depth) * u64::from(cfg.dispatch_width);
    if u64::from(cfg.window_size) < drain {
        out.push(
            Diagnostic::warn(
                "BMP002",
                "machine.window_size",
                format!(
                    "window of {} cannot cover the frontend-refill drain \
                     c_fe·D = {}·{} = {drain}; window fill will clip the \
                     interval ramp-up",
                    cfg.window_size, cfg.frontend_depth, cfg.dispatch_width
                ),
            )
            .with_suggestion(format!(
                "grow the window to at least {drain} entries or shorten the frontend"
            )),
        );
    }

    // BMP003: a global-history predictor whose history cannot index the
    // whole table leaves entries unreachable through history alone; the
    // size the experiment reports overstates the effective capacity.
    let indexability = |entries: u32, history_bits: u32, what: &str| -> Option<Diagnostic> {
        let reachable = 1u64.checked_shl(history_bits).unwrap_or(u64::MAX);
        (reachable < u64::from(entries)).then(|| {
            Diagnostic::info(
                "BMP003",
                "machine.predictor",
                format!(
                    "{what}: {history_bits} history bits index only {reachable} of \
                     {entries} entries; the table is larger than the history can \
                     distinguish"
                ),
            )
            .with_suggestion(format!(
                "use {} history bits or {reachable} entries for a fully indexed table",
                u64::from(entries).trailing_zeros()
            ))
        })
    };
    match cfg.predictor {
        PredictorConfig::GShare {
            entries,
            history_bits,
        } => out.extend(indexability(entries, history_bits, "gshare")),
        PredictorConfig::Tournament {
            entries,
            history_bits,
        } => out.extend(indexability(
            entries,
            history_bits,
            "tournament gshare component",
        )),
        PredictorConfig::Local {
            pattern_entries,
            history_bits,
            ..
        } => out.extend(indexability(
            pattern_entries,
            history_bits,
            "local pattern table",
        )),
        _ => {}
    }

    // BMP004: fetch narrower than dispatch starves the window in steady
    // state — D is then bounded by fetch, not dispatch.
    if cfg.fetch_width < cfg.dispatch_width {
        out.push(
            Diagnostic::warn(
                "BMP004",
                "machine.fetch_width",
                format!(
                    "fetch width {} is below dispatch width {}; sustained \
                     throughput is fetch-bound and the model's D overstates it",
                    cfg.fetch_width, cfg.dispatch_width
                ),
            )
            .with_suggestion("widen fetch to at least the dispatch width".to_owned()),
        );
    }

    // BMP005: every latency-table class must map to a populated FU kind.
    let mut counts = [0u8; 5];
    for (slot, kind) in counts.iter_mut().zip(FU_KINDS) {
        *slot = cfg.fus.count(kind);
    }
    out.extend(lint_fu_coverage(counts, &cfg.latencies));

    // BMP006: commit narrower than dispatch backs the ROB up in steady
    // state; retirement, not dispatch, then sets the throughput.
    if cfg.commit_width < cfg.dispatch_width {
        out.push(Diagnostic::warn(
            "BMP006",
            "machine.commit_width",
            format!(
                "commit width {} is below dispatch width {}; the ROB will fill \
                 and cap throughput below D",
                cfg.commit_width, cfg.dispatch_width
            ),
        ));
    }

    out
}

/// `BMP005`: flags latency-table entries whose operation class has no
/// serving functional unit.
///
/// [`FuPool::new`](bmp_uarch::FuPool::new) rejects zero counts, so a
/// config built through public constructors never triggers this; the rule
/// guards the model against that invariant ever being relaxed (e.g. a
/// future deserializer), and is exposed over raw counts (in
/// [`FU_KINDS`] order) so the rule itself stays testable.
pub fn lint_fu_coverage(counts: [u8; 5], latencies: &LatencyTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for class in OP_CLASSES {
        let kind = class.fu_kind();
        if counts[kind.index()] == 0 {
            out.push(
                Diagnostic::error(
                    "BMP005",
                    format!("machine.latencies[{class}]"),
                    format!(
                        "class {class} has a {}-cycle latency entry but no {kind} \
                         unit to execute on; such instructions can never issue",
                        latencies.latency(class)
                    ),
                )
                .with_suggestion(format!("give the pool at least one {kind} unit")),
            );
        }
    }
    out
}

/// Convenience: `true` when `kind` serves at least one op class. Used by
/// the CLI to explain the FU/class mapping in verbose output.
pub fn kind_is_used(kind: FuKind) -> bool {
    OP_CLASSES.iter().any(|c| c.fu_kind() == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::{presets, FuPool, MachineConfigBuilder};

    #[test]
    fn baseline_is_clean() {
        assert!(lint_machine(&presets::baseline_4wide()).is_empty());
    }

    #[test]
    fn unbalanced_fu_pool_is_an_error() {
        // Deliberately broken: 5 units for an 8-wide dispatch. Passes
        // validate() — balance is exactly what validation does not check.
        let cfg = MachineConfigBuilder::new()
            .width(8)
            .window_size(128)
            .rob_size(256)
            .fus(FuPool::new([1, 1, 1, 1, 1]).unwrap())
            .build()
            .unwrap();
        let diags = lint_machine(&cfg);
        let bmp001 = diags
            .iter()
            .find(|d| d.code == "BMP001")
            .expect("BMP001 fires");
        assert_eq!(bmp001.severity, crate::Severity::Error);
        assert!(bmp001.message.contains("5 functional units"));
        assert!(bmp001.suggestion.is_some());
    }

    #[test]
    fn small_window_cannot_cover_drain() {
        // 40-deep frontend at width 4 drains 160; window 64 clips it.
        let cfg = presets::deep_frontend(40).unwrap();
        let diags = lint_machine(&cfg);
        assert!(diags.iter().any(|d| d.code == "BMP002"
            && d.severity == crate::Severity::Warn
            && d.message.contains("160")));
    }

    #[test]
    fn underindexed_predictor_is_flagged() {
        let cfg = MachineConfigBuilder::new()
            .predictor(PredictorConfig::GShare {
                entries: 4096,
                history_bits: 8,
            })
            .build()
            .unwrap();
        let diags = lint_machine(&cfg);
        assert!(diags
            .iter()
            .any(|d| d.code == "BMP003" && d.message.contains("256 of")));
    }

    #[test]
    fn narrow_fetch_is_flagged() {
        let cfg = MachineConfigBuilder::new()
            .fetch_width(2)
            .dispatch_width(4)
            .build()
            .unwrap();
        assert!(lint_machine(&cfg).iter().any(|d| d.code == "BMP004"));
    }

    #[test]
    fn missing_fu_kind_is_an_error() {
        let diags = lint_fu_coverage([0, 1, 1, 1, 1], &LatencyTable::default());
        // IntAlu serves both IntAlu and Branch classes.
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == "BMP005"));
        assert!(diags.iter().all(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn narrow_commit_is_flagged() {
        let cfg = MachineConfigBuilder::new().commit_width(2).build().unwrap();
        assert!(lint_machine(&cfg).iter().any(|d| d.code == "BMP006"));
    }

    #[test]
    fn every_kind_is_used_by_some_class() {
        for kind in FU_KINDS {
            assert!(kind_is_used(kind));
        }
    }
}
