//! `BMP4xx` — run-journal consistency.
//!
//! `run_all` maintains `results/run_journal.json` (see
//! [`bmp_core::journal`]) as the crash-safe manifest of an experiment
//! run, and `--resume` trusts it to decide what to skip. These rules
//! check the invariants that trust rests on: a supported format version,
//! unique experiment names, attempt counts that prove the experiment
//! actually ran, status/error agreement, and plausible fingerprints in
//! the deterministic name-sorted order the writer maintains.
//!
//! * `BMP400` (error) — the journal cannot be parsed, or its `version`
//!   is not the [`JOURNAL_VERSION`] this workspace writes.
//! * `BMP401` (error) — two records share one experiment name; `upsert`
//!   semantics make the duplicate unreachable, so one of them is dead.
//! * `BMP402` (warn) — a record claims a terminal status with zero
//!   attempts: nothing can complete or fail without running once.
//! * `BMP403` (error) — a failed record without an error message, or
//!   (warn) a completed record still carrying one.
//! * `BMP404` (warn) — fingerprint invariants: a zero fingerprint (the
//!   content hash of a real `(name, ops, seed)` triple is never zero in
//!   practice, so zero means "never computed"), or two different
//!   experiments sharing one fingerprint.
//! * `BMP405` (warn) — records out of name order: the writer sorts by
//!   name so journals diff cleanly across thread counts; an unsorted
//!   journal was produced (or edited) by something else.

use std::collections::HashMap;

use bmp_core::journal::{RunJournal, RunStatus, JOURNAL_VERSION};

use crate::diag::Diagnostic;

/// Runs the `BMP40x` rules over a parsed journal.
pub fn lint_journal(journal: &RunJournal) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if journal.version != JOURNAL_VERSION {
        diags.push(
            Diagnostic::error(
                "BMP400",
                "journal.version",
                format!(
                    "unsupported journal version {} (this workspace writes {JOURNAL_VERSION})",
                    journal.version
                ),
            )
            .with_suggestion("re-run `run_all` to regenerate the journal"),
        );
    }

    let mut by_name: HashMap<&str, usize> = HashMap::new();
    let mut by_fp: HashMap<u64, &str> = HashMap::new();
    for (i, rec) in journal.experiments.iter().enumerate() {
        let locus = format!("experiments[{i}] ({})", rec.name);

        if let Some(first) = by_name.insert(rec.name.as_str(), i) {
            diags.push(Diagnostic::error(
                "BMP401",
                &locus,
                format!(
                    "duplicate record for '{}' (first at experiments[{first}]); \
                     the writer upserts by name, so duplicates mean a foreign edit",
                    rec.name
                ),
            ));
        }

        if rec.attempts == 0 {
            diags.push(Diagnostic::warn(
                "BMP402",
                &locus,
                format!(
                    "status '{}' with zero attempts — a terminal status requires \
                     at least one run",
                    rec.status
                ),
            ));
        }

        match (rec.status, &rec.error) {
            (RunStatus::Failed, None) => diags.push(Diagnostic::error(
                "BMP403",
                &locus,
                "failed record without an error message; the failure cause is lost",
            )),
            (RunStatus::Completed, Some(e)) => diags.push(Diagnostic::warn(
                "BMP403",
                &locus,
                format!("completed record still carries an error ('{e}')"),
            )),
            _ => {}
        }

        if rec.fingerprint == 0 {
            diags.push(Diagnostic::warn(
                "BMP404",
                &locus,
                "zero fingerprint — the content hash was never computed, so \
                 `--resume` cannot safely trust this record",
            ));
        } else if let Some(other) = by_fp.insert(rec.fingerprint, rec.name.as_str()) {
            if other != rec.name {
                diags.push(Diagnostic::warn(
                    "BMP404",
                    &locus,
                    format!(
                        "fingerprint {:016x} is shared with '{other}' — distinct \
                         experiments must hash distinctly",
                        rec.fingerprint
                    ),
                ));
            }
        }
    }

    for pair in journal.experiments.windows(2) {
        if pair[0].name > pair[1].name {
            diags.push(
                Diagnostic::warn(
                    "BMP405",
                    format!("experiments ({} > {})", pair[0].name, pair[1].name),
                    "records are not sorted by name; the writer keeps them sorted \
                     so journals are deterministic across thread counts",
                )
                .with_suggestion("re-run `run_all` (or sort the records) to restore the order"),
            );
            break;
        }
    }

    diags
}

/// Parses `text` as a run journal and lints it; an unparseable journal
/// is itself the finding (`BMP400`).
pub fn lint_journal_text(text: &str) -> Vec<Diagnostic> {
    match RunJournal::parse(text) {
        Ok(journal) => lint_journal(&journal),
        Err(e) => vec![Diagnostic::error(
            "BMP400",
            "journal",
            format!("journal does not parse: {e}"),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::journal::ExperimentRecord;

    fn rec(name: &str, status: RunStatus, fingerprint: u64) -> ExperimentRecord {
        ExperimentRecord {
            name: name.to_owned(),
            status,
            fingerprint,
            attempts: 1,
            error: match status {
                RunStatus::Completed => None,
                RunStatus::Failed => Some("boom".to_owned()),
            },
            metrics: None,
            csv_fnv: None,
        }
    }

    #[test]
    fn a_healthy_journal_is_clean() {
        let mut j = RunJournal::new(2000, 42);
        j.upsert(rec("fig2_penalty", RunStatus::Completed, 0xdead));
        j.upsert(rec("fig3_ipc", RunStatus::Failed, 0xbeef));
        assert!(lint_journal(&j).is_empty());
    }

    #[test]
    fn version_mismatch_is_bmp400() {
        let mut j = RunJournal::new(2000, 42);
        j.version = 99;
        let d = lint_journal(&j);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "BMP400");
    }

    #[test]
    fn unparseable_text_is_bmp400() {
        let d = lint_journal_text("{ not json");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "BMP400");
    }

    #[test]
    fn duplicates_zero_attempts_and_error_mismatches_fire() {
        let mut j = RunJournal::new(2000, 42);
        // Bypass upsert to construct the pathological journal a foreign
        // tool could write.
        j.experiments = vec![
            rec("a_exp", RunStatus::Completed, 1),
            rec("a_exp", RunStatus::Completed, 2),
            ExperimentRecord {
                name: "b_exp".to_owned(),
                status: RunStatus::Failed,
                fingerprint: 3,
                attempts: 0,
                error: None,
                metrics: None,
                csv_fnv: None,
            },
            ExperimentRecord {
                name: "c_exp".to_owned(),
                status: RunStatus::Completed,
                fingerprint: 4,
                attempts: 1,
                error: Some("leftover".to_owned()),
                metrics: None,
                csv_fnv: None,
            },
        ];
        let codes: Vec<_> = lint_journal(&j).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"BMP401"), "duplicate name: {codes:?}");
        assert!(codes.contains(&"BMP402"), "zero attempts: {codes:?}");
        assert!(
            codes.contains(&"BMP403"),
            "status/error mismatch: {codes:?}"
        );
    }

    #[test]
    fn fingerprint_and_order_invariants_fire() {
        let mut j = RunJournal::new(2000, 42);
        j.experiments = vec![
            rec("z_exp", RunStatus::Completed, 0),
            rec("a_exp", RunStatus::Completed, 7),
            rec("m_exp", RunStatus::Completed, 7),
        ];
        let d = lint_journal(&j);
        let codes: Vec<_> = d.iter().map(|x| x.code).collect();
        assert!(codes.contains(&"BMP404"), "zero fingerprint: {codes:?}");
        assert_eq!(
            codes.iter().filter(|c| **c == "BMP404").count(),
            2,
            "zero + shared fingerprint both fire: {codes:?}"
        );
        assert!(codes.contains(&"BMP405"), "unsorted records: {codes:?}");
    }

    #[test]
    fn round_trip_through_the_writer_stays_clean() {
        let mut j = RunJournal::new(50_000, 7);
        j.upsert(rec(
            "fig2_penalty",
            RunStatus::Completed,
            0x1234_5678_9abc_def0,
        ));
        j.upsert(rec(
            "table1_config",
            RunStatus::Failed,
            0x0fed_cba9_8765_4321,
        ));
        let parsed = RunJournal::parse(&j.to_json()).expect("writer output parses");
        assert!(lint_journal(&parsed).is_empty());
    }
}
