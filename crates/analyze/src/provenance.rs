//! Executed-trace provenance lints (`BMP9xx`).
//!
//! The BMP1xx family checks properties *any* trace must have. This
//! family checks the stronger invariants a trace claiming to be
//! *recorded from a real execution* must additionally carry — exactly
//! what the `bmp-isa` functional executor guarantees by construction
//! (see `docs/ISA.md`): 4-aligned RV32 PCs, straight-line continuity
//! inside superblocks, architectural effective addresses on every
//! memory op, aligned branch targets. A clean report is a necessary
//! condition for executed provenance, not a proof of it (the
//! statistical generators deliberately maintain the same structural
//! invariants); what the family buys is that any corruption in the
//! executor, the trace emitter, or a serialization round-trip of an
//! executed trace is loud rather than silently absorbed by the
//! interval model.
//!
//! | code   | severity | meaning                                        |
//! |--------|----------|------------------------------------------------|
//! | BMP900 | error    | PC misaligned or outside the RV32 address space |
//! | BMP901 | error    | straight-line break: a non-branch op not followed by `pc + 4` |
//! | BMP902 | error    | memory op with a null or non-RV32 effective address |
//! | BMP903 | error    | branch target null, misaligned, or outside RV32 |
//!
//! BMP901 is deliberately stricter than BMP105 (which compares against
//! the op's own `next_pc`, a tautology for non-branches in some
//! encodings): within a superblock — a branch-free run — the PCs of an
//! executed RV32 trace advance by exactly one 4-byte instruction per
//! op, monotonically. Only a recorded branch may move the PC anywhere
//! else.

use bmp_trace::Trace;

use crate::diag::Diagnostic;
use crate::tracelint::{push_capped, summarize_overflow};

/// One past the top of the RV32 address space: executed PCs, branch
/// targets and effective addresses all live strictly below it.
const RV32_TOP: u64 = 1 << 32;

/// Runs every provenance rule over `trace`. A clean report certifies
/// the structural fingerprint of an executed trace; it does not (and
/// cannot) re-run the program.
pub fn lint_executed_trace(trace: &Trace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ops = trace.ops();
    let (mut badpc, mut badline, mut badmem, mut badtgt) = (0usize, 0, 0, 0);
    for (i, op) in ops.iter().enumerate() {
        // BMP900: every fetched PC is a 4-aligned RV32 address.
        let pc = op.pc();
        if pc % 4 != 0 || pc >= RV32_TOP || pc == 0 {
            badpc = push_capped(
                &mut out,
                badpc,
                Diagnostic::error(
                    "BMP900",
                    format!("trace[{i}]"),
                    format!("pc {pc:#x} is not a 4-aligned nonzero RV32 address"),
                )
                .with_suggestion("executed traces carry the PCs the CPU actually fetched"),
            );
        }

        // BMP901: inside a superblock the PC advances by exactly 4.
        if op.branch_info().is_none() && i + 1 < ops.len() {
            let next = ops[i + 1].pc();
            if next != pc + 4 {
                badline = push_capped(
                    &mut out,
                    badline,
                    Diagnostic::error(
                        "BMP901",
                        format!("trace[{i}]"),
                        format!(
                            "straight-line break: non-branch op at pc {pc:#x} is \
                             followed by pc {next:#x}, not {:#x}",
                            pc + 4
                        ),
                    )
                    .with_suggestion(
                        "only a recorded branch may end a superblock; re-record \
                         the trace from the executor",
                    ),
                );
            }
        }

        // BMP902: loads and stores carry the real effective address.
        if let Some(addr) = op.mem_addr() {
            if addr == 0 || addr >= RV32_TOP {
                badmem = push_capped(
                    &mut out,
                    badmem,
                    Diagnostic::error(
                        "BMP902",
                        format!("trace[{i}]"),
                        format!("memory op effective address {addr:#x} is null or outside RV32"),
                    )
                    .with_suggestion(
                        "executed traces record architectural effective addresses; \
                         0 means the recorder never saw one",
                    ),
                );
            }
        }

        // BMP903: branch targets are real 4-aligned code addresses.
        if let Some(b) = op.branch_info() {
            if b.target == 0 || b.target % 4 != 0 || b.target >= RV32_TOP {
                badtgt = push_capped(
                    &mut out,
                    badtgt,
                    Diagnostic::error(
                        "BMP903",
                        format!("trace[{i}]"),
                        format!(
                            "branch target {:#x} is null, misaligned, or outside RV32",
                            b.target
                        ),
                    ),
                );
            }
        }
    }
    summarize_overflow(&mut out, "BMP900", badpc);
    summarize_overflow(&mut out, "BMP901", badline);
    summarize_overflow(&mut out, "BMP902", badmem);
    summarize_overflow(&mut out, "BMP903", badtgt);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracelint::MAX_PER_CODE;
    use bmp_trace::{BranchKind, MicroOp, Trace};
    use bmp_uarch::OpClass;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn executed_kernel_traces_are_clean() {
        for name in bmp_isa::NAMES {
            let trace = bmp_isa::kernel_trace(name, 2_000, 42).expect("known kernel");
            let diags = lint_executed_trace(&trace);
            assert!(diags.is_empty(), "{name}: {:?}", codes(&diags));
        }
    }

    #[test]
    fn structurally_faithful_synthetic_traces_also_pass() {
        // The statistical generators lay out a synthetic code image and
        // maintain the same structural invariants, so they pass too —
        // the family certifies structure, not origin (module docs).
        let profile = bmp_workloads::spec::by_name("gzip").expect("spec profile");
        let trace = profile.generate(2_000, 42);
        let diags = lint_executed_trace(&trace);
        assert!(diags.is_empty(), "{:?}", codes(&diags));
    }

    #[test]
    fn misaligned_pc_is_bmp900() {
        let ops = vec![
            MicroOp::alu(0x1002, OpClass::IntAlu, [None, None]),
            MicroOp::alu(0x1006, OpClass::IntAlu, [None, None]),
        ];
        let diags = lint_executed_trace(&Trace::from_ops_unchecked(ops));
        assert!(codes(&diags).contains(&"BMP900"), "{diags:?}");
    }

    #[test]
    fn straight_line_break_is_bmp901() {
        let ops = vec![
            MicroOp::alu(0x1000, OpClass::IntAlu, [None, None]),
            MicroOp::alu(0x2000, OpClass::IntAlu, [None, None]),
        ];
        let diags = lint_executed_trace(&Trace::from_ops_unchecked(ops));
        assert!(codes(&diags).contains(&"BMP901"), "{diags:?}");
    }

    #[test]
    fn null_memory_address_is_bmp902() {
        let ops = vec![
            MicroOp::load(0x1000, 0, [None, None]),
            MicroOp::alu(0x1004, OpClass::IntAlu, [None, None]),
        ];
        let diags = lint_executed_trace(&Trace::from_ops_unchecked(ops));
        assert_eq!(codes(&diags), vec!["BMP902"], "{diags:?}");
    }

    #[test]
    fn bad_branch_target_is_bmp903() {
        let ops = vec![
            MicroOp::branch(0x1000, BranchKind::Jump, true, 0x2001, [None, None]),
            MicroOp::alu(0x2001, OpClass::IntAlu, [None, None]),
        ];
        let diags = lint_executed_trace(&Trace::from_ops_unchecked(ops));
        // The target is misaligned (BMP903) and so is the landing pc
        // (BMP900).
        assert!(codes(&diags).contains(&"BMP903"), "{diags:?}");
        assert!(codes(&diags).contains(&"BMP900"), "{diags:?}");
    }

    #[test]
    fn a_taken_branch_may_move_the_pc() {
        let ops = vec![
            MicroOp::branch(0x1000, BranchKind::Conditional, true, 0x2000, [None, None]),
            MicroOp::alu(0x2000, OpClass::IntAlu, [None, None]),
        ];
        assert!(lint_executed_trace(&Trace::from_ops_unchecked(ops)).is_empty());
    }

    #[test]
    fn repeated_findings_are_capped() {
        let ops: Vec<MicroOp> = (0..40)
            .map(|i| MicroOp::alu(0x1000 * (i + 1) as u64, OpClass::IntAlu, [None, None]))
            .collect();
        let diags = lint_executed_trace(&Trace::from_ops_unchecked(ops));
        let n = diags.iter().filter(|d| d.code == "BMP901").count();
        assert_eq!(n, MAX_PER_CODE + 1, "{diags:?}");
    }
}
