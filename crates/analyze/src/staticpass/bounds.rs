//! Guaranteed bounds and point estimates for the five penalty
//! contributors, computed without running a simulator.
//!
//! Two observations make this possible (derivations in
//! `docs/STATIC_ANALYSIS.md`):
//!
//! 1. **The local contributors are exact.** The model's per-interval
//!    knock-out decomposition is itself a closed-form dependence-graph
//!    computation ([`schedule_interval`]) over the interval's ops — no
//!    cycle-level state is involved. Re-running the same four schedules
//!    here reproduces `base`, `ilp`, `fu_latency`, `short_dmiss` and
//!    `local_resolution` *exactly*, so their bounds collapse to a point.
//!    Likewise `refill = intervals × frontend_depth` by construction.
//!
//! 2. **The effective resolution admits a per-branch envelope.** What the
//!    static pass deliberately does not compute is whole-trace interplay
//!    (window carryover, issue-bandwidth contention, ROB fill) — the
//!    `carryover` term. But every engine dispatches in order and caps the
//!    in-flight set, which yields machine-derived constants
//!    `per_branch_lo`/`per_branch_hi` bracketing *any* engine's
//!    per-misprediction resolution. Summed over the misprediction count,
//!    they bound the effective-resolution and carryover totals.
//!
//! The point estimate for the effective resolution is the local total
//! (carryover ≈ 0); its observed error against simulation is reported by
//! `bmp-verify` and documented in `docs/STATIC_ANALYSIS.md`.

use bmp_core::drain::{schedule_interval, WindowParams};
use bmp_core::functional::FunctionalOutcome;
use bmp_core::intervals::{segment, IntervalEventKind};
use bmp_core::metrics::ModelMetrics;
use bmp_trace::{dag, Trace};
use bmp_uarch::{LatencyTable, MachineConfig, OpClass};

/// A closed interval `[lo, hi]` with a point estimate, all in cycles
/// (signed so the carryover total fits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bound {
    /// Guaranteed lower bound.
    pub lo: i64,
    /// Point estimate (always within `[lo, hi]`).
    pub point: i64,
    /// Guaranteed upper bound.
    pub hi: i64,
}

impl Bound {
    /// An exact value: `lo == point == hi`.
    pub fn exact(v: i64) -> Self {
        Self {
            lo: v,
            point: v,
            hi: v,
        }
    }

    /// A ranged bound with the point estimate clamped inside.
    pub fn ranged(lo: i64, point: i64, hi: i64) -> Self {
        debug_assert!(lo <= hi, "bound must be ordered: [{lo}, {hi}]");
        Self {
            lo,
            point: point.clamp(lo, hi),
            hi,
        }
    }

    /// Whether the bound has collapsed to a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies within `[lo, hi]`.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Relative error of the point estimate against an observed value
    /// (denominator floored at 1 cycle).
    pub fn rel_err(&self, observed: i64) -> f64 {
        (self.point - observed).abs() as f64 / (observed.abs().max(1)) as f64
    }
}

/// Static bounds on every penalty-accounting total of one
/// (config, trace) pair. All fields are *totals* over the trace's
/// mispredicted-branch intervals, mirroring [`ModelMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct StaticBounds {
    /// Instructions analyzed.
    pub instructions: u64,
    /// Mispredicted-branch intervals found by the functional pass.
    pub intervals: u64,
    /// Frontend depth of the analyzed machine.
    pub frontend_depth: u32,
    /// Per-misprediction resolution lower bound (engine-independent).
    pub per_branch_lo: u64,
    /// Per-misprediction resolution upper bound (engine-independent).
    pub per_branch_hi: u64,
    /// Contributor (i): frontend refill total — exact.
    pub refill: Bound,
    /// The resolution floor total — exact, and equal to
    /// `2 × intervals` (see the base-term theorem in
    /// `docs/STATIC_ANALYSIS.md`).
    pub base: Bound,
    /// Contributor (iii): ILP share total — exact.
    pub ilp: Bound,
    /// Contributor (iv): FU-latency share total — exact.
    pub fu_latency: Bound,
    /// Contributor (v): short D-miss share total — exact.
    pub short_dmiss: Bound,
    /// Local (isolated-interval) resolution total — exact; the sum of
    /// the four terms above.
    pub local_resolution: Bound,
    /// Contributor (ii)'s cross-interval part: carryover total —
    /// bounded via the per-branch envelope, point estimate 0-ish.
    pub carryover: Bound,
    /// Effective resolution total — bounded, point = local total.
    pub resolution: Bound,
    /// Full penalty total (resolution + refill) — bounded.
    pub penalty: Bound,
    /// Front-end starvation injected by I-cache misses (cycles the
    /// fetch stream stalls beyond misprediction redirects) — exact.
    pub icache_stall_cycles: u64,
    /// Mean dependence-graph critical path of the mispredicted-branch
    /// intervals, with real latencies (0 without intervals).
    pub mean_critical_path: f64,
    /// Per-interval `(terminating branch PC, local resolution)` pairs,
    /// in trace order — the attribution input of the per-branch-class
    /// classifier.
    pub interval_terms: Vec<(u64, u64)>,
}

impl StaticBounds {
    /// The contributor table in the paper's order:
    /// `(label, bound, exact?)` rows for reports.
    pub fn contributor_rows(&self) -> [(&'static str, Bound); 8] {
        [
            ("frontend (i)", self.refill),
            ("base", self.base),
            ("ilp (iii)", self.ilp),
            ("fu-latency (iv)", self.fu_latency),
            ("short-dmiss (v)", self.short_dmiss),
            ("carryover (ii)", self.carryover),
            ("resolution", self.resolution),
            ("penalty", self.penalty),
        ]
    }

    /// Checks the *exact* part of a model-metrics section: the local
    /// contributors and refill must match the static recomputation to
    /// the cycle (the static pass replays the model's own per-interval
    /// decomposition).
    ///
    /// Returns one message per violation; the empty vector is a pass.
    pub fn check_model_exact(&self, m: &ModelMetrics) -> Vec<String> {
        if m.intervals != self.intervals {
            return vec![format!(
                "model analyzed {} intervals but the static pass found {} \
                 — different trace or config",
                m.intervals, self.intervals
            )];
        }
        let mut v = Vec::new();
        let exact = [
            ("base", m.base, self.base),
            ("ilp", m.ilp, self.ilp),
            ("fu-latency", m.fu_latency, self.fu_latency),
            ("short-dmiss", m.short_dmiss, self.short_dmiss),
            (
                "local resolution",
                m.local_resolution,
                self.local_resolution,
            ),
            ("refill", m.refill, self.refill),
        ];
        for (name, got, want) in exact {
            if got as i64 != want.point {
                v.push(format!(
                    "{name} total {got} != statically recomputed {}",
                    want.point
                ));
            }
        }
        v
    }

    /// Checks the *bounded* part of a model-metrics section: the
    /// effective resolution and carryover totals must fall within the
    /// proven per-branch envelope.
    pub fn check_model_envelope(&self, m: &ModelMetrics) -> Vec<String> {
        let mut v = Vec::new();
        if !self.resolution.contains(m.resolution as i64) {
            v.push(format!(
                "resolution total {} outside proven bounds [{}, {}]",
                m.resolution, self.resolution.lo, self.resolution.hi
            ));
        }
        if !self.carryover.contains(m.carryover) {
            v.push(format!(
                "carryover total {} outside proven bounds [{}, {}]",
                m.carryover, self.carryover.lo, self.carryover.hi
            ));
        }
        v
    }

    /// [`check_model_exact`](Self::check_model_exact) and
    /// [`check_model_envelope`](Self::check_model_envelope) combined.
    pub fn check_model(&self, m: &ModelMetrics) -> Vec<String> {
        let mut v = self.check_model_exact(m);
        if v.is_empty() || m.intervals == self.intervals {
            v.extend(self.check_model_envelope(m));
        }
        v
    }

    /// Checks a simulator's recorded totals against the per-branch
    /// envelope and the refill law. `mispredicts` must be the *engine's
    /// own* misprediction count (the simulated predictor state can
    /// diverge slightly from the functional pass — experiment E-F10), so
    /// the envelope is applied per recorded event.
    pub fn check_sim(
        &self,
        mispredicts: u64,
        resolution_total: u64,
        refill_total: u64,
    ) -> Vec<String> {
        let mut v = Vec::new();
        let lo = mispredicts * self.per_branch_lo;
        let hi = mispredicts * self.per_branch_hi;
        if !(lo..=hi).contains(&resolution_total) {
            v.push(format!(
                "simulated resolution total {resolution_total} outside \
                 [{lo}, {hi}] for {mispredicts} mispredictions \
                 (per-branch envelope [{}, {}])",
                self.per_branch_lo, self.per_branch_hi
            ));
        }
        let want_refill = mispredicts * u64::from(self.frontend_depth);
        if refill_total != want_refill {
            v.push(format!(
                "simulated refill total {refill_total} != {mispredicts} \
                 mispredictions x frontend depth {} = {want_refill}",
                self.frontend_depth
            ));
        }
        v
    }

    /// Mean penalty point estimate (local resolution + refill per
    /// interval), or `None` without intervals.
    pub fn mean_penalty_point(&self) -> Option<f64> {
        if self.intervals == 0 {
            None
        } else {
            Some(self.penalty.point as f64 / self.intervals as f64)
        }
    }
}

/// The engine-independent per-misprediction resolution envelope of a
/// machine: every engine's `resolution = done − dispatch` of a
/// mispredicted branch lies in `[lo, hi]`.
///
/// * `lo = 1 + latency(Branch)`: dispatch-to-issue takes one cycle in
///   every engine and the branch then executes.
/// * `hi = M·(L + O + 2) + L` with `M = max(window, rob)`,
///   `L` the largest possible op latency (table maximum or the full
///   L1+L2+memory data path) and `O` the largest non-pipelined FU
///   occupancy (the divide latencies): in-order dispatch plus the
///   ROB/window caps leave at most `M` older unissued ops at the
///   branch's dispatch, and oldest-first issue retires each within
///   `L + O + 2` cycles once it is the oldest. See
///   `docs/STATIC_ANALYSIS.md` for the full induction.
pub fn per_branch_resolution_bounds(cfg: &MachineConfig) -> (u64, u64) {
    let lo = 1 + u64::from(cfg.latencies.latency(OpClass::Branch));
    let data_path = u64::from(cfg.caches.l1d().hit_latency())
        + cfg.caches.l2().map_or(0, |l2| u64::from(l2.hit_latency()))
        + u64::from(cfg.caches.mem_latency());
    let max_lat = u64::from(cfg.latencies.max_latency()).max(data_path);
    let max_occ = u64::from(
        cfg.latencies
            .latency(OpClass::IntDiv)
            .max(cfg.latencies.latency(OpClass::FpDiv)),
    );
    let m = u64::from(cfg.window_size.max(cfg.rob_size));
    let hi = m * (max_lat + max_occ + 2) + max_lat;
    (lo, hi)
}

/// Runs the functional pass and computes the static bounds for
/// `trace` on `cfg`.
pub fn compute(cfg: &MachineConfig, trace: &Trace) -> StaticBounds {
    let outcome = FunctionalOutcome::compute(trace, cfg);
    compute_with(cfg, trace, &outcome)
}

/// Computes the static bounds from an existing functional pass (the
/// pass is deterministic, so reusing the model's own outcome guarantees
/// identical interval segmentation).
pub fn compute_with(
    cfg: &MachineConfig,
    trace: &Trace,
    outcome: &FunctionalOutcome,
) -> StaticBounds {
    let intervals = segment(trace.len(), &outcome.events);
    let params = WindowParams::from(cfg);
    let l1_hit = cfg.caches.l1d().hit_latency();
    let unit = LatencyTable::unit();

    let mut n = 0u64;
    let mut base_t = 0u64;
    let mut ilp_t = 0u64;
    let mut fu_t = 0u64;
    let mut sd_t = 0u64;
    let mut local_t = 0u64;
    let mut cp_t = 0u64;
    let mut terms = Vec::new();

    for iv in &intervals {
        if iv.kind != Some(IntervalEventKind::BranchMispredict) {
            continue;
        }
        let ops = &trace.ops()[iv.start..=iv.end];
        let branch_off = ops.len() - 1;
        let real_load = |i: usize| outcome.load_latency[iv.start + i];

        // The model's own knock-out cascade, replayed verbatim
        // (`PenaltyModel::analyze_with`) — this is what makes the local
        // terms exact rather than bounded.
        let r_local =
            schedule_interval(ops, params, &cfg.latencies, real_load, false).resolution(branch_off);
        let r_l1 = schedule_interval(ops, params, &cfg.latencies, |_| Some(l1_hit), false)
            .resolution(branch_off);
        let r_unit =
            schedule_interval(ops, params, &unit, |_| Some(1), false).resolution(branch_off);
        let r_base =
            schedule_interval(ops, params, &unit, |_| Some(1), true).resolution(branch_off);
        let r_l1 = r_l1.min(r_local);
        let r_unit = r_unit.min(r_l1);
        let r_base = r_base.min(r_unit);

        n += 1;
        base_t += r_base;
        ilp_t += r_unit - r_base;
        fu_t += r_l1 - r_unit;
        sd_t += r_local - r_l1;
        local_t += r_local;
        cp_t += dag::critical_path(ops, |i, op| {
            u64::from(match op.class() {
                OpClass::Load => {
                    real_load(i).unwrap_or_else(|| cfg.latencies.latency(OpClass::Load))
                }
                c => cfg.latencies.latency(c),
            })
        });
        terms.push((trace.ops()[iv.end].pc(), r_local));
    }

    let (per_lo, per_hi) = per_branch_resolution_bounds(cfg);
    let refill = n * u64::from(cfg.frontend_depth);
    let res_lo = (n * per_lo) as i64;
    let res_hi = (n * per_hi) as i64;
    let local = local_t as i64;
    let resolution = Bound::ranged(res_lo, local, res_hi);
    let carryover = Bound::ranged(res_lo - local, 0, res_hi - local);
    let penalty = Bound::ranged(
        res_lo + refill as i64,
        local + refill as i64,
        res_hi + refill as i64,
    );

    let icache_stall_cycles: u64 = outcome
        .events
        .iter()
        .map(|e| match e.kind {
            IntervalEventKind::ICacheMiss => u64::from(cfg.caches.short_dmiss_latency()),
            IntervalEventKind::ICacheLongMiss => {
                u64::from(cfg.caches.short_dmiss_latency()) + u64::from(cfg.caches.mem_latency())
            }
            _ => 0,
        })
        .sum();

    StaticBounds {
        instructions: trace.len() as u64,
        intervals: n,
        frontend_depth: cfg.frontend_depth,
        per_branch_lo: per_lo,
        per_branch_hi: per_hi,
        refill: Bound::exact(refill as i64),
        base: Bound::exact(base_t as i64),
        ilp: Bound::exact(ilp_t as i64),
        fu_latency: Bound::exact(fu_t as i64),
        short_dmiss: Bound::exact(sd_t as i64),
        local_resolution: Bound::exact(local),
        carryover,
        resolution,
        penalty,
        icache_stall_cycles,
        mean_critical_path: if n == 0 { 0.0 } else { cp_t as f64 / n as f64 },
        interval_terms: terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::PenaltyModel;
    use bmp_uarch::presets;
    use bmp_workloads::spec;

    fn bounds_for(name: &str, ops: usize, seed: u64) -> (StaticBounds, bmp_core::PenaltyAnalysis) {
        let cfg = presets::baseline_4wide();
        let trace = spec::by_name(name).unwrap().generate(ops, seed);
        let b = compute(&cfg, &trace);
        let a = PenaltyModel::new(cfg).analyze(&trace);
        (b, a)
    }

    #[test]
    fn local_terms_match_model_exactly() {
        let (b, a) = bounds_for("twolf", 20_000, 11);
        assert!(b.intervals > 0);
        assert_eq!(b.intervals as usize, a.breakdowns.len());
        let sum = |f: fn(&bmp_core::PenaltyBreakdown) -> u64| {
            a.breakdowns.iter().map(f).sum::<u64>() as i64
        };
        assert_eq!(b.base.point, sum(|x| x.base));
        assert_eq!(b.ilp.point, sum(|x| x.ilp));
        assert_eq!(b.fu_latency.point, sum(|x| x.fu_latency));
        assert_eq!(b.short_dmiss.point, sum(|x| x.short_dmiss));
        assert_eq!(b.local_resolution.point, sum(|x| x.local_resolution));
        assert!(b.base.is_exact() && b.ilp.is_exact());
    }

    #[test]
    fn base_theorem_two_cycles_per_interval() {
        // With unit latencies and dependences ignored, every op's
        // resolution is exactly 2 (enter → issue+1 → done+1), and the
        // cascade cannot push it below the unit-latency floor of 2.
        for name in ["gzip", "gcc", "mcf"] {
            let (b, _) = bounds_for(name, 15_000, 3);
            assert_eq!(
                b.base.point,
                2 * b.intervals as i64,
                "{name}: base must be exactly 2 per interval"
            );
        }
    }

    #[test]
    fn model_resolution_within_bounds() {
        let (b, a) = bounds_for("gcc", 20_000, 5);
        let res: i64 = a.breakdowns.iter().map(|x| x.resolution as i64).sum();
        let carry: i64 = a.breakdowns.iter().map(|x| x.carryover).sum();
        assert!(b.resolution.contains(res), "{res} in {:?}", b.resolution);
        assert!(b.carryover.contains(carry), "{carry} in {:?}", b.carryover);
        let m = bmp_core::metrics::ModelMetrics::from_analysis(
            &a,
            bmp_core::cpi::CpiStack {
                instructions: 0,
                base_cycles: 0.0,
                branch_cycles: 0.0,
                icache_cycles: 0.0,
                long_dmiss_cycles: 0.0,
            },
        );
        assert!(b.check_model(&m).is_empty(), "{:?}", b.check_model(&m));
    }

    #[test]
    fn check_model_flags_violations() {
        let (b, a) = bounds_for("twolf", 10_000, 2);
        let mut m = bmp_core::metrics::ModelMetrics::from_analysis(
            &a,
            bmp_core::cpi::CpiStack {
                instructions: 0,
                base_cycles: 0.0,
                branch_cycles: 0.0,
                icache_cycles: 0.0,
                long_dmiss_cycles: 0.0,
            },
        );
        m.base += 1;
        m.resolution = b.resolution.hi as u64 + 1;
        let v = b.check_model(&m);
        assert_eq!(v.len(), 2, "{v:?}");
        m.intervals += 1;
        assert_eq!(b.check_model(&m).len(), 1);
    }

    #[test]
    fn check_sim_envelope_and_refill() {
        let (b, _) = bounds_for("twolf", 10_000, 2);
        let n = 100u64;
        assert!(b
            .check_sim(n, n * b.per_branch_lo + 1, n * u64::from(b.frontend_depth))
            .is_empty());
        let v = b.check_sim(
            n,
            n * b.per_branch_hi + 1,
            n * u64::from(b.frontend_depth) + 1,
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn envelope_constants_for_baseline() {
        let cfg = presets::baseline_4wide();
        let (lo, hi) = per_branch_resolution_bounds(&cfg);
        assert_eq!(lo, 2, "1 + unit branch latency");
        // L = max(24, 2+12+200) = 214, O = 24, M = max(64, 128) = 128.
        assert_eq!(hi, 128 * (214 + 24 + 2) + 214);
    }

    #[test]
    fn empty_trace_bounds() {
        let cfg = presets::baseline_4wide();
        let b = compute(&cfg, &Trace::new());
        assert_eq!(b.intervals, 0);
        assert_eq!(b.resolution, Bound::exact(0));
        assert!(b.mean_penalty_point().is_none());
        assert_eq!(b.mean_critical_path, 0.0);
    }

    #[test]
    fn bound_arithmetic() {
        let b = Bound::ranged(2, 10, 20);
        assert!(b.contains(2) && b.contains(20) && !b.contains(21));
        assert!(!b.is_exact());
        assert!((b.rel_err(8) - 0.25).abs() < 1e-12);
        // Point clamps into the range.
        assert_eq!(Bound::ranged(5, 1, 9).point, 5);
        assert_eq!(Bound::exact(7).point, 7);
    }
}
