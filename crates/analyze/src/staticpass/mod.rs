//! Static interval analysis: proven bounds on the five penalty
//! contributors, computed without simulation.
//!
//! The rest of this crate lints artifacts the simulator or the model
//! already produced. This module goes the other way: starting from a
//! trace and a [`MachineConfig`] it *derives* what the five
//! contributors of the Eyerman/Smeets/Eeckhout decomposition are
//! allowed to be —
//!
//! * [`bounds`] walks the dependence graph of every inter-misprediction
//!   interval (the same closed-form interval schedule the analytical
//!   model uses, so the four knock-out terms and the refill come out
//!   *cycle-exact*) and derives a proven per-branch envelope for the
//!   whole-trace effective resolution, yielding a guaranteed
//!   lower/upper bound plus a point estimate per contributor;
//! * [`classify`] profiles every static branch site (taken-rate
//!   entropy, ideal-history accuracy at 0 and [`HISTORY_BITS`] bits of
//!   history, H2P flagging) and attributes the per-interval penalty
//!   terms to branch classes;
//! * [`lint`] packages both as the BMP6xx rule family: simulated
//!   contributor totals outside their statically proven bounds are
//!   hard lint errors.
//!
//! The derivations, the `base == 2` theorem and the envelope induction
//! are written out in `docs/STATIC_ANALYSIS.md`; the rule catalogue is
//! in `docs/ANALYZER.md`. The `bmp-verify` binary and
//! `bmp-lint --static` are the command-line entry points.
//!
//! # Examples
//!
//! ```
//! use bmp_analyze::staticpass;
//! use bmp_uarch::presets;
//! use bmp_workloads::spec;
//!
//! let trace = spec::by_name("gzip").unwrap().generate(4_000, 7);
//! let cfg = presets::baseline_4wide();
//! let a = staticpass::analyze_trace(&cfg, &trace);
//! // The four local knock-out terms are exact; the effective
//! // resolution carries a proven envelope around its point estimate.
//! assert!(a.bounds.base.is_exact());
//! assert!(a.bounds.resolution.lo <= a.bounds.resolution.point);
//! assert!(!a.sites.is_empty());
//! ```

pub mod bounds;
pub mod classify;
pub mod lint;

pub use bounds::{per_branch_resolution_bounds, Bound, StaticBounds};
pub use classify::{BranchClass, ClassAttribution, SiteProfile, HISTORY_BITS};
pub use lint::{lint_csv, lint_metrics_doc};

use bmp_trace::Trace;
use bmp_uarch::MachineConfig;

/// The combined static view of one (config, trace) pair.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// Bounds and point estimates for the five contributors.
    pub bounds: StaticBounds,
    /// Per-static-branch predictability profiles, by PC.
    pub sites: Vec<SiteProfile>,
    /// Penalty attribution per branch class.
    pub classes: Vec<ClassAttribution>,
}

/// Runs the full static pass: contributor bounds, per-site
/// classification, and per-class penalty attribution.
pub fn analyze_trace(cfg: &MachineConfig, trace: &Trace) -> StaticAnalysis {
    let bounds = bounds::compute(cfg, trace);
    let compiled = trace.compile();
    let sites = classify::classify(&compiled);
    let classes = classify::attribute(&sites, &bounds.interval_terms, cfg.frontend_depth);
    StaticAnalysis {
        bounds,
        sites,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::presets;
    use bmp_workloads::spec;

    #[test]
    fn full_pass_is_self_consistent() {
        let trace = spec::by_name("twolf").unwrap().generate(6_000, 3);
        let cfg = presets::baseline_4wide();
        let a = analyze_trace(&cfg, &trace);
        // Every interval's local resolution is attributed to exactly
        // one class.
        let attributed: u64 = a.classes.iter().map(|c| c.intervals).sum();
        assert_eq!(attributed, a.bounds.intervals);
        let local: u64 = a.classes.iter().map(|c| c.local_resolution).sum();
        assert_eq!(local as i64, a.bounds.local_resolution.point);
        let refill: u64 = a.classes.iter().map(|c| c.refill).sum();
        assert_eq!(refill as i64, a.bounds.refill.point);
    }
}
