//! Per-static-branch predictability classification and per-class
//! penalty attribution.
//!
//! Following the H2P literature ("Branch Prediction Is Not a Solved
//! Problem", "Workload Characterization for Branch Predictability"),
//! each conditional branch *site* (unique PC) is profiled from the
//! compiled trace's SoA payload arrays:
//!
//! * **taken-rate entropy** `H(p)` — how biased the site's direction is;
//! * **history-length sensitivity** — the accuracy gain of an *ideal*
//!   per-(site, history) table when the local-history length grows from
//!   0 to [`HISTORY_BITS`] bits: pattern-driven sites gain a lot,
//!   fundamentally hard sites gain little;
//! * **H2P flagging** — high-entropy sites that stay inaccurate even
//!   with history and execute often enough to matter.
//!
//! The class of each site then keys the penalty attribution: every
//! mispredicted-branch interval of the static bounds pass charges its
//! exact local resolution plus the frontend refill to the terminating
//! branch's class.

use std::collections::HashMap;

use bmp_trace::{sites, CompiledTrace};

/// Local-history length (in branch outcomes) used by the
/// history-sensitivity probe.
pub const HISTORY_BITS: u32 = 8;

/// Minimum dynamic executions before a site can be flagged
/// hard-to-predict (thin sites are statistically meaningless).
pub const H2P_MIN_EXECUTIONS: u64 = 16;

/// Predictability class of a branch site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchClass {
    /// Strongly biased (taken rate ≥ 95% or ≤ 5%): any predictor gets
    /// these right.
    Biased,
    /// History explains the direction: an ideal 8-bit-history table
    /// reaches ≥ 95% accuracy.
    Patterned,
    /// In between: partially history-predictable.
    Mixed,
    /// Hard to predict: high entropy and < 80% ideal-history accuracy
    /// despite enough executions — the H2P set.
    HardToPredict,
    /// Non-conditional control transfer (return / indirect jump /
    /// call): mispredicts come from the BTB/RAS, not the direction
    /// predictor.
    Indirect,
}

impl BranchClass {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            BranchClass::Biased => "biased",
            BranchClass::Patterned => "patterned",
            BranchClass::Mixed => "mixed",
            BranchClass::HardToPredict => "h2p",
            BranchClass::Indirect => "indirect",
        }
    }
}

/// The static profile of one branch site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteProfile {
    /// The site's PC.
    pub pc: u64,
    /// Dynamic executions.
    pub executions: u64,
    /// Fraction taken.
    pub taken_rate: f64,
    /// Direction entropy `H(p)` in bits (0 = fully biased, 1 = coin
    /// flip). 0 for non-conditional sites.
    pub entropy: f64,
    /// Ideal prediction accuracy with no history (always guess the
    /// majority direction).
    pub accuracy_h0: f64,
    /// Ideal prediction accuracy with [`HISTORY_BITS`] outcomes of
    /// local history.
    pub accuracy_h8: f64,
    /// `accuracy_h8 − accuracy_h0`: how much history explains.
    pub history_sensitivity: f64,
    /// The assigned class.
    pub class: BranchClass,
}

impl SiteProfile {
    /// Whether the site is flagged hard-to-predict.
    pub fn is_h2p(&self) -> bool {
        self.class == BranchClass::HardToPredict
    }
}

// Entropy and the ideal-history probe live in `bmp_trace::sites` (shared
// with the H2P scoring sweep); re-imported here for the classifier.
use bmp_trace::sites::{binary_entropy, ideal_history_accuracy};

/// Classifies every branch site of `trace`.
///
/// Sites are returned in increasing PC order; non-conditional sites get
/// [`BranchClass::Indirect`] with degenerate direction statistics.
pub fn classify(trace: &CompiledTrace) -> Vec<SiteProfile> {
    let seqs: HashMap<u64, Vec<bool>> = sites::conditional_outcome_sequences(trace)
        .into_iter()
        .collect();
    sites::branch_sites(trace)
        .into_iter()
        .map(|s| {
            if !s.kind.is_conditional() {
                return SiteProfile {
                    pc: s.pc,
                    executions: s.executions,
                    taken_rate: s.taken_rate(),
                    entropy: 0.0,
                    accuracy_h0: 1.0,
                    accuracy_h8: 1.0,
                    history_sensitivity: 0.0,
                    class: BranchClass::Indirect,
                };
            }
            let rate = s.taken_rate();
            let entropy = binary_entropy(rate);
            let outcomes = seqs.get(&s.pc).map(Vec::as_slice).unwrap_or(&[]);
            let acc0 = ideal_history_accuracy(outcomes, 0);
            let acc8 = ideal_history_accuracy(outcomes, HISTORY_BITS);
            let class = if !(0.05..=0.95).contains(&rate) {
                BranchClass::Biased
            } else if acc8 < 0.8 && s.executions >= H2P_MIN_EXECUTIONS {
                BranchClass::HardToPredict
            } else if acc8 >= 0.95 {
                BranchClass::Patterned
            } else {
                BranchClass::Mixed
            };
            SiteProfile {
                pc: s.pc,
                executions: s.executions,
                taken_rate: rate,
                entropy,
                accuracy_h0: acc0,
                accuracy_h8: acc8,
                history_sensitivity: acc8 - acc0,
                class,
            }
        })
        .collect()
}

/// Penalty charged to one branch class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassAttribution {
    /// The class.
    pub class: BranchClass,
    /// Static sites in the class.
    pub sites: u64,
    /// Mispredicted-branch intervals terminated by a site of this
    /// class.
    pub intervals: u64,
    /// Exact local-resolution cycles charged to the class.
    pub local_resolution: u64,
    /// Frontend-refill cycles charged (`intervals × depth`).
    pub refill: u64,
}

impl ClassAttribution {
    /// Total cycles charged (local resolution + refill).
    pub fn total(&self) -> u64 {
        self.local_resolution + self.refill
    }
}

/// Distributes the static pass's per-interval local resolutions over
/// branch classes. `terms` is
/// [`StaticBounds::interval_terms`](super::StaticBounds::interval_terms);
/// mispredicted PCs missing from `profiles` (impossible for a
/// self-consistent trace) fall into [`BranchClass::Indirect`].
///
/// Returns one row per class that has sites or charged intervals, in
/// class order.
pub fn attribute(
    profiles: &[SiteProfile],
    terms: &[(u64, u64)],
    frontend_depth: u32,
) -> Vec<ClassAttribution> {
    let class_of: HashMap<u64, BranchClass> = profiles.iter().map(|p| (p.pc, p.class)).collect();
    let mut rows: HashMap<BranchClass, ClassAttribution> = HashMap::new();
    for p in profiles {
        let e = rows.entry(p.class).or_insert(ClassAttribution {
            class: p.class,
            sites: 0,
            intervals: 0,
            local_resolution: 0,
            refill: 0,
        });
        e.sites += 1;
    }
    for &(pc, local) in terms {
        let class = class_of.get(&pc).copied().unwrap_or(BranchClass::Indirect);
        let e = rows.entry(class).or_insert(ClassAttribution {
            class,
            sites: 0,
            intervals: 0,
            local_resolution: 0,
            refill: 0,
        });
        e.intervals += 1;
        e.local_resolution += local;
        e.refill += u64::from(frontend_depth);
    }
    let mut out: Vec<ClassAttribution> = rows.into_values().collect();
    out.sort_by_key(|r| r.class);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::{BranchKind, MicroOp, Trace};

    fn branch(pc: u64, taken: bool) -> MicroOp {
        MicroOp::branch(pc, BranchKind::Conditional, taken, pc + 0x40, [None, None])
    }

    fn compiled(ops: Vec<MicroOp>) -> CompiledTrace {
        ops.into_iter().collect::<Trace>().compile()
    }

    #[test]
    fn biased_patterned_and_h2p_sites() {
        let mut ops = Vec::new();
        // PC 0x10: always taken — biased.
        // PC 0x20: alternating — fully history-predictable.
        // PC 0x30: pseudo-random — hard.
        // Enough samples that each of the 2^8 history contexts is seen
        // many times — with too few, an ideal majority table memorizes
        // any sequence and the probe reports false predictability.
        let mut lcg = 12345u64;
        for i in 0..4096 {
            ops.push(branch(0x10, true));
            ops.push(branch(0x20, i % 2 == 0));
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ops.push(branch(0x30, (lcg >> 33) & 1 == 1));
        }
        let profiles = classify(&compiled(ops));
        assert_eq!(profiles.len(), 3);
        assert_eq!(profiles[0].class, BranchClass::Biased);
        assert_eq!(profiles[0].entropy, 0.0);
        assert_eq!(profiles[1].class, BranchClass::Patterned);
        assert!(
            profiles[1].history_sensitivity > 0.4,
            "alternation is explained by history: {:?}",
            profiles[1]
        );
        assert_eq!(profiles[2].class, BranchClass::HardToPredict);
        assert!(profiles[2].is_h2p());
        assert!(profiles[2].entropy > 0.9);
        assert!(profiles[2].history_sensitivity < 0.3);
    }

    #[test]
    fn indirect_sites_are_separate() {
        let ops = vec![
            MicroOp::branch(0x50, BranchKind::IndirectJump, true, 0x100, [None, None]),
            MicroOp::branch(0x50, BranchKind::IndirectJump, true, 0x200, [None, None]),
        ];
        let profiles = classify(&compiled(ops));
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].class, BranchClass::Indirect);
    }

    #[test]
    fn thin_random_sites_are_not_h2p() {
        // 4 executions of a coin flip: too thin to flag.
        let ops = vec![
            branch(0x10, true),
            branch(0x10, false),
            branch(0x10, true),
            branch(0x10, false),
        ];
        let profiles = classify(&compiled(ops));
        assert_ne!(profiles[0].class, BranchClass::HardToPredict);
    }

    #[test]
    fn attribution_charges_classes() {
        let mut ops = Vec::new();
        for _ in 0..64 {
            ops.push(branch(0x10, true));
        }
        let profiles = classify(&compiled(ops));
        let terms = vec![(0x10u64, 12u64), (0x10, 8), (0x99, 5)];
        let rows = attribute(&profiles, &terms, 5);
        let biased = rows
            .iter()
            .find(|r| r.class == BranchClass::Biased)
            .unwrap();
        assert_eq!(biased.sites, 1);
        assert_eq!(biased.intervals, 2);
        assert_eq!(biased.local_resolution, 20);
        assert_eq!(biased.refill, 10);
        assert_eq!(biased.total(), 30);
        // Unknown PC falls into the indirect bucket.
        let ind = rows
            .iter()
            .find(|r| r.class == BranchClass::Indirect)
            .unwrap();
        assert_eq!(ind.intervals, 1);
        assert_eq!(ind.local_resolution, 5);
    }

    #[test]
    fn ideal_accuracy_probe() {
        let alternating: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        assert!(ideal_history_accuracy(&alternating, 0) <= 0.5 + 1e-9);
        assert!(ideal_history_accuracy(&alternating, 1) > 0.95);
        let constant = vec![true; 64];
        assert_eq!(ideal_history_accuracy(&constant, 0), 1.0);
        assert_eq!(ideal_history_accuracy(&[], 8), 1.0);
    }

    #[test]
    fn entropy_shape() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.1) < binary_entropy(0.3));
    }
}
