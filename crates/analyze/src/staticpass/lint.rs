//! The BMP6xx rule family: cross-checking simulator outputs against
//! statically proven bounds.
//!
//! Every other lint family in this crate checks *internal* consistency
//! of one artifact. BMP6xx is different: it recomputes, from nothing
//! but the workload recipe and the machine configuration, hard bounds
//! on the five penalty contributors (see
//! [`super::bounds`] and `docs/STATIC_ANALYSIS.md`), then demands that
//! simulated results — metrics documents under `results/metrics/` and
//! the published CSV tables under `results/` — fall inside them. A
//! simulated contributor total outside its proven bound is a hard
//! error: either the simulator, the model, or the static pass is
//! wrong, and all three claim to describe the same machine.
//!
//! | code   | severity | meaning                                         |
//! |--------|----------|-------------------------------------------------|
//! | BMP601 | error    | model contributor total differs from the static recomputation (must be cycle-exact) |
//! | BMP602 | error    | model resolution/carryover total outside the proven envelope |
//! | BMP603 | error    | simulator resolution/refill totals violate the envelope or the refill identity |
//! | BMP604 | info     | workload/config not statically reproducible — bounds not checked |
//! | BMP605 | error    | published CSV value violates a static identity or bound |
//! | BMP606 | error    | input not parseable in the documented shape     |
//!
//! CSV checks are keyed on the exact header line, so renaming a column
//! is loud (the file silently stops being checked only if the header
//! no longer matches any registered experiment — `bmp-verify` reports
//! coverage). All CSV checks are scale-free: they hold at any
//! `BMP_OPS`/`BMP_SEED`, because they are identities and bounds, not
//! golden values.

use bmp_core::metrics::ExperimentMetrics;
use bmp_uarch::{presets, MachineConfig};
use bmp_workloads::spec;

use super::bounds::{self, StaticBounds};
use crate::diag::{AnalysisReport, Diagnostic};

/// Tolerance for a single CSV value printed with two decimals.
const EPS_VAL: f64 = 0.011;
/// Tolerance for a sum of up to seven two-decimal CSV values.
const EPS_SUM: f64 = 0.051;
/// Slack for one-sided (`>=`) bound checks on two-decimal values.
const EPS_GE: f64 = 0.006;

/// Recomputes static bounds for one workload of a metrics document, if
/// the workload is reproducible from the registry (same generator,
/// `ops` and `seed` as the run that wrote the document; the metrics
/// contract pins the machine to `cfg`).
pub fn static_bounds_for(
    workload: &str,
    ops: u64,
    seed: u64,
    cfg: &MachineConfig,
) -> Option<StaticBounds> {
    let profile = spec::by_name(workload)?;
    let trace = profile.generate(ops as usize, seed);
    Some(bounds::compute(cfg, &trace))
}

/// Lints one metrics document (the JSON written under
/// `results/metrics/`) against statically proven bounds.
///
/// `locus` is the path shown in diagnostics. The machine is assumed to
/// be the baseline preset (the metrics contract in
/// `docs/OBSERVABILITY.md`); workloads recorded with a different
/// frontend depth are visibly skipped via BMP604 rather than checked
/// against the wrong envelope.
pub fn lint_metrics_doc(locus: &str, content: &str) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let doc = match ExperimentMetrics::parse(content) {
        Ok(doc) => doc,
        Err(e) => {
            report.diagnostics.push(Diagnostic::error(
                "BMP606",
                locus,
                format!("not a parseable metrics document: {e}"),
            ));
            return report;
        }
    };
    let cfg = presets::baseline_4wide();
    let (per_lo, per_hi) = bounds::per_branch_resolution_bounds(&cfg);
    for w in &doc.workloads {
        let locus = format!("{locus}: workload {}", w.workload);
        // Simulator side: the refill identity is internal to the
        // document (count × recorded depth) and always checked.
        let n = w.intervals.bmiss;
        if w.refill_total != n * u64::from(w.frontend_depth) {
            report.diagnostics.push(Diagnostic::error(
                "BMP603",
                &locus,
                format!(
                    "sim refill total {} != {} branch intervals × frontend depth {}",
                    w.refill_total, n, w.frontend_depth
                ),
            ));
        }
        // The resolution envelope is per-machine; only apply it when
        // the recorded depth matches the contract's baseline preset.
        if w.frontend_depth == cfg.frontend_depth {
            let (lo, hi) = (n * per_lo, n * per_hi);
            if w.resolution_total < lo || w.resolution_total > hi {
                report.diagnostics.push(Diagnostic::error(
                    "BMP603",
                    &locus,
                    format!(
                        "sim resolution total {} outside proven envelope \
                         [{lo}, {hi}] for {n} branch intervals",
                        w.resolution_total
                    ),
                ));
            }
        } else {
            report.diagnostics.push(
                Diagnostic::info(
                    "BMP604",
                    &locus,
                    format!(
                        "recorded frontend depth {} differs from the baseline \
                         preset ({}) — sim resolution envelope not checked",
                        w.frontend_depth, cfg.frontend_depth
                    ),
                )
                .with_suggestion("non-baseline runs are outside the metrics contract"),
            );
        }
        // Model side: regenerate the trace and demand cycle-exact
        // agreement on the local contributors, envelopes on the rest.
        let Some(m) = &w.model else { continue };
        match static_bounds_for(&w.workload, doc.ops, doc.seed, &cfg) {
            None => report.diagnostics.push(
                Diagnostic::info(
                    "BMP604",
                    &locus,
                    format!(
                        "workload {:?} is not in the registry — model totals \
                         not statically checked",
                        w.workload
                    ),
                )
                .with_suggestion("register the workload in bmp-workloads::spec"),
            ),
            Some(b) => {
                for msg in b.check_model_exact(m) {
                    report
                        .diagnostics
                        .push(Diagnostic::error("BMP601", &locus, msg));
                }
                if m.intervals == b.intervals {
                    for msg in b.check_model_envelope(m) {
                        report
                            .diagnostics
                            .push(Diagnostic::error("BMP602", &locus, msg));
                    }
                }
            }
        }
    }
    report
}

/// The CSV experiments with registered static checks, keyed by their
/// exact header line.
enum CsvChecks {
    /// `fig2_penalty_per_benchmark.csv`.
    Fig2,
    /// `fig3_penalty_vs_interval.csv`.
    Fig3,
    /// `fig5_contributor_breakdown.csv`.
    Fig5,
    /// `fig6_pipeline_depth.csv`.
    Fig6,
    /// `fig7_fu_latency.csv`.
    Fig7,
    /// `fig8_ilp.csv`.
    Fig8,
    /// `fig9_l1d_misses.csv`.
    Fig9,
    /// `fig10_model_validation.csv`.
    Fig10,
    /// `ex2_window_sweep.csv`.
    Ex2,
    /// `ex3_closed_form.csv`.
    Ex3,
}

impl CsvChecks {
    fn from_header(header: &str) -> Option<(Self, usize)> {
        Some(match header {
            "benchmark,measured-penalty,two-run-penalty,model-penalty,frontend-depth,measured-resolution" => (Self::Fig2, 6),
            "benchmark,interval-bucket-lo,n-measured,measured-resolution,model-local-resolution,model-effective-resolution" => (Self::Fig3, 6),
            "benchmark,frontend(i),base,ilp(iii),fu-latency(iv),short-dmiss(v),carryover(ii),total-penalty" => (Self::Fig5, 8),
            "benchmark,frontend-depth,measured-penalty,measured-resolution,model-penalty,IPC" => (Self::Fig6, 6),
            "workload,latency-scale,measured-resolution,model-resolution,model-fu-share(iv)" => (Self::Fig7, 5),
            "chain-length,measured-resolution,model-resolution,model-ilp-share(iii)" => (Self::Fig8, 4),
            "l1d-size-KiB,l1d-miss-rate,measured-resolution,model-resolution,model-short-dmiss-share(v)" => (Self::Fig9, 5),
            "benchmark,events-agree,sim-resolution,model-resolution,resolution-err,correlation,sim-CPI,stack-CPI,sched-CPI" => (Self::Fig10, 9),
            "benchmark,window,rob,measured-resolution,model-resolution,IPC" => (Self::Ex2, 6),
            "benchmark,sim-effective,model-effective,model-local,closed-form,closed-form-err-vs-local" => (Self::Ex3, 6),
            _ => return None,
        })
    }
}

/// One CSV row under scrutiny; accumulates diagnostics for its line.
struct Row<'a> {
    locus: String,
    cells: &'a [&'a str],
    diags: &'a mut Vec<Diagnostic>,
}

impl Row<'_> {
    /// Numeric value of column `i`, or `None` with a BMP606 emitted.
    fn num(&mut self, i: usize) -> Option<f64> {
        match self.cells[i].trim().parse::<f64>() {
            Ok(v) if v.is_finite() => Some(v),
            _ => {
                self.diags.push(Diagnostic::error(
                    "BMP606",
                    &self.locus,
                    format!(
                        "column {} is not a finite number: {:?}",
                        i + 1,
                        self.cells[i]
                    ),
                ));
                None
            }
        }
    }

    fn violation(&mut self, message: String) {
        self.diags
            .push(Diagnostic::error("BMP605", &self.locus, message));
    }

    /// `value >= bound - EPS_GE`, else a BMP605 naming the rule.
    fn check_ge(&mut self, name: &str, value: f64, bound: f64, rule: &str) {
        if value < bound - EPS_GE {
            self.violation(format!(
                "{name} = {value} violates {name} >= {bound} ({rule})"
            ));
        }
    }

    /// `value` within `[lo, hi]` (small slack), else a BMP605.
    fn check_range(&mut self, name: &str, value: f64, lo: f64, hi: f64) {
        if value < lo - 1e-3 || value > hi + 1e-3 {
            self.violation(format!("{name} = {value} outside [{lo}, {hi}]"));
        }
    }

    /// `|got - want| <= eps`, else a BMP605 naming the identity.
    fn check_eq(&mut self, got: f64, want: f64, eps: f64, rule: &str) {
        if (got - want).abs() > eps {
            self.violation(format!(
                "{rule}: got {got}, expected {want} (tolerance {eps})"
            ));
        }
    }
}

/// Mean per-branch resolution lower bound: dispatch-to-issue plus
/// issue-to-done is at least one cycle each (`docs/STATIC_ANALYSIS.md`).
const MIN_RESOLUTION: f64 = 2.0;

fn check_row(kind: &CsvChecks, row: &mut Row<'_>) -> Option<()> {
    match kind {
        CsvChecks::Fig2 => {
            let mp = row.num(1)?;
            let model = row.num(3)?;
            let depth = row.num(4)?;
            let mr = row.num(5)?;
            row.check_eq(
                mp - mr,
                depth,
                EPS_VAL,
                "measured penalty − resolution == frontend depth",
            );
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-penalty",
                model,
                depth + MIN_RESOLUTION,
                "penalty >= depth + 2",
            );
        }
        CsvChecks::Fig6 => {
            let depth = row.num(1)?;
            let mp = row.num(2)?;
            let mr = row.num(3)?;
            let model = row.num(4)?;
            let ipc = row.num(5)?;
            row.check_eq(
                mp - mr,
                depth,
                EPS_VAL,
                "measured penalty − resolution == frontend depth",
            );
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-penalty",
                model,
                depth + MIN_RESOLUTION,
                "penalty >= depth + 2",
            );
            row.check_range("IPC", ipc, 1e-6, f64::INFINITY);
        }
        CsvChecks::Fig5 => {
            let fe = row.num(1)?;
            let base = row.num(2)?;
            let ilp = row.num(3)?;
            let fu = row.num(4)?;
            let sd = row.num(5)?;
            let co = row.num(6)?;
            let total = row.num(7)?;
            row.check_eq(base, 2.0, EPS_VAL, "mean base contribution == 2 cycles");
            row.check_ge("frontend(i)", fe, 1.0, "refill >= 1");
            row.check_ge("ilp(iii)", ilp, 0.0, "knock-out terms are non-negative");
            row.check_ge(
                "fu-latency(iv)",
                fu,
                0.0,
                "knock-out terms are non-negative",
            );
            row.check_ge(
                "short-dmiss(v)",
                sd,
                0.0,
                "knock-out terms are non-negative",
            );
            row.check_eq(
                fe + base + ilp + fu + sd + co,
                total,
                EPS_SUM,
                "contributors sum to total penalty",
            );
            if total < fe + MIN_RESOLUTION - EPS_SUM {
                row.violation(format!(
                    "total-penalty = {total} below frontend + 2 = {}",
                    fe + MIN_RESOLUTION
                ));
            }
        }
        CsvChecks::Fig10 => {
            let agree = row.num(1)?;
            let sim_r = row.num(2)?;
            let model_r = row.num(3)?;
            let corr = row.num(5)?;
            let sim_cpi = row.num(6)?;
            let stack_cpi = row.num(7)?;
            let sched_cpi = row.num(8)?;
            row.check_range("events-agree", agree, 0.0, 1.0);
            row.check_range("correlation", corr, -1.0, 1.0);
            row.check_ge("sim-resolution", sim_r, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model_r, MIN_RESOLUTION, "r >= 2");
            for (name, v) in [
                ("sim-CPI", sim_cpi),
                ("stack-CPI", stack_cpi),
                ("sched-CPI", sched_cpi),
            ] {
                row.check_range(name, v, 1e-6, f64::INFINITY);
            }
        }
        CsvChecks::Ex3 => {
            let sim = row.num(1)?;
            let model = row.num(2)?;
            let local = row.num(3)?;
            let closed = row.num(4)?;
            row.check_ge("sim-effective", sim, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-effective", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-local", local, MIN_RESOLUTION, "r >= 2");
            row.check_range("closed-form", closed, 1e-6, f64::INFINITY);
        }
        CsvChecks::Fig3 => {
            let n = row.num(2)?;
            row.check_ge("n-measured", n, 0.0, "counts are non-negative");
            for (name, col) in [
                ("measured-resolution", 3),
                ("model-local-resolution", 4),
                ("model-effective-resolution", 5),
            ] {
                let v = row.num(col)?;
                // An empty bucket legitimately reports 0; a populated
                // one must respect the per-branch floor.
                if v > EPS_GE && v < MIN_RESOLUTION - EPS_GE {
                    row.violation(format!(
                        "{name} = {v} in (0, 2): below the resolution floor"
                    ));
                }
            }
        }
        CsvChecks::Ex2 => {
            let window = row.num(1)?;
            let rob = row.num(2)?;
            let mr = row.num(3)?;
            let model = row.num(4)?;
            let ipc = row.num(5)?;
            row.check_ge("window", window, 1.0, "sizes are positive");
            row.check_ge("rob", rob, 1.0, "sizes are positive");
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_range("IPC", ipc, 1e-6, f64::INFINITY);
        }
        CsvChecks::Fig7 => {
            let scale = row.num(1)?;
            let mr = row.num(2)?;
            let model = row.num(3)?;
            let share = row.num(4)?;
            row.check_range("latency-scale", scale, 1e-6, f64::INFINITY);
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-fu-share(iv)",
                share,
                0.0,
                "knock-out terms are non-negative",
            );
        }
        CsvChecks::Fig8 => {
            let chain = row.num(0)?;
            let mr = row.num(1)?;
            let model = row.num(2)?;
            let ilp = row.num(3)?;
            row.check_ge("chain-length", chain, 1.0, "chains have at least one op");
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-ilp-share(iii)",
                ilp,
                0.0,
                "knock-out terms are non-negative",
            );
            row.check_ge(
                "model-resolution",
                model,
                ilp + MIN_RESOLUTION - EPS_SUM,
                "resolution >= ilp share + 2",
            );
        }
        CsvChecks::Fig9 => {
            let rate = row.num(1)?;
            let mr = row.num(2)?;
            let model = row.num(3)?;
            let share = row.num(4)?;
            row.check_range("l1d-miss-rate", rate, 0.0, 1.0);
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-short-dmiss-share(v)",
                share,
                0.0,
                "knock-out terms are non-negative",
            );
        }
    }
    Some(())
}

/// Lints one published CSV table against the registered static checks
/// for its header. Unregistered headers (tables whose columns carry no
/// statically checkable identity, e.g. `table1_config.csv`) produce a
/// clean report.
pub fn lint_csv(locus: &str, content: &str) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let mut lines = content.lines();
    let Some(header) = lines.next() else {
        return report;
    };
    let Some((kind, cols)) = CsvChecks::from_header(header.trim()) else {
        return report;
    };
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        let locus = format!("{locus}:{}", i + 2);
        if cells.len() != cols {
            report.diagnostics.push(Diagnostic::error(
                "BMP606",
                &locus,
                format!("expected {cols} columns, found {}", cells.len()),
            ));
            continue;
        }
        let mut row = Row {
            locus,
            cells: &cells,
            diags: &mut report.diagnostics,
        };
        check_row(&kind, &mut row);
    }
    report
}

/// Whether a CSV header line has registered BMP6xx checks — used by
/// `bmp-verify` to report coverage.
pub fn csv_header_registered(header: &str) -> bool {
    CsvChecks::from_header(header.trim()).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use bmp_core::metrics::{ModelMetrics, WorkloadMetrics};
    use bmp_core::penalty::PenaltyModel;

    fn codes(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    /// A metrics document whose model section is the real analysis of
    /// the regenerable `gzip` trace and whose sim section satisfies
    /// the envelope.
    fn consistent_doc() -> ExperimentMetrics {
        let cfg = presets::baseline_4wide();
        let ops = 6_000u64;
        let seed = 7u64;
        let trace = spec::by_name("gzip").unwrap().generate(ops as usize, seed);
        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let stack = bmp_core::cpi::predict(&trace, &cfg);
        let records = bmp_core::accounting::records_from_analysis(&analysis);
        let mut w = WorkloadMetrics::from_records(
            "gzip",
            trace.len() as u64,
            10_000,
            analysis.frontend_depth,
            analysis.breakdowns.len() as u64,
            &records,
        );
        w.model = Some(ModelMetrics::from_analysis(&analysis, stack));
        let mut doc = ExperimentMetrics::new("test", ops, seed);
        doc.workloads.push(w);
        doc
    }

    #[test]
    fn consistent_metrics_doc_is_clean() {
        let doc = consistent_doc();
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn corrupted_model_total_is_bmp601() {
        let mut doc = consistent_doc();
        doc.workloads[0].model.as_mut().unwrap().ilp += 1;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(
            codes(&report).contains(&"BMP601"),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn out_of_envelope_model_resolution_is_bmp602() {
        let mut doc = consistent_doc();
        let m = doc.workloads[0].model.as_mut().unwrap();
        // Push resolution far past the per-branch upper bound while
        // keeping the exact (local) totals untouched.
        m.resolution += m.intervals * 1_000_000;
        m.carryover += (m.intervals * 1_000_000) as i64;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let c = codes(&report);
        assert!(c.contains(&"BMP602"), "{}", report.render_human());
        assert!(!c.contains(&"BMP601"), "{}", report.render_human());
    }

    #[test]
    fn broken_sim_refill_and_envelope_are_bmp603() {
        let mut doc = consistent_doc();
        doc.workloads[0].refill_total += 3;
        doc.workloads[0].resolution_total = 1; // below n × per-branch lo
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let c = codes(&report);
        assert_eq!(
            c.iter().filter(|&&c| c == "BMP603").count(),
            2,
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn unknown_workload_is_bmp604_info_only() {
        let mut doc = consistent_doc();
        doc.workloads[0].workload = "no-such-workload".into();
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(codes(&report).contains(&"BMP604"));
        assert_eq!(report.error_count(), 0, "{}", report.render_human());
        assert_eq!(report.worst(), Some(Severity::Info));
    }

    #[test]
    fn non_baseline_depth_skips_envelope_with_bmp604() {
        let mut doc = consistent_doc();
        let w = &mut doc.workloads[0];
        w.model = None;
        w.frontend_depth += 1; // refill identity updated to stay internally consistent
        w.refill_total = w.intervals.bmiss * u64::from(w.frontend_depth);
        w.resolution_total = 1; // would violate the envelope if checked
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let c = codes(&report);
        assert!(c.contains(&"BMP604"));
        assert!(!c.contains(&"BMP603"), "{}", report.render_human());
    }

    #[test]
    fn garbage_metrics_is_bmp606() {
        let report = lint_metrics_doc("m.json", "{ not json");
        assert_eq!(codes(&report), vec!["BMP606"]);
    }

    #[test]
    fn real_result_csvs_pass() {
        // The seed repo's published tables must satisfy every
        // registered static check.
        for name in [
            "fig2_penalty_per_benchmark",
            "fig5_contributor_breakdown",
            "fig8_ilp",
        ] {
            let path = format!("{}/../../results/{name}.csv", env!("CARGO_MANIFEST_DIR"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                let report = lint_csv(&format!("{name}.csv"), &text);
                assert!(report.is_clean(), "{name}: {}", report.render_human());
            }
        }
    }

    #[test]
    fn fig5_base_violation_is_bmp605() {
        let csv = "benchmark,frontend(i),base,ilp(iii),fu-latency(iv),short-dmiss(v),carryover(ii),total-penalty\n\
                   gzip,5.00,3.00,0.94,1.02,1.35,9.39,20.70\n";
        let report = lint_csv("fig5.csv", csv);
        assert!(
            codes(&report).contains(&"BMP605"),
            "{}",
            report.render_human()
        );
        assert!(report.render_human().contains("base"));
    }

    #[test]
    fn fig5_sum_violation_is_bmp605() {
        let csv = "benchmark,frontend(i),base,ilp(iii),fu-latency(iv),short-dmiss(v),carryover(ii),total-penalty\n\
                   gzip,5.00,2.00,0.94,1.02,1.35,10.38,25.00\n";
        let report = lint_csv("fig5.csv", csv);
        assert!(codes(&report).contains(&"BMP605"));
    }

    #[test]
    fn fig2_depth_identity_violation_is_bmp605() {
        let csv = "benchmark,measured-penalty,two-run-penalty,model-penalty,frontend-depth,measured-resolution\n\
                   gzip,21.00,11.30,20.70,5,15.00\n";
        let report = lint_csv("fig2.csv", csv);
        assert!(codes(&report).contains(&"BMP605"));
    }

    #[test]
    fn malformed_row_is_bmp606() {
        let csv = "benchmark,window,rob,measured-resolution,model-resolution,IPC\n\
                   twolf,16,32,eleven,10.61,0.534\n\
                   twolf,16,32\n";
        let report = lint_csv("ex2.csv", csv);
        assert_eq!(
            codes(&report).iter().filter(|&&c| c == "BMP606").count(),
            2,
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn unknown_header_is_skipped_silently() {
        let report = lint_csv("x.csv", "a,b,c\n1,2,oops\n");
        assert!(report.is_clean());
        assert!(!csv_header_registered("a,b,c"));
        assert!(csv_header_registered(
            "chain-length,measured-resolution,model-resolution,model-ilp-share(iii)"
        ));
    }
}
