//! The BMP6xx rule family: cross-checking simulator outputs against
//! statically proven bounds.
//!
//! Every other lint family in this crate checks *internal* consistency
//! of one artifact. BMP6xx is different: it recomputes, from nothing
//! but the workload recipe and the machine configuration, hard bounds
//! on the five penalty contributors (see
//! [`super::bounds`] and `docs/STATIC_ANALYSIS.md`), then demands that
//! simulated results — metrics documents under `results/metrics/` and
//! the published CSV tables under `results/` — fall inside them. A
//! simulated contributor total outside its proven bound is a hard
//! error: either the simulator, the model, or the static pass is
//! wrong, and all three claim to describe the same machine.
//!
//! | code   | severity | meaning                                         |
//! |--------|----------|-------------------------------------------------|
//! | BMP601 | error    | model contributor total differs from the static recomputation (must be cycle-exact) |
//! | BMP602 | error    | model resolution/carryover total outside the proven envelope |
//! | BMP603 | error    | simulator resolution/refill totals violate the envelope or the refill identity |
//! | BMP604 | info     | workload/config not statically reproducible — bounds not checked |
//! | BMP605 | error    | published CSV value violates a static identity or bound |
//! | BMP606 | error    | input not parseable in the documented shape     |
//! | BMP700 | error    | unknown branch-class or predictor label         |
//! | BMP701 | error    | per-class attribution violates an exact integer identity |
//!
//! Workloads recorded under a non-baseline predictor (the metrics v2
//! `predictor` field) are checked against bounds recomputed for *that*
//! predictor when the name is one of the registered generations
//! ([`bmp_uarch::presets::generation_machine`]); any other name is
//! visibly skipped via BMP604. The BMP70x rules check the v2 per-class
//! penalty attribution (`branch_classes` and the
//! `ex_h2p_contributors.csv` table): class labels must come from the
//! classifier's closed set, and the per-class cycle columns are exact
//! integers, so their additive identities are checked with zero
//! tolerance.
//!
//! CSV checks are keyed on the exact header line, so renaming a column
//! is loud (the file silently stops being checked only if the header
//! no longer matches any registered experiment — `bmp-verify` reports
//! coverage). All CSV checks are scale-free: they hold at any
//! `BMP_OPS`/`BMP_SEED`, because they are identities and bounds, not
//! golden values.

use bmp_core::metrics::{ExperimentMetrics, WorkloadMetrics};
use bmp_uarch::{presets, MachineConfig};
use bmp_workloads::spec;

use super::bounds::{self, StaticBounds};
use super::classify::BranchClass;
use crate::diag::{AnalysisReport, Diagnostic};

/// The classifier's closed label set; anything else in a `class` column
/// or `branch_classes` entry is a BMP700.
const CLASS_LABELS: [BranchClass; 5] = [
    BranchClass::Biased,
    BranchClass::Patterned,
    BranchClass::Mixed,
    BranchClass::HardToPredict,
    BranchClass::Indirect,
];

fn known_class_label(label: &str) -> bool {
    CLASS_LABELS.iter().any(|c| c.label() == label)
}

/// Tolerance for a single CSV value printed with two decimals.
const EPS_VAL: f64 = 0.011;
/// Tolerance for a sum of up to seven two-decimal CSV values.
const EPS_SUM: f64 = 0.051;
/// Slack for one-sided (`>=`) bound checks on two-decimal values.
const EPS_GE: f64 = 0.006;

/// Recomputes static bounds for one workload of a metrics document, if
/// the workload is reproducible — a statistical profile from the
/// registry or an executed RV32IM kernel from the `bmp-isa` suite (same
/// generator/executor, `ops` and `seed` as the run that wrote the
/// document; the metrics contract pins the machine to `cfg`).
pub fn static_bounds_for(
    workload: &str,
    ops: u64,
    seed: u64,
    cfg: &MachineConfig,
) -> Option<StaticBounds> {
    let trace = match spec::by_name(workload) {
        Some(profile) => profile.generate(ops as usize, seed),
        None => bmp_isa::kernel_trace(workload, ops as usize, seed)?,
    };
    Some(bounds::compute(cfg, &trace))
}

/// Lints one metrics document (the JSON written under
/// `results/metrics/`) against statically proven bounds.
///
/// `locus` is the path shown in diagnostics. The machine is assumed to
/// be the baseline preset (the metrics contract in
/// `docs/OBSERVABILITY.md`); workloads recorded with a different
/// frontend depth are visibly skipped via BMP604 rather than checked
/// against the wrong envelope.
pub fn lint_metrics_doc(locus: &str, content: &str) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let doc = match ExperimentMetrics::parse(content) {
        Ok(doc) => doc,
        Err(e) => {
            report.diagnostics.push(Diagnostic::error(
                "BMP606",
                locus,
                format!("not a parseable metrics document: {e}"),
            ));
            return report;
        }
    };
    let cfg = presets::baseline_4wide();
    for w in &doc.workloads {
        let locus = if w.predictor.is_empty() {
            format!("{locus}: workload {}", w.workload)
        } else {
            format!("{locus}: workload {}[{}]", w.workload, w.predictor)
        };
        // Resolve the machine the entry was recorded under: the
        // baseline preset (v1 documents leave `predictor` empty; the
        // baseline's own name is also accepted), or the baseline with a
        // registered generation predictor swapped in. Anything else is
        // outside the static pass's vocabulary and is skipped loudly.
        let wcfg = if w.predictor.is_empty() || w.predictor == cfg.predictor.name() {
            Some(cfg.clone())
        } else {
            presets::generation_machine(&w.predictor)
        };
        lint_class_attribution(&mut report, &locus, w);
        // Simulator side: the refill identity is internal to the
        // document (count × recorded depth) and always checked.
        let n = w.intervals.bmiss;
        if w.refill_total != n * u64::from(w.frontend_depth) {
            report.diagnostics.push(Diagnostic::error(
                "BMP603",
                &locus,
                format!(
                    "sim refill total {} != {} branch intervals × frontend depth {}",
                    w.refill_total, n, w.frontend_depth
                ),
            ));
        }
        let Some(wcfg) = wcfg else {
            report.diagnostics.push(
                Diagnostic::info(
                    "BMP604",
                    &locus,
                    format!(
                        "recorded predictor {:?} is neither the baseline nor a \
                         registered generation — static bounds not checked",
                        w.predictor
                    ),
                )
                .with_suggestion("register the predictor in bmp_uarch::presets::GENERATIONS"),
            );
            continue;
        };
        // The resolution envelope is per-machine; only apply it when
        // the recorded depth matches the reconstructed machine's.
        if w.frontend_depth == wcfg.frontend_depth {
            let (per_lo, per_hi) = bounds::per_branch_resolution_bounds(&wcfg);
            let (lo, hi) = (n * per_lo, n * per_hi);
            if w.resolution_total < lo || w.resolution_total > hi {
                report.diagnostics.push(Diagnostic::error(
                    "BMP603",
                    &locus,
                    format!(
                        "sim resolution total {} outside proven envelope \
                         [{lo}, {hi}] for {n} branch intervals",
                        w.resolution_total
                    ),
                ));
            }
        } else {
            report.diagnostics.push(
                Diagnostic::info(
                    "BMP604",
                    &locus,
                    format!(
                        "recorded frontend depth {} differs from the baseline \
                         preset ({}) — sim resolution envelope not checked",
                        w.frontend_depth, wcfg.frontend_depth
                    ),
                )
                .with_suggestion("non-baseline runs are outside the metrics contract"),
            );
        }
        // Model side: regenerate the trace and demand cycle-exact
        // agreement on the local contributors, envelopes on the rest.
        let Some(m) = &w.model else { continue };
        match static_bounds_for(&w.workload, doc.ops, doc.seed, &wcfg) {
            None => report.diagnostics.push(
                Diagnostic::info(
                    "BMP604",
                    &locus,
                    format!(
                        "workload {:?} is not in the registry — model totals \
                         not statically checked",
                        w.workload
                    ),
                )
                .with_suggestion("register the workload in bmp-workloads::spec"),
            ),
            Some(b) => {
                for msg in b.check_model_exact(m) {
                    report
                        .diagnostics
                        .push(Diagnostic::error("BMP601", &locus, msg));
                }
                if m.intervals == b.intervals {
                    for msg in b.check_model_envelope(m) {
                        report
                            .diagnostics
                            .push(Diagnostic::error("BMP602", &locus, msg));
                    }
                }
            }
        }
    }
    report
}

/// BMP70x checks on one workload entry's per-class penalty attribution
/// (metrics v2 `branch_classes`): labels from the classifier's closed
/// set, the per-class refill identity, and — when a model section is
/// present — exact agreement between the class totals and the model's
/// interval/local-resolution/refill totals.
fn lint_class_attribution(report: &mut AnalysisReport, locus: &str, w: &WorkloadMetrics) {
    if w.branch_classes.is_empty() {
        return;
    }
    let mut seen: Vec<&str> = Vec::new();
    for c in &w.branch_classes {
        if !known_class_label(&c.class) {
            report.diagnostics.push(Diagnostic::error(
                "BMP700",
                locus,
                format!("unknown branch class label {:?}", c.class),
            ));
        }
        if seen.contains(&c.class.as_str()) {
            report.diagnostics.push(Diagnostic::error(
                "BMP701",
                locus,
                format!("branch class {:?} attributed twice", c.class),
            ));
        }
        seen.push(&c.class);
        let want = c.intervals * u64::from(w.frontend_depth);
        if c.refill != want {
            report.diagnostics.push(Diagnostic::error(
                "BMP701",
                locus,
                format!(
                    "class {:?} refill {} != {} intervals × frontend depth {}",
                    c.class, c.refill, c.intervals, w.frontend_depth
                ),
            ));
        }
    }
    let Some(m) = &w.model else { return };
    for (name, got, want) in [
        (
            "intervals",
            w.branch_classes.iter().map(|c| c.intervals).sum::<u64>(),
            m.intervals,
        ),
        (
            "local resolution",
            w.branch_classes
                .iter()
                .map(|c| c.local_resolution)
                .sum::<u64>(),
            m.local_resolution,
        ),
        (
            "refill",
            w.branch_classes.iter().map(|c| c.refill).sum::<u64>(),
            m.refill,
        ),
    ] {
        if got != want {
            report.diagnostics.push(Diagnostic::error(
                "BMP701",
                locus,
                format!(
                    "class attribution {name} total {got} != model {name} total \
                     {want} (the attribution must partition the model exactly)"
                ),
            ));
        }
    }
}

/// The CSV experiments with registered static checks, keyed by their
/// exact header line.
enum CsvChecks {
    /// `fig2_penalty_per_benchmark.csv`.
    Fig2,
    /// `fig3_penalty_vs_interval.csv`.
    Fig3,
    /// `fig5_contributor_breakdown.csv`.
    Fig5,
    /// `fig6_pipeline_depth.csv`.
    Fig6,
    /// `fig7_fu_latency.csv`.
    Fig7,
    /// `fig8_ilp.csv`.
    Fig8,
    /// `fig9_l1d_misses.csv`.
    Fig9,
    /// `fig10_model_validation.csv`.
    Fig10,
    /// `ex2_window_sweep.csv`.
    Ex2,
    /// `ex3_closed_form.csv`.
    Ex3,
    /// `ex_predictor_generations.csv`.
    ExGenerations,
    /// `ex_h2p_contributors.csv`.
    ExH2p,
}

impl CsvChecks {
    fn from_header(header: &str) -> Option<(Self, usize)> {
        Some(match header {
            "benchmark,measured-penalty,two-run-penalty,model-penalty,frontend-depth,measured-resolution" => (Self::Fig2, 6),
            "benchmark,interval-bucket-lo,n-measured,measured-resolution,model-local-resolution,model-effective-resolution" => (Self::Fig3, 6),
            "benchmark,frontend(i),base,ilp(iii),fu-latency(iv),short-dmiss(v),carryover(ii),total-penalty" => (Self::Fig5, 8),
            "benchmark,frontend-depth,measured-penalty,measured-resolution,model-penalty,IPC" => (Self::Fig6, 6),
            "workload,latency-scale,measured-resolution,model-resolution,model-fu-share(iv)" => (Self::Fig7, 5),
            "chain-length,measured-resolution,model-resolution,model-ilp-share(iii)" => (Self::Fig8, 4),
            "l1d-size-KiB,l1d-miss-rate,measured-resolution,model-resolution,model-short-dmiss-share(v)" => (Self::Fig9, 5),
            "benchmark,events-agree,sim-resolution,model-resolution,resolution-err,correlation,sim-CPI,stack-CPI,sched-CPI" => (Self::Fig10, 9),
            "benchmark,window,rob,measured-resolution,model-resolution,IPC" => (Self::Ex2, 6),
            "benchmark,sim-effective,model-effective,model-local,closed-form,closed-form-err-vs-local" => (Self::Ex3, 6),
            "benchmark,predictor,br-miss-rate,br-MPKI,mean-penalty,mean-base,mean-ilp,mean-fu,mean-dmiss,IPC" => (Self::ExGenerations, 10),
            "benchmark,class,sites,intervals,base,ilp,fu,dmiss,local,refill,total" => (Self::ExH2p, 11),
            _ => return None,
        })
    }
}

/// One CSV row under scrutiny; accumulates diagnostics for its line.
struct Row<'a> {
    locus: String,
    cells: &'a [&'a str],
    diags: &'a mut Vec<Diagnostic>,
}

impl Row<'_> {
    /// Numeric value of column `i`, or `None` with a BMP606 emitted.
    fn num(&mut self, i: usize) -> Option<f64> {
        match self.cells[i].trim().parse::<f64>() {
            Ok(v) if v.is_finite() => Some(v),
            _ => {
                self.diags.push(Diagnostic::error(
                    "BMP606",
                    &self.locus,
                    format!(
                        "column {} is not a finite number: {:?}",
                        i + 1,
                        self.cells[i]
                    ),
                ));
                None
            }
        }
    }

    /// Integer value of column `i` (the exact-identity columns of the
    /// per-class table), or `None` with a BMP606 emitted.
    fn int(&mut self, i: usize) -> Option<u64> {
        match self.cells[i].trim().parse::<u64>() {
            Ok(v) => Some(v),
            _ => {
                self.diags.push(Diagnostic::error(
                    "BMP606",
                    &self.locus,
                    format!(
                        "column {} is not a non-negative integer: {:?}",
                        i + 1,
                        self.cells[i]
                    ),
                ));
                None
            }
        }
    }

    fn violation(&mut self, message: String) {
        self.diags
            .push(Diagnostic::error("BMP605", &self.locus, message));
    }

    fn push(&mut self, code: &'static str, message: String) {
        self.diags
            .push(Diagnostic::error(code, &self.locus, message));
    }

    /// `value >= bound - EPS_GE`, else a BMP605 naming the rule.
    fn check_ge(&mut self, name: &str, value: f64, bound: f64, rule: &str) {
        if value < bound - EPS_GE {
            self.violation(format!(
                "{name} = {value} violates {name} >= {bound} ({rule})"
            ));
        }
    }

    /// `value` within `[lo, hi]` (small slack), else a BMP605.
    fn check_range(&mut self, name: &str, value: f64, lo: f64, hi: f64) {
        if value < lo - 1e-3 || value > hi + 1e-3 {
            self.violation(format!("{name} = {value} outside [{lo}, {hi}]"));
        }
    }

    /// `|got - want| <= eps`, else a BMP605 naming the identity.
    fn check_eq(&mut self, got: f64, want: f64, eps: f64, rule: &str) {
        if (got - want).abs() > eps {
            self.violation(format!(
                "{rule}: got {got}, expected {want} (tolerance {eps})"
            ));
        }
    }
}

/// Mean per-branch resolution lower bound: dispatch-to-issue plus
/// issue-to-done is at least one cycle each (`docs/STATIC_ANALYSIS.md`).
const MIN_RESOLUTION: f64 = 2.0;

fn check_row(kind: &CsvChecks, row: &mut Row<'_>) -> Option<()> {
    match kind {
        CsvChecks::Fig2 => {
            let mp = row.num(1)?;
            let model = row.num(3)?;
            let depth = row.num(4)?;
            let mr = row.num(5)?;
            row.check_eq(
                mp - mr,
                depth,
                EPS_VAL,
                "measured penalty − resolution == frontend depth",
            );
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-penalty",
                model,
                depth + MIN_RESOLUTION,
                "penalty >= depth + 2",
            );
        }
        CsvChecks::Fig6 => {
            let depth = row.num(1)?;
            let mp = row.num(2)?;
            let mr = row.num(3)?;
            let model = row.num(4)?;
            let ipc = row.num(5)?;
            row.check_eq(
                mp - mr,
                depth,
                EPS_VAL,
                "measured penalty − resolution == frontend depth",
            );
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-penalty",
                model,
                depth + MIN_RESOLUTION,
                "penalty >= depth + 2",
            );
            row.check_range("IPC", ipc, 1e-6, f64::INFINITY);
        }
        CsvChecks::Fig5 => {
            let fe = row.num(1)?;
            let base = row.num(2)?;
            let ilp = row.num(3)?;
            let fu = row.num(4)?;
            let sd = row.num(5)?;
            let co = row.num(6)?;
            let total = row.num(7)?;
            row.check_eq(base, 2.0, EPS_VAL, "mean base contribution == 2 cycles");
            row.check_ge("frontend(i)", fe, 1.0, "refill >= 1");
            row.check_ge("ilp(iii)", ilp, 0.0, "knock-out terms are non-negative");
            row.check_ge(
                "fu-latency(iv)",
                fu,
                0.0,
                "knock-out terms are non-negative",
            );
            row.check_ge(
                "short-dmiss(v)",
                sd,
                0.0,
                "knock-out terms are non-negative",
            );
            row.check_eq(
                fe + base + ilp + fu + sd + co,
                total,
                EPS_SUM,
                "contributors sum to total penalty",
            );
            if total < fe + MIN_RESOLUTION - EPS_SUM {
                row.violation(format!(
                    "total-penalty = {total} below frontend + 2 = {}",
                    fe + MIN_RESOLUTION
                ));
            }
        }
        CsvChecks::Fig10 => {
            let agree = row.num(1)?;
            let sim_r = row.num(2)?;
            let model_r = row.num(3)?;
            let corr = row.num(5)?;
            let sim_cpi = row.num(6)?;
            let stack_cpi = row.num(7)?;
            let sched_cpi = row.num(8)?;
            row.check_range("events-agree", agree, 0.0, 1.0);
            row.check_range("correlation", corr, -1.0, 1.0);
            row.check_ge("sim-resolution", sim_r, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model_r, MIN_RESOLUTION, "r >= 2");
            for (name, v) in [
                ("sim-CPI", sim_cpi),
                ("stack-CPI", stack_cpi),
                ("sched-CPI", sched_cpi),
            ] {
                row.check_range(name, v, 1e-6, f64::INFINITY);
            }
        }
        CsvChecks::Ex3 => {
            let sim = row.num(1)?;
            let model = row.num(2)?;
            let local = row.num(3)?;
            let closed = row.num(4)?;
            row.check_ge("sim-effective", sim, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-effective", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-local", local, MIN_RESOLUTION, "r >= 2");
            row.check_range("closed-form", closed, 1e-6, f64::INFINITY);
        }
        CsvChecks::Fig3 => {
            let n = row.num(2)?;
            row.check_ge("n-measured", n, 0.0, "counts are non-negative");
            for (name, col) in [
                ("measured-resolution", 3),
                ("model-local-resolution", 4),
                ("model-effective-resolution", 5),
            ] {
                let v = row.num(col)?;
                // An empty bucket legitimately reports 0; a populated
                // one must respect the per-branch floor.
                if v > EPS_GE && v < MIN_RESOLUTION - EPS_GE {
                    row.violation(format!(
                        "{name} = {v} in (0, 2): below the resolution floor"
                    ));
                }
            }
        }
        CsvChecks::Ex2 => {
            let window = row.num(1)?;
            let rob = row.num(2)?;
            let mr = row.num(3)?;
            let model = row.num(4)?;
            let ipc = row.num(5)?;
            row.check_ge("window", window, 1.0, "sizes are positive");
            row.check_ge("rob", rob, 1.0, "sizes are positive");
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_range("IPC", ipc, 1e-6, f64::INFINITY);
        }
        CsvChecks::Fig7 => {
            let scale = row.num(1)?;
            let mr = row.num(2)?;
            let model = row.num(3)?;
            let share = row.num(4)?;
            row.check_range("latency-scale", scale, 1e-6, f64::INFINITY);
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-fu-share(iv)",
                share,
                0.0,
                "knock-out terms are non-negative",
            );
        }
        CsvChecks::Fig8 => {
            let chain = row.num(0)?;
            let mr = row.num(1)?;
            let model = row.num(2)?;
            let ilp = row.num(3)?;
            row.check_ge("chain-length", chain, 1.0, "chains have at least one op");
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-ilp-share(iii)",
                ilp,
                0.0,
                "knock-out terms are non-negative",
            );
            row.check_ge(
                "model-resolution",
                model,
                ilp + MIN_RESOLUTION - EPS_SUM,
                "resolution >= ilp share + 2",
            );
        }
        CsvChecks::ExGenerations => {
            if !presets::GENERATIONS.contains(&row.cells[1].trim()) {
                row.push(
                    "BMP700",
                    format!("unknown predictor generation {:?}", row.cells[1]),
                );
            }
            let rate = row.num(2)?;
            let mpki = row.num(3)?;
            let mp = row.num(4)?;
            let base = row.num(5)?;
            let ilp = row.num(6)?;
            let fu = row.num(7)?;
            let dmiss = row.num(8)?;
            let ipc = row.num(9)?;
            row.check_range("br-miss-rate", rate, 0.0, 1.0);
            row.check_ge("br-MPKI", mpki, 0.0, "counts are non-negative");
            row.check_range("IPC", ipc, 1e-6, f64::INFINITY);
            // Penalty statistics are means over mispredictions; with
            // none recorded they legitimately print as zeros.
            if mpki > EPS_GE {
                let depth = f64::from(presets::baseline_4wide().frontend_depth);
                row.check_ge(
                    "mean-penalty",
                    mp,
                    depth + MIN_RESOLUTION,
                    "penalty >= depth + 2 (generations share the baseline frontend)",
                );
                row.check_eq(base, 2.0, EPS_VAL, "mean base contribution == 2 cycles");
                row.check_ge("mean-ilp", ilp, 0.0, "knock-out terms are non-negative");
                row.check_ge("mean-fu", fu, 0.0, "knock-out terms are non-negative");
                row.check_ge("mean-dmiss", dmiss, 0.0, "knock-out terms are non-negative");
            }
        }
        CsvChecks::ExH2p => {
            if !known_class_label(row.cells[1].trim()) {
                row.push(
                    "BMP700",
                    format!("unknown branch class label {:?}", row.cells[1]),
                );
            }
            row.int(2)?; // sites: a non-negative integer
            let intervals = row.int(3)?;
            let base = row.int(4)?;
            let ilp = row.int(5)?;
            let fu = row.int(6)?;
            let dmiss = row.int(7)?;
            let local = row.int(8)?;
            let refill = row.int(9)?;
            let total = row.int(10)?;
            // The table is produced under the baseline machine, so the
            // refill charge per interval is the baseline frontend depth.
            let depth = u64::from(presets::baseline_4wide().frontend_depth);
            if refill != intervals * depth {
                row.push(
                    "BMP701",
                    format!(
                        "refill {refill} != {intervals} intervals × frontend \
                         depth {depth}"
                    ),
                );
            }
            // Integer cycle columns: the identities hold exactly.
            if base + ilp + fu + dmiss != local {
                row.push(
                    "BMP701",
                    format!(
                        "base {base} + ilp {ilp} + fu {fu} + dmiss {dmiss} != \
                         local {local} (knock-out terms partition the local \
                         resolution exactly)"
                    ),
                );
            }
            if local + refill != total {
                row.push(
                    "BMP701",
                    format!("local {local} + refill {refill} != total {total}"),
                );
            }
        }
        CsvChecks::Fig9 => {
            let rate = row.num(1)?;
            let mr = row.num(2)?;
            let model = row.num(3)?;
            let share = row.num(4)?;
            row.check_range("l1d-miss-rate", rate, 0.0, 1.0);
            row.check_ge("measured-resolution", mr, MIN_RESOLUTION, "r >= 2");
            row.check_ge("model-resolution", model, MIN_RESOLUTION, "r >= 2");
            row.check_ge(
                "model-short-dmiss-share(v)",
                share,
                0.0,
                "knock-out terms are non-negative",
            );
        }
    }
    Some(())
}

/// Lints one published CSV table against the registered static checks
/// for its header. Unregistered headers (tables whose columns carry no
/// statically checkable identity, e.g. `table1_config.csv`) produce a
/// clean report.
pub fn lint_csv(locus: &str, content: &str) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let mut lines = content.lines();
    let Some(header) = lines.next() else {
        return report;
    };
    let Some((kind, cols)) = CsvChecks::from_header(header.trim()) else {
        return report;
    };
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        let locus = format!("{locus}:{}", i + 2);
        if cells.len() != cols {
            report.diagnostics.push(Diagnostic::error(
                "BMP606",
                &locus,
                format!("expected {cols} columns, found {}", cells.len()),
            ));
            continue;
        }
        let mut row = Row {
            locus,
            cells: &cells,
            diags: &mut report.diagnostics,
        };
        check_row(&kind, &mut row);
    }
    report
}

/// Whether a CSV header line has registered BMP6xx checks — used by
/// `bmp-verify` to report coverage.
pub fn csv_header_registered(header: &str) -> bool {
    CsvChecks::from_header(header.trim()).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use bmp_core::metrics::{ModelMetrics, WorkloadMetrics};
    use bmp_core::penalty::PenaltyModel;

    fn codes(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    /// A metrics document whose model section is the real analysis of
    /// the regenerable `gzip` trace and whose sim section satisfies
    /// the envelope.
    fn consistent_doc() -> ExperimentMetrics {
        let cfg = presets::baseline_4wide();
        let ops = 6_000u64;
        let seed = 7u64;
        let trace = spec::by_name("gzip").unwrap().generate(ops as usize, seed);
        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let stack = bmp_core::cpi::predict(&trace, &cfg);
        let records = bmp_core::accounting::records_from_analysis(&analysis);
        let mut w = WorkloadMetrics::from_records(
            "gzip",
            trace.len() as u64,
            10_000,
            analysis.frontend_depth,
            analysis.breakdowns.len() as u64,
            &records,
        );
        w.model = Some(ModelMetrics::from_analysis(&analysis, stack));
        let mut doc = ExperimentMetrics::new("test", ops, seed);
        doc.workloads.push(w);
        doc
    }

    #[test]
    fn consistent_metrics_doc_is_clean() {
        let doc = consistent_doc();
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn corrupted_model_total_is_bmp601() {
        let mut doc = consistent_doc();
        doc.workloads[0].model.as_mut().unwrap().ilp += 1;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(
            codes(&report).contains(&"BMP601"),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn out_of_envelope_model_resolution_is_bmp602() {
        let mut doc = consistent_doc();
        let m = doc.workloads[0].model.as_mut().unwrap();
        // Push resolution far past the per-branch upper bound while
        // keeping the exact (local) totals untouched.
        m.resolution += m.intervals * 1_000_000;
        m.carryover += (m.intervals * 1_000_000) as i64;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let c = codes(&report);
        assert!(c.contains(&"BMP602"), "{}", report.render_human());
        assert!(!c.contains(&"BMP601"), "{}", report.render_human());
    }

    #[test]
    fn broken_sim_refill_and_envelope_are_bmp603() {
        let mut doc = consistent_doc();
        doc.workloads[0].refill_total += 3;
        doc.workloads[0].resolution_total = 1; // below n × per-branch lo
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let c = codes(&report);
        assert_eq!(
            c.iter().filter(|&&c| c == "BMP603").count(),
            2,
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn unknown_workload_is_bmp604_info_only() {
        let mut doc = consistent_doc();
        doc.workloads[0].workload = "no-such-workload".into();
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(codes(&report).contains(&"BMP604"));
        assert_eq!(report.error_count(), 0, "{}", report.render_human());
        assert_eq!(report.worst(), Some(Severity::Info));
    }

    #[test]
    fn non_baseline_depth_skips_envelope_with_bmp604() {
        let mut doc = consistent_doc();
        let w = &mut doc.workloads[0];
        w.model = None;
        w.frontend_depth += 1; // refill identity updated to stay internally consistent
        w.refill_total = w.intervals.bmiss * u64::from(w.frontend_depth);
        w.resolution_total = 1; // would violate the envelope if checked
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let c = codes(&report);
        assert!(c.contains(&"BMP604"));
        assert!(!c.contains(&"BMP603"), "{}", report.render_human());
    }

    #[test]
    fn garbage_metrics_is_bmp606() {
        let report = lint_metrics_doc("m.json", "{ not json");
        assert_eq!(codes(&report), vec!["BMP606"]);
    }

    #[test]
    fn real_result_csvs_pass() {
        // The seed repo's published tables must satisfy every
        // registered static check.
        for name in [
            "fig2_penalty_per_benchmark",
            "fig5_contributor_breakdown",
            "fig8_ilp",
            "ex_predictor_generations",
            "ex_h2p_contributors",
        ] {
            let path = format!("{}/../../results/{name}.csv", env!("CARGO_MANIFEST_DIR"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                let report = lint_csv(&format!("{name}.csv"), &text);
                assert!(report.is_clean(), "{name}: {}", report.render_human());
            }
        }
    }

    #[test]
    fn fig5_base_violation_is_bmp605() {
        let csv = "benchmark,frontend(i),base,ilp(iii),fu-latency(iv),short-dmiss(v),carryover(ii),total-penalty\n\
                   gzip,5.00,3.00,0.94,1.02,1.35,9.39,20.70\n";
        let report = lint_csv("fig5.csv", csv);
        assert!(
            codes(&report).contains(&"BMP605"),
            "{}",
            report.render_human()
        );
        assert!(report.render_human().contains("base"));
    }

    #[test]
    fn fig5_sum_violation_is_bmp605() {
        let csv = "benchmark,frontend(i),base,ilp(iii),fu-latency(iv),short-dmiss(v),carryover(ii),total-penalty\n\
                   gzip,5.00,2.00,0.94,1.02,1.35,10.38,25.00\n";
        let report = lint_csv("fig5.csv", csv);
        assert!(codes(&report).contains(&"BMP605"));
    }

    #[test]
    fn fig2_depth_identity_violation_is_bmp605() {
        let csv = "benchmark,measured-penalty,two-run-penalty,model-penalty,frontend-depth,measured-resolution\n\
                   gzip,21.00,11.30,20.70,5,15.00\n";
        let report = lint_csv("fig2.csv", csv);
        assert!(codes(&report).contains(&"BMP605"));
    }

    #[test]
    fn malformed_row_is_bmp606() {
        let csv = "benchmark,window,rob,measured-resolution,model-resolution,IPC\n\
                   twolf,16,32,eleven,10.61,0.534\n\
                   twolf,16,32\n";
        let report = lint_csv("ex2.csv", csv);
        assert_eq!(
            codes(&report).iter().filter(|&&c| c == "BMP606").count(),
            2,
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn unknown_header_is_skipped_silently() {
        let report = lint_csv("x.csv", "a,b,c\n1,2,oops\n");
        assert!(report.is_clean());
        assert!(!csv_header_registered("a,b,c"));
        assert!(csv_header_registered(
            "chain-length,measured-resolution,model-resolution,model-ilp-share(iii)"
        ));
        assert!(csv_header_registered(
            "benchmark,predictor,br-miss-rate,br-MPKI,mean-penalty,mean-base,\
             mean-ilp,mean-fu,mean-dmiss,IPC"
        ));
        assert!(csv_header_registered(
            "benchmark,class,sites,intervals,base,ilp,fu,dmiss,local,refill,total"
        ));
    }

    const H2P_HEADER: &str =
        "benchmark,class,sites,intervals,base,ilp,fu,dmiss,local,refill,total\n";

    #[test]
    fn h2p_csv_identity_violations_are_bmp701() {
        // base+ilp+fu+dmiss = 24 != local 25.
        let csv = format!("{H2P_HEADER}gzip,h2p,3,10,20,2,1,1,25,50,75\n");
        let report = lint_csv("h2p.csv", &csv);
        assert_eq!(codes(&report), vec!["BMP701"], "{}", report.render_human());

        // local 24 + refill 50 = 74 != total 80.
        let csv = format!("{H2P_HEADER}gzip,h2p,3,10,20,2,1,1,24,50,80\n");
        let report = lint_csv("h2p.csv", &csv);
        assert_eq!(codes(&report), vec!["BMP701"], "{}", report.render_human());

        // refill 49 != 10 intervals × baseline depth 5.
        let csv = format!("{H2P_HEADER}gzip,h2p,3,10,20,2,1,1,24,49,73\n");
        let report = lint_csv("h2p.csv", &csv);
        assert_eq!(codes(&report), vec!["BMP701"], "{}", report.render_human());

        // A consistent row is clean.
        let csv = format!("{H2P_HEADER}gzip,h2p,3,10,20,2,1,1,24,50,74\n");
        assert!(lint_csv("h2p.csv", &csv).is_clean());
    }

    #[test]
    fn h2p_csv_unknown_class_is_bmp700() {
        let csv = format!("{H2P_HEADER}gzip,spicy,3,10,20,2,1,1,24,50,74\n");
        let report = lint_csv("h2p.csv", &csv);
        assert_eq!(codes(&report), vec!["BMP700"], "{}", report.render_human());
    }

    #[test]
    fn generations_csv_unknown_predictor_is_bmp700() {
        let header = "benchmark,predictor,br-miss-rate,br-MPKI,mean-penalty,\
                      mean-base,mean-ilp,mean-fu,mean-dmiss,IPC\n";
        let csv = format!("{header}gzip,crystal-ball,0.050,8.00,21.00,2.00,1.00,1.00,2.00,1.100\n");
        let report = lint_csv("gen.csv", &csv);
        assert_eq!(codes(&report), vec!["BMP700"], "{}", report.render_human());

        let good = format!("{header}gzip,tage,0.050,8.00,21.00,2.00,1.00,1.00,2.00,1.100\n");
        assert!(lint_csv("gen.csv", &good).is_clean());

        // A zero-MPKI row skips the penalty-mean checks: there is no
        // misprediction to average over.
        let cold = format!("{header}gzip,tage,0.000,0.00,0.00,0.00,0.00,0.00,0.00,1.500\n");
        assert!(lint_csv("gen.csv", &cold).is_clean());
    }

    /// `consistent_doc` with a class attribution that exactly
    /// partitions the model: all of it charged to one `h2p` class.
    fn classed_doc() -> ExperimentMetrics {
        let mut doc = consistent_doc();
        let w = &mut doc.workloads[0];
        let m = w.model.as_ref().unwrap();
        w.branch_classes = vec![bmp_core::metrics::ClassPenalty {
            class: "h2p".into(),
            sites: 4,
            intervals: m.intervals,
            local_resolution: m.local_resolution,
            refill: m.refill,
        }];
        doc
    }

    #[test]
    fn doc_class_attribution_partitioning_the_model_is_clean() {
        let doc = classed_doc();
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn doc_unknown_class_label_is_bmp700() {
        let mut doc = classed_doc();
        doc.workloads[0].branch_classes[0].class = "spicy".into();
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(
            codes(&report).contains(&"BMP700"),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn doc_class_totals_not_partitioning_the_model_is_bmp701() {
        let mut doc = classed_doc();
        // Steal one interval (and its refill charge, keeping the
        // per-class refill identity intact) so the totals no longer
        // cover the model.
        let depth = u64::from(doc.workloads[0].frontend_depth);
        let c = &mut doc.workloads[0].branch_classes[0];
        c.intervals -= 1;
        c.refill -= depth;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let n = codes(&report).iter().filter(|&&c| c == "BMP701").count();
        assert_eq!(n, 2, "{}", report.render_human()); // intervals + refill totals
    }

    #[test]
    fn doc_duplicate_class_and_broken_class_refill_are_bmp701() {
        let mut doc = classed_doc();
        let dup = doc.workloads[0].branch_classes[0].clone();
        doc.workloads[0].branch_classes.push(dup);
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(
            codes(&report).contains(&"BMP701"),
            "{}",
            report.render_human()
        );

        let mut doc = classed_doc();
        doc.workloads[0].branch_classes[0].refill += 1;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(
            codes(&report).contains(&"BMP701"),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn unregistered_predictor_skips_bounds_with_bmp604() {
        let mut doc = consistent_doc();
        doc.workloads[0].predictor = "crystal-ball".into();
        // Would trip BMP601/603 if the baseline bounds were applied.
        doc.workloads[0].resolution_total = 1;
        doc.workloads[0].model.as_mut().unwrap().ilp += 1;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        let c = codes(&report);
        assert!(c.contains(&"BMP604"), "{}", report.render_human());
        assert_eq!(report.error_count(), 0, "{}", report.render_human());
    }

    #[test]
    fn generation_predictor_doc_is_checked_under_its_own_machine() {
        // A document recorded under the TAGE generation: the lint must
        // rebuild that machine (not the baseline tournament) for its
        // exact model checks.
        let cfg = presets::generation_machine("tage").unwrap();
        let ops = 6_000u64;
        let seed = 7u64;
        let trace = spec::by_name("gzip").unwrap().generate(ops as usize, seed);
        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let stack = bmp_core::cpi::predict(&trace, &cfg);
        let records = bmp_core::accounting::records_from_analysis(&analysis);
        let mut w = WorkloadMetrics::from_records(
            "gzip",
            trace.len() as u64,
            10_000,
            analysis.frontend_depth,
            analysis.breakdowns.len() as u64,
            &records,
        );
        w.predictor = "tage".into();
        w.model = Some(ModelMetrics::from_analysis(&analysis, stack));
        let mut doc = ExperimentMetrics::new("test", ops, seed);
        doc.workloads.push(w);
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(report.is_clean(), "{}", report.render_human());

        // Corrupting the model is still caught under that machine.
        doc.workloads[0].model.as_mut().unwrap().ilp += 1;
        let report = lint_metrics_doc("m.json", &doc.to_json());
        assert!(
            codes(&report).contains(&"BMP601"),
            "{}",
            report.render_human()
        );
    }
}
