//! Superblock-map structure lints (`BMP31x`).
//!
//! The event-driven simulator's fetch stage trusts a
//! [`SuperblockMap`] the way the wakeup scheduler trusts the producer
//! table (see [`crate::compiledlint`]): it admits `run_len(i)` ops as one
//! branch-free, same-line batch and performs an I-cache access exactly on
//! the ops whose `is_line_start` bit is set — with no hot-path checks.
//! [`SuperblockMap::build`] establishes the invariants by construction,
//! but the map is built *separately* from the trace it describes and
//! cached per `(trace, line size)`; the engine asserts only that the
//! lengths and line sizes agree. These rules re-derive the full contract
//! for a `(CompiledTrace, SuperblockMap)` pair, so a stale cache entry, a
//! transform that edited the trace after mapping, or a hand-built fixture
//! is caught before it silently skips a branch prediction or an I-cache
//! access:
//!
//! * `BMP311` — `run_len(i)` is zero on exactly the branch ops;
//! * `BMP312` — no run crosses an I-cache line boundary (every op of a
//!   run shares the first op's line);
//! * `BMP313` — `is_line_start(i)` matches the dynamic compare the
//!   reference fetch performs (`i == 0` or op `i`'s line differs from op
//!   `i-1`'s);
//! * `BMP314` — runs count down: inside a run, `run_len` decreases by
//!   exactly one per op, and no run extends past the end of the trace.
//!
//! All four are errors: each one corresponds to a concrete way the
//! batched fetch diverges from the reference engine (a mid-run branch is
//! never predicted, a mid-run line break never accesses the I-cache, a
//! wrong countdown desynchronizes fetch from dispatch).

use bmp_trace::compiled::FLAG_BRANCH;
use bmp_trace::{CompiledTrace, SuperblockMap};

use crate::diag::Diagnostic;

/// Cap on repeated findings per rule, matching the other linters.
const MAX_PER_CODE: usize = 8;

/// Runs the superblock rules over a compiled trace and the map that
/// claims to describe it.
///
/// Returns a single mismatch diagnostic when the map's length or line
/// size cannot possibly belong to the trace; otherwise checks the four
/// structural rules op by op.
pub fn lint_superblock(ct: &CompiledTrace, sb: &SuperblockMap) -> Vec<Diagnostic> {
    let n = ct.len();
    if sb.len() != n {
        return vec![Diagnostic::error(
            "BMP311",
            "superblock",
            format!(
                "map describes {} ops but the compiled trace has {n}",
                sb.len()
            ),
        )
        .with_suggestion("rebuild the map from this trace (SuperblockMap::build)")];
    }
    if !sb.line_bytes().is_power_of_two() {
        return vec![Diagnostic::error(
            "BMP311",
            "superblock",
            format!("line size {} is not a power of two", sb.line_bytes()),
        )
        .with_suggestion("build the map from a validated cache geometry")];
    }
    let mask = !u64::from(sb.line_bytes() - 1);

    let mut out = Vec::new();
    let (mut branch, mut span, mut line, mut count) = (0usize, 0usize, 0usize, 0usize);
    let mut push = |counter: &mut usize, d: Diagnostic| {
        *counter += 1;
        if *counter <= MAX_PER_CODE {
            out.push(d);
        }
    };

    for i in 0..n {
        let is_branch = ct.flags(i) & FLAG_BRANCH != 0;
        let run = sb.run_len(i);
        if (run == 0) != is_branch {
            push(
                &mut branch,
                Diagnostic::error(
                    "BMP311",
                    format!("superblock[{i}]"),
                    if is_branch {
                        format!(
                            "branch op has run_len {run}; fetch would batch past it unpredicted"
                        )
                    } else {
                        "non-branch op has run_len 0; fetch would treat it as a branch".into()
                    },
                )
                .with_suggestion("rebuild the map from this trace"),
            );
            continue;
        }
        if run > 1 {
            let end = i + run as usize;
            if end > n {
                push(
                    &mut count,
                    Diagnostic::error(
                        "BMP314",
                        format!("superblock[{i}]"),
                        format!("run of {run} ops extends past the {n}-op trace"),
                    )
                    .with_suggestion("rebuild the map from this trace"),
                );
                continue;
            }
            if sb.run_len(i + 1) != run - 1 {
                push(
                    &mut count,
                    Diagnostic::error(
                        "BMP314",
                        format!("superblock[{i}]"),
                        format!(
                            "run_len does not count down: {} follows {run}",
                            sb.run_len(i + 1)
                        ),
                    )
                    .with_suggestion("rebuild the map from this trace"),
                );
            }
            if ct.pc(i + 1) & mask != ct.pc(i) & mask {
                push(
                    &mut span,
                    Diagnostic::error(
                        "BMP312",
                        format!("superblock[{i}]"),
                        format!(
                            "run continues onto a new {}-byte I-cache line; the batched \
                             fill would skip that line's access",
                            sb.line_bytes()
                        ),
                    )
                    .with_suggestion("rebuild the map with the config's L1I line size"),
                );
            }
        }
        let expect = i == 0 || (ct.pc(i) & mask) != (ct.pc(i - 1) & mask);
        if sb.is_line_start(i) != expect {
            push(
                &mut line,
                Diagnostic::error(
                    "BMP313",
                    format!("superblock[{i}]"),
                    format!(
                        "is_line_start is {} but the dynamic line compare says {expect}",
                        sb.is_line_start(i)
                    ),
                )
                .with_suggestion("rebuild the map with the config's L1I line size"),
            );
        }
    }

    for (code, n_found) in [
        ("BMP311", branch),
        ("BMP312", span),
        ("BMP313", line),
        ("BMP314", count),
    ] {
        if n_found > MAX_PER_CODE {
            out.push(Diagnostic::info(
                code,
                "superblock",
                format!("... and {} more {code} finding(s)", n_found - MAX_PER_CODE),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::{BranchKind, MicroOp, Trace};
    use bmp_uarch::OpClass;

    fn mixed_trace(n: usize) -> Trace {
        (0..n)
            .map(|i| {
                let pc = 0x1000 + 4 * i as u64;
                if i % 7 == 3 {
                    MicroOp::branch(pc, BranchKind::Conditional, i % 2 == 0, pc + 16, [None; 2])
                } else {
                    MicroOp::alu(pc, OpClass::IntAlu, [None; 2])
                }
            })
            .collect()
    }

    #[test]
    fn built_map_is_clean() {
        let ct = mixed_trace(200).compile();
        for lb in [16u32, 32, 64, 128] {
            let sb = SuperblockMap::build(&ct, lb);
            assert!(
                lint_superblock(&ct, &sb).is_empty(),
                "line size {lb} produced findings"
            );
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let ct = mixed_trace(50).compile();
        let other = mixed_trace(60).compile();
        let sb = SuperblockMap::build(&other, 64);
        let diags = lint_superblock(&ct, &sb);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "BMP311");
    }

    #[test]
    fn wrong_line_size_fires_line_rules() {
        // Deliberately broken: map built at 16-byte lines, linted as if
        // the config had 64-byte lines. Lines move, so runs in the
        // 16-byte map break no 64-byte boundary — but the line-start
        // bits disagree (BMP313).
        let ct = mixed_trace(200).compile();
        let sb = SuperblockMap::build(&ct, 16);
        let diags = lint_superblock(&mixed_trace(200).compile(), &sb);
        // The map carries its own line size; linting is self-consistent,
        // so a *self-described* map stays clean...
        assert!(diags.is_empty());
        // ...the mismatch shows when the trace changed under the map.
        let shifted: Trace = (0..200)
            .map(|i| MicroOp::alu(0x8000 + 12 * i as u64, OpClass::IntAlu, [None; 2]))
            .collect();
        let diags = lint_superblock(&shifted.compile(), &sb);
        assert!(diags.iter().any(|d| d.code == "BMP313"));
    }

    #[test]
    fn stale_map_after_trace_edit_is_caught() {
        // Deliberately broken: the map was built before a branch was
        // rewritten into the middle of a run.
        let plain: Trace = (0..64)
            .map(|i| MicroOp::alu(0x1000 + 4 * i as u64, OpClass::IntAlu, [None; 2]))
            .collect();
        let sb = SuperblockMap::build(&plain.compile(), 64);
        let edited: Trace = (0..64)
            .map(|i| {
                let pc = 0x1000 + 4 * i as u64;
                if i == 5 {
                    MicroOp::branch(pc, BranchKind::Jump, true, pc + 4, [None; 2])
                } else {
                    MicroOp::alu(pc, OpClass::IntAlu, [None; 2])
                }
            })
            .collect();
        let diags = lint_superblock(&edited.compile(), &sb);
        assert!(
            diags.iter().any(|d| d.code == "BMP311"),
            "a branch inside a run must fire BMP311: {diags:?}"
        );
    }

    #[test]
    fn repeated_findings_are_capped() {
        // A long all-branch trace against an all-ALU map: every op
        // fires BMP311, capped at 8 plus a summary.
        let branches: Trace = (0..40)
            .map(|i| {
                let pc = 0x1000 + 4 * i as u64;
                MicroOp::branch(pc, BranchKind::Conditional, true, pc + 8, [None; 2])
            })
            .collect();
        let plain: Trace = (0..40)
            .map(|i| MicroOp::alu(0x1000 + 4 * i as u64, OpClass::IntAlu, [None; 2]))
            .collect();
        let sb = SuperblockMap::build(&plain.compile(), 64);
        let diags = lint_superblock(&branches.compile(), &sb);
        let errors = diags.iter().filter(|d| d.code == "BMP311").count();
        assert_eq!(errors, MAX_PER_CODE + 1);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("more BMP311 finding")));
    }
}
