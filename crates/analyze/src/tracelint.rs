//! Trace well-formedness lints (`BMP1xx`).
//!
//! A trace drives both the simulator and the interval model; these rules
//! check the preconditions those consumers assume but (deliberately) do
//! not enforce on their hot paths: an acyclic dependence DAG, dependences
//! that stay inside the trace, control flow that actually follows the
//! recorded branch outcomes, and monotone branch indices in measured
//! resolution records — the documented precondition of
//! `ValidationReport::from_pairs`.

use std::collections::HashSet;

use bmp_trace::Trace;

use crate::diag::Diagnostic;

/// Cap on repeated findings per rule; beyond it one summary line is
/// emitted instead of drowning the report.
pub(crate) const MAX_PER_CODE: usize = 8;

/// Pushes `d` unless `count` already reached [`MAX_PER_CODE`];
/// returns the new count.
pub(crate) fn push_capped(out: &mut Vec<Diagnostic>, count: usize, d: Diagnostic) -> usize {
    if count < MAX_PER_CODE {
        out.push(d);
    }
    count + 1
}

/// Appends the "... and N more" summary for a rule that overflowed.
pub(crate) fn summarize_overflow(out: &mut Vec<Diagnostic>, code: &'static str, count: usize) {
    if count > MAX_PER_CODE {
        out.push(Diagnostic::info(
            code,
            "trace",
            format!("... and {} more {code} finding(s)", count - MAX_PER_CODE),
        ));
    }
}

/// Runs every trace rule over `trace`.
pub fn lint_trace(trace: &Trace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ops = trace.ops();

    // PC set for the target-reachability rule.
    let pcs: HashSet<u64> = ops.iter().map(|o| o.pc()).collect();

    let (mut dangling, mut discont, mut orphan) = (0usize, 0usize, 0usize);
    for (i, op) in ops.iter().enumerate() {
        // BMP102: a dependence reaching before the start of the trace.
        // Legal for windowed slices built with `from_ops_unchecked` (the
        // DAG scheduler treats out-of-slice producers as ready), but a
        // whole-program trace should be self-contained.
        for d in op.src_distances() {
            if d as usize > i {
                dangling = push_capped(
                    &mut out,
                    dangling,
                    Diagnostic::warn(
                        "BMP102",
                        format!("trace[{i}]"),
                        format!(
                            "dependence distance {d} reaches before the trace \
                             (op index {i}); the producer is outside the trace"
                        ),
                    )
                    .with_suggestion(
                        "expected only for windowed slices; build whole traces \
                         with TraceBuilder::push, which rejects this",
                    ),
                );
            }
        }

        // BMP105: control-flow continuity — the recorded outcome of op i
        // must lead to op i+1.
        if i + 1 < ops.len() && op.next_pc() != ops[i + 1].pc() {
            discont = push_capped(
                &mut out,
                discont,
                Diagnostic::warn(
                    "BMP105",
                    format!("trace[{i}]"),
                    format!(
                        "control-flow break: op at pc {:#x} leads to {:#x} but the \
                         next op is at pc {:#x}",
                        op.pc(),
                        op.next_pc(),
                        ops[i + 1].pc()
                    ),
                ),
            );
        }

        // BMP103: a taken branch whose target is never fetched anywhere
        // in the trace. The final op legitimately jumps "out".
        if i + 1 < ops.len() {
            if let Some(b) = op.branch_info() {
                if b.taken && !pcs.contains(&b.target) {
                    orphan = push_capped(
                        &mut out,
                        orphan,
                        Diagnostic::warn(
                            "BMP103",
                            format!("trace[{i}]"),
                            format!(
                                "taken branch targets {:#x}, an address never \
                                 fetched in this trace",
                                b.target
                            ),
                        ),
                    );
                }
            }
        }
    }
    summarize_overflow(&mut out, "BMP102", dangling);
    summarize_overflow(&mut out, "BMP105", discont);
    summarize_overflow(&mut out, "BMP103", orphan);

    // BMP101 over the trace's own dependence edges. The distance encoding
    // (always backward, 0 = none) makes an in-trace cycle unrepresentable,
    // so this is a defensive pass over the generic checker — it costs
    // O(n + e) and protects any future source of dependence edges.
    let mut edges = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        for d in op.src_distances() {
            let d = d as usize;
            if d <= i {
                edges.push((i - d, i));
            }
        }
    }
    out.extend(lint_dag_edges(ops.len(), &edges));

    out
}

/// `BMP101`: checks that a dependence graph given as `producer → consumer`
/// edges over `nodes` vertices is acyclic.
///
/// The in-trace encoding cannot express a cycle, so [`lint_trace`] uses
/// this defensively; callers holding dependence information from other
/// sources (imported DAGs, future trace formats) should run it directly.
pub fn lint_dag_edges(nodes: usize, edges: &[(usize, usize)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut adj = vec![Vec::new(); nodes];
    let mut indegree = vec![0usize; nodes];
    for &(from, to) in edges {
        if from >= nodes || to >= nodes {
            out.push(Diagnostic::error(
                "BMP101",
                format!("dag.edge({from},{to})"),
                format!("edge endpoint out of range for a {nodes}-node graph"),
            ));
            continue;
        }
        adj[from].push(to);
        indegree[to] += 1;
    }

    // Kahn's algorithm: whatever cannot be peeled off lies on or behind
    // a cycle.
    let mut queue: Vec<usize> = (0..nodes).filter(|&n| indegree[n] == 0).collect();
    let mut peeled = 0usize;
    while let Some(n) = queue.pop() {
        peeled += 1;
        for &m in &adj[n] {
            indegree[m] -= 1;
            if indegree[m] == 0 {
                queue.push(m);
            }
        }
    }

    if peeled < nodes {
        let mut cycle: Vec<usize> = (0..nodes).filter(|&n| indegree[n] > 0).collect();
        cycle.truncate(MAX_PER_CODE);
        out.push(
            Diagnostic::error(
                "BMP101",
                "dag",
                format!(
                    "dependence graph has a cycle; {} node(s) cannot be \
                     topologically ordered (e.g. {cycle:?})",
                    nodes - peeled
                ),
            )
            .with_suggestion(
                "a dependence must point strictly backward in program order; \
                 re-derive the edges from a legal execution",
            ),
        );
    }

    out
}

/// `BMP104`: checks that measured `(branch_idx, resolution)` records are
/// strictly increasing in branch index — the documented precondition of
/// `ValidationReport::from_pairs`, whose merge-join silently miscounts on
/// unsorted or duplicated input.
pub fn lint_measured_pairs(pairs: &[(usize, u64)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut violations = 0usize;
    for w in pairs.windows(2) {
        let ((a, _), (b, _)) = (w[0], w[1]);
        if b <= a {
            let what = if b == a {
                "duplicates"
            } else {
                "goes back past"
            };
            violations = push_capped(
                &mut out,
                violations,
                Diagnostic::error(
                    "BMP104",
                    format!("pairs[{a}..{b}]"),
                    format!(
                        "branch index {b} {what} {a}; from_pairs requires strictly \
                         increasing branch indices"
                    ),
                )
                .with_suggestion("sort the records by branch index and deduplicate"),
            );
        }
    }
    summarize_overflow(&mut out, "BMP104", violations);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_trace::{BranchKind, MicroOp, Trace};
    use bmp_uarch::OpClass;

    fn straight_line(n: usize) -> Trace {
        (0..n)
            .map(|i| MicroOp::alu(0x1000 + 4 * i as u64, OpClass::IntAlu, [None, None]))
            .collect()
    }

    #[test]
    fn straight_line_trace_is_clean() {
        assert!(lint_trace(&straight_line(64)).is_empty());
    }

    #[test]
    fn cyclic_dag_is_an_error() {
        // Deliberately broken: 0 → 1 → 2 → 0.
        let diags = lint_dag_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "BMP101");
        assert_eq!(diags[0].severity, crate::Severity::Error);
        assert!(diags[0].message.contains("cycle"));
    }

    #[test]
    fn acyclic_dag_is_clean() {
        assert!(lint_dag_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).is_empty());
    }

    #[test]
    fn out_of_range_edge_is_an_error() {
        let diags = lint_dag_edges(2, &[(0, 5)]);
        assert!(diags.iter().any(|d| d.message.contains("out of range")));
    }

    #[test]
    fn dangling_dependence_is_flagged() {
        let ops = vec![MicroOp::alu(0x1000, OpClass::IntAlu, [Some(3), None])];
        let diags = lint_trace(&Trace::from_ops_unchecked(ops));
        assert!(diags
            .iter()
            .any(|d| d.code == "BMP102" && d.locus == "trace[0]"));
    }

    #[test]
    fn control_flow_break_is_flagged() {
        let ops = vec![
            MicroOp::alu(0x1000, OpClass::IntAlu, [None, None]),
            MicroOp::alu(0x2000, OpClass::IntAlu, [None, None]),
        ];
        let diags = lint_trace(&Trace::from_ops_unchecked(ops));
        assert!(diags.iter().any(|d| d.code == "BMP105"));
    }

    #[test]
    fn orphan_branch_target_is_flagged() {
        // A taken branch to 0x9000 followed (inconsistently) by 0x9000's
        // absence: the next op sits at the target, so use a mid-trace
        // branch whose target appears nowhere.
        let ops = vec![
            MicroOp::branch(0x1000, BranchKind::Jump, true, 0x9000, [None, None]),
            MicroOp::alu(0x1004, OpClass::IntAlu, [None, None]),
        ];
        let diags = lint_trace(&Trace::from_ops_unchecked(ops));
        assert!(diags.iter().any(|d| d.code == "BMP103"));
        // The same break also trips continuity.
        assert!(diags.iter().any(|d| d.code == "BMP105"));
    }

    #[test]
    fn unsorted_pairs_are_an_error() {
        let diags = lint_measured_pairs(&[(5, 10), (3, 8)]);
        assert_eq!(diags[0].code, "BMP104");
        assert_eq!(diags[0].severity, crate::Severity::Error);
        assert!(lint_measured_pairs(&[(1, 4), (2, 4), (9, 4)]).is_empty());
    }

    #[test]
    fn duplicate_pairs_are_an_error() {
        let diags = lint_measured_pairs(&[(4, 1), (4, 2)]);
        assert!(diags[0].message.contains("duplicates"));
    }

    #[test]
    fn repeated_findings_are_capped() {
        let ops: Vec<MicroOp> = (0..40)
            .map(|i| MicroOp::alu(0x1000 * (i + 1) as u64, OpClass::IntAlu, [None, None]))
            .collect();
        let diags = lint_trace(&Trace::from_ops_unchecked(ops));
        let bmp105 = diags.iter().filter(|d| d.code == "BMP105").count();
        // 8 individual findings plus one summary line.
        assert_eq!(bmp105, MAX_PER_CODE + 1);
        assert!(diags
            .iter()
            .any(|d| d.code == "BMP105" && d.message.contains("more BMP105")));
    }
}
