//! Result-conservation lints (`BMP2xx`).
//!
//! The interval model's whole point is an *exact* decomposition: the five
//! penalty contributors must sum back to the resolution they explain, and
//! the CPI stack must sum back to the cycles it accounts for. These rules
//! re-check those conservation laws on finished results, so a regression
//! in the model (or a hand-constructed result) cannot silently report a
//! breakdown that does not add up.

use bmp_core::cpi::CpiStack;
use bmp_core::PenaltyAnalysis;
use bmp_sim::SimResult;
use bmp_uarch::MachineConfig;

use crate::diag::Diagnostic;

/// Relative tolerance for floating-point conservation checks.
const EPS: f64 = 1e-9;

/// `a ≈ b` under [`EPS`], scaled by magnitude.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * a.abs().max(b.abs()).max(1.0)
}

/// Cap on per-breakdown findings before summarizing.
const MAX_BREAKDOWN_FINDINGS: usize = 8;

/// `BMP201`: checks a CPI stack for finite, non-negative components that
/// sum (within epsilon) to the CPI it reports.
pub fn lint_cpi_stack(stack: &CpiStack) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let named = [
        ("base_cycles", stack.base_cycles),
        ("branch_cycles", stack.branch_cycles),
        ("icache_cycles", stack.icache_cycles),
        ("long_dmiss_cycles", stack.long_dmiss_cycles),
    ];
    for (name, v) in named {
        if !v.is_finite() || v < 0.0 {
            out.push(Diagnostic::error(
                "BMP201",
                format!("cpi.{name}"),
                format!("component is {v}, which is not a finite non-negative cycle count"),
            ));
        }
    }

    let (base, branch, icache, long_dmiss) = stack.components();
    let sum = base + branch + icache + long_dmiss;
    if !close(sum, stack.cpi()) {
        out.push(
            Diagnostic::error(
                "BMP201",
                "cpi",
                format!(
                    "component CPIs sum to {sum} but the stack reports {}; the \
                     decomposition does not conserve cycles",
                    stack.cpi()
                ),
            )
            .with_suggestion("every cycle must be attributed to exactly one component"),
        );
    }

    if stack.instructions == 0 && stack.total_cycles() > 0.0 {
        out.push(Diagnostic::warn(
            "BMP201",
            "cpi.instructions",
            format!(
                "{} cycles attributed over zero instructions; the stack is \
                 unnormalizable",
                stack.total_cycles()
            ),
        ));
    }
    out
}

/// `BMP202`: checks every penalty breakdown for the two conservation
/// identities the decomposition guarantees —
/// `base + ilp + fu_latency + short_dmiss == local_resolution` and
/// `local_resolution + carryover == resolution` — plus the structural
/// facts downstream consumers lean on (strictly increasing branch
/// indices, the precondition `ValidationReport::from_pairs` inherits via
/// `BMP104`; a non-zero resolution floor; the analysis-wide frontend
/// depth on every record).
pub fn lint_penalty_analysis(analysis: &PenaltyAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut findings = 0usize;
    let mut push = |out: &mut Vec<Diagnostic>, d: Diagnostic| {
        if findings < MAX_BREAKDOWN_FINDINGS {
            out.push(d);
        }
        findings += 1;
    };

    let mut prev_idx: Option<usize> = None;
    for (i, b) in analysis.breakdowns.iter().enumerate() {
        let locus = format!("penalty.breakdowns[{i}]");

        let parts = b.base + b.ilp + b.fu_latency + b.short_dmiss;
        if parts != b.local_resolution {
            push(
                &mut out,
                Diagnostic::error(
                    "BMP202",
                    locus.clone(),
                    format!(
                        "contributors base+ilp+fu+short_dmiss = {parts} but \
                         local_resolution = {}; the knock-out decomposition \
                         does not conserve cycles",
                        b.local_resolution
                    ),
                ),
            );
        }

        let effective = b.local_resolution as i64 + b.carryover;
        if effective != b.resolution as i64 {
            push(
                &mut out,
                Diagnostic::error(
                    "BMP202",
                    locus.clone(),
                    format!(
                        "local_resolution {} + carryover {} = {effective} but \
                         resolution = {}; interval and whole-trace schedules \
                         disagree",
                        b.local_resolution, b.carryover, b.resolution
                    ),
                ),
            );
        }

        if b.base == 0 {
            push(
                &mut out,
                Diagnostic::warn(
                    "BMP202",
                    locus.clone(),
                    "base term is 0; a branch always needs at least one cycle \
                     to execute, so the resolution floor is missing"
                        .to_owned(),
                ),
            );
        }

        if b.frontend != analysis.frontend_depth {
            push(
                &mut out,
                Diagnostic::warn(
                    "BMP202",
                    locus.clone(),
                    format!(
                        "frontend refill {} disagrees with the analysis-wide \
                         frontend depth {}",
                        b.frontend, analysis.frontend_depth
                    ),
                ),
            );
        }

        if b.interval_len == 0 {
            push(
                &mut out,
                Diagnostic::warn(
                    "BMP202",
                    locus.clone(),
                    "interval length is 0; every interval contains at least its \
                     terminating branch"
                        .to_owned(),
                ),
            );
        }

        if let Some(p) = prev_idx {
            if b.branch_idx <= p {
                push(
                    &mut out,
                    Diagnostic::error(
                        "BMP202",
                        locus,
                        format!(
                            "branch index {} does not increase past {p}; \
                             ValidationReport::from_pairs requires sorted \
                             model records (see BMP104)",
                            b.branch_idx
                        ),
                    ),
                );
            }
        }
        prev_idx = Some(b.branch_idx);
    }

    if findings > MAX_BREAKDOWN_FINDINGS {
        out.push(Diagnostic::info(
            "BMP202",
            "penalty.breakdowns",
            format!(
                "... and {} more BMP202 finding(s)",
                findings - MAX_BREAKDOWN_FINDINGS
            ),
        ));
    }
    out
}

/// `BMP203`: checks a simulator result against the accounting identities
/// the engine maintains — every offered dispatch slot is attributed to
/// exactly one cause, the ROB-occupancy histogram covers every cycle,
/// misprediction records are ordered and internally consistent, and the
/// realized IPC respects the machine's width.
pub fn lint_sim_result(result: &SimResult, cfg: &MachineConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Slot conservation: the engine offers dispatch_width slots per cycle
    // and must classify each as used / starved / rob-full / window-full.
    let offered = result.cycles * u64::from(cfg.dispatch_width);
    let accounted = result.slots.total();
    if accounted != offered {
        out.push(
            Diagnostic::error(
                "BMP203",
                "result.slots",
                format!(
                    "slot accounting covers {accounted} slots but {} cycles × \
                     width {} offered {offered}; dispatch slots leaked",
                    result.cycles, cfg.dispatch_width
                ),
            )
            .with_suggestion(
                "every cycle must attribute dispatch_width slots to exactly one \
                 of used/frontend_starved/rob_full/window_full",
            ),
        );
    }

    // ROB histogram: one sample per cycle, one bucket per occupancy level.
    let expected_len = cfg.rob_size as usize + 1;
    if result.rob_occupancy.len() != expected_len {
        out.push(Diagnostic::error(
            "BMP203",
            "result.rob_occupancy",
            format!(
                "occupancy histogram has {} buckets; a {}-entry ROB needs {} \
                 (levels 0..={})",
                result.rob_occupancy.len(),
                cfg.rob_size,
                expected_len,
                cfg.rob_size
            ),
        ));
    }
    let sampled: u64 = result.rob_occupancy.iter().sum();
    if sampled != result.cycles {
        out.push(Diagnostic::error(
            "BMP203",
            "result.rob_occupancy",
            format!(
                "histogram samples {sampled} cycles but the run took {}; \
                 occupancy was not recorded every cycle",
                result.cycles
            ),
        ));
    }

    // Misprediction records: ordered, and fetch ≤ dispatch ≤ resolve.
    let mut bad_records = 0usize;
    let mut prev_idx: Option<usize> = None;
    for (i, m) in result.mispredicts.iter().enumerate() {
        let ordered = prev_idx.is_none_or(|p| m.branch_idx > p);
        let consistent = m.fetch_cycle <= m.dispatch_cycle && m.dispatch_cycle <= m.resolve_cycle;
        if !(ordered && consistent) {
            if bad_records < MAX_BREAKDOWN_FINDINGS {
                out.push(Diagnostic::error(
                    "BMP203",
                    format!("result.mispredicts[{i}]"),
                    if consistent {
                        format!(
                            "branch index {} does not increase past {}; records \
                             must follow trace order",
                            m.branch_idx,
                            prev_idx.unwrap_or(0)
                        )
                    } else {
                        format!(
                            "cycle order violated: fetch {} / dispatch {} / \
                             resolve {} must be non-decreasing",
                            m.fetch_cycle, m.dispatch_cycle, m.resolve_cycle
                        )
                    },
                ));
            }
            bad_records += 1;
        }
        prev_idx = Some(m.branch_idx);
    }
    if bad_records > MAX_BREAKDOWN_FINDINGS {
        out.push(Diagnostic::info(
            "BMP203",
            "result.mispredicts",
            format!(
                "... and {} more BMP203 finding(s)",
                bad_records - MAX_BREAKDOWN_FINDINGS
            ),
        ));
    }

    // Width bound: committing faster than the narrowest pipe stage is
    // impossible.
    let width_cap = cfg
        .commit_width
        .min(cfg.dispatch_width)
        .min(cfg.effective_fetch_width());
    if result.cycles > 0 && result.ipc() > f64::from(width_cap) + EPS {
        out.push(Diagnostic::error(
            "BMP203",
            "result",
            format!(
                "IPC {:.3} exceeds the machine's width cap {width_cap}; more \
                 instructions retired than the pipeline can carry",
                result.ipc()
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::PenaltyModel;
    use bmp_sim::Simulator;
    use bmp_trace::{BranchKind, MicroOp, Trace};
    use bmp_uarch::{presets, OpClass};

    /// A short loop trace with enough conditional branches to mispredict.
    fn loop_trace(iters: usize) -> Trace {
        let mut ops = Vec::new();
        for i in 0..iters {
            ops.push(MicroOp::alu(0x1000, OpClass::IntAlu, [None, None]));
            ops.push(MicroOp::load(
                0x1004,
                0x8000 + 8 * i as u64,
                [Some(1), None],
            ));
            ops.push(MicroOp::alu(0x1008, OpClass::IntMul, [Some(1), None]));
            ops.push(MicroOp::branch(
                0x100c,
                BranchKind::Conditional,
                i + 1 < iters,
                0x1000,
                [Some(1), None],
            ));
        }
        Trace::from_ops_unchecked(ops)
    }

    #[test]
    fn real_model_results_conserve() {
        let cfg = presets::baseline_4wide();
        let trace = loop_trace(300);

        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        assert!(lint_penalty_analysis(&analysis).is_empty());

        let stack = bmp_core::cpi::predict(&trace, &cfg);
        assert!(lint_cpi_stack(&stack).is_empty());

        let result = Simulator::new(cfg.clone()).run(&trace);
        assert!(lint_sim_result(&result, &cfg).is_empty());
    }

    #[test]
    fn non_conserving_cpi_stack_is_an_error() {
        // Deliberately broken: components cannot sum to the total because
        // one is negative (and the sum identity is checked via the
        // negative-component path plus the unnormalizable path below).
        let stack = CpiStack {
            instructions: 100,
            base_cycles: 50.0,
            branch_cycles: -10.0,
            icache_cycles: 0.0,
            long_dmiss_cycles: f64::NAN,
        };
        let diags = lint_cpi_stack(&stack);
        assert!(diags
            .iter()
            .any(|d| d.code == "BMP201" && d.locus == "cpi.branch_cycles"));
        assert!(diags
            .iter()
            .any(|d| d.code == "BMP201" && d.locus == "cpi.long_dmiss_cycles"));
        assert!(diags.iter().all(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn unnormalizable_cpi_stack_is_flagged() {
        let stack = CpiStack {
            instructions: 0,
            base_cycles: 25.0,
            branch_cycles: 0.0,
            icache_cycles: 0.0,
            long_dmiss_cycles: 0.0,
        };
        assert!(lint_cpi_stack(&stack)
            .iter()
            .any(|d| d.locus == "cpi.instructions" && d.severity == crate::Severity::Warn));
    }

    #[test]
    fn tampered_breakdown_is_an_error() {
        let cfg = presets::baseline_4wide();
        let mut analysis = PenaltyModel::new(cfg.clone()).analyze(&loop_trace(300));
        assert!(
            !analysis.breakdowns.is_empty(),
            "loop trace must mispredict"
        );

        // Deliberately break conservation: steal a cycle from ilp without
        // lowering local_resolution.
        analysis.breakdowns[0].ilp += 1;
        let diags = lint_penalty_analysis(&analysis);
        assert!(diags.iter().any(|d| d.code == "BMP202"
            && d.severity == crate::Severity::Error
            && d.message.contains("does not conserve")));
    }

    #[test]
    fn unsorted_breakdowns_are_an_error() {
        let cfg = presets::baseline_4wide();
        let mut analysis = PenaltyModel::new(cfg.clone()).analyze(&loop_trace(300));
        if analysis.breakdowns.len() >= 2 {
            analysis.breakdowns.swap(0, 1);
            assert!(lint_penalty_analysis(&analysis)
                .iter()
                .any(|d| d.message.contains("from_pairs")));
        }
    }

    #[test]
    fn tampered_sim_result_is_an_error() {
        let cfg = presets::baseline_4wide();
        let mut result = Simulator::new(cfg.clone()).run(&loop_trace(300));

        result.slots.used += 7;
        let diags = lint_sim_result(&result, &cfg);
        assert!(diags.iter().any(|d| d.locus == "result.slots"
            && d.severity == crate::Severity::Error
            && d.message.contains("leaked")));
    }

    #[test]
    fn truncated_rob_histogram_is_an_error() {
        let cfg = presets::baseline_4wide();
        let mut result = Simulator::new(cfg.clone()).run(&loop_trace(300));

        result.rob_occupancy.pop();
        let diags = lint_sim_result(&result, &cfg);
        assert!(diags
            .iter()
            .any(|d| d.locus == "result.rob_occupancy" && d.message.contains("buckets")));
    }

    #[test]
    fn disordered_mispredict_record_is_an_error() {
        let cfg = presets::baseline_4wide();
        let mut result = Simulator::new(cfg.clone()).run(&loop_trace(300));
        assert!(!result.mispredicts.is_empty(), "loop trace must mispredict");

        result.mispredicts[0].resolve_cycle = result.mispredicts[0].fetch_cycle;
        result.mispredicts[0].dispatch_cycle = result.mispredicts[0].fetch_cycle + 1;
        assert!(lint_sim_result(&result, &cfg)
            .iter()
            .any(|d| d.message.contains("cycle order violated")));
    }
}
