//! Property-based soundness of the static interval analysis.
//!
//! The static pass (`bmp_analyze::staticpass::bounds`) claims two
//! things (see `docs/STATIC_ANALYSIS.md` for the derivations):
//!
//! 1. Its local contributor totals are *exact* replays of the
//!    analytical model's knockout cascade — for every machine, trace
//!    and seed, [`StaticBounds::check_model`] against the model's own
//!    totals is empty.
//! 2. Its per-misprediction resolution envelope and refill identity are
//!    *proven* — every simulated total sits inside them, whichever
//!    engine produced it.
//!
//! The unit tests pin these down at the baseline machine; this suite
//! drives them across random `(MachineConfig, WorkloadProfile, seed)`
//! triples and checks the simulator claim against **both** engines (the
//! event-driven core and the frozen reference engine), so a bound that
//! only breaks under an odd width/window/latency combination still has
//! a chance to surface.

use bmp_analyze::staticpass::bounds;
use bmp_core::{cpi, ModelMetrics, PenaltyModel};
use bmp_sim::Simulator;
use bmp_uarch::{LatencyTable, MachineConfig, MachineConfigBuilder, PredictorConfig};
use bmp_workloads::WorkloadProfile;
use proptest::prelude::*;

/// A strategy over valid workload profiles (a representative subspace,
/// mirroring `crates/sim/tests/engine_equivalence.rs`).
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.05f64..0.4,                              // load_frac
        0.0f64..0.2,                               // store_frac
        1.5f64..10.0,                              // dep mean distance
        3.0f64..14.0,                              // avg block size
        0.0f64..0.8,                               // easy_frac
        0.0f64..0.2,                               // pattern_frac
        prop::sample::select(vec![8u64, 32, 128]), // code KiB
        0.3f64..1.0,                               // hot_frac
    )
        .prop_map(|(load, store, dep, block, easy, pattern, code_kib, hot)| {
            let mut p = WorkloadProfile {
                name: "prop".into(),
                ..WorkloadProfile::default()
            };
            p.load_frac = load;
            p.store_frac = store;
            p.deps.mean_distance = dep;
            p.branches.avg_block_size = block;
            p.branches.easy_frac = easy;
            p.branches.pattern_frac = pattern;
            p.branches.code_footprint = code_kib * 1024;
            p.memory.hot_frac = hot;
            p.memory.warm_frac = (1.0 - hot) * 0.7;
            p
        })
        .prop_filter("profile must validate", |p| p.validate().is_ok())
}

/// A strategy over direction predictors, including `Perfect` so the
/// zero-interval degenerate case is exercised.
fn arb_predictor() -> impl Strategy<Value = PredictorConfig> {
    (
        prop::sample::select((0usize..6).collect::<Vec<_>>()),
        prop::sample::select(vec![256u32, 1024]),
        2u32..=8,
    )
        .prop_map(|(kind, entries, history_bits)| match kind {
            0 => PredictorConfig::AlwaysTaken,
            1 => PredictorConfig::AlwaysNotTaken,
            2 => PredictorConfig::Perfect,
            3 => PredictorConfig::Bimodal { entries },
            4 => PredictorConfig::GShare {
                entries,
                history_bits,
            },
            _ => PredictorConfig::Tournament {
                entries,
                history_bits,
            },
        })
}

/// A strategy over machine configurations stressing the envelope's
/// parameters: narrow and wide pipelines, windows from tiny to large
/// (the ROB anchor `M`), shallow and deep frontends (the refill term),
/// and scaled latencies (the `max_lat`/`max_occ` terms).
fn arb_config() -> impl Strategy<Value = MachineConfig> {
    (
        prop::sample::select(vec![1u32, 2, 4, 8]),      // width
        prop::sample::select(vec![16u32, 32, 64, 256]), // window
        prop::sample::select(vec![1u32, 5, 12, 30]),    // frontend depth
        prop::sample::select(vec![1.0f64, 2.0, 5.0]),   // latency scale
        arb_predictor(),
    )
        .prop_map(|(width, window, depth, lat, predictor)| {
            MachineConfigBuilder::new()
                .width(width)
                .window_size(window)
                .rob_size(window * 2)
                .frontend_depth(depth)
                .latencies(LatencyTable::default().scaled(lat))
                .predictor(predictor)
                .build()
                .expect("strategy only emits valid configs")
        })
}

proptest! {
    // Each case runs the static pass, the analytical model, and both
    // simulator engines over a few-thousand-op trace, so keep the case
    // count moderate; the space is re-sampled every CI run.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Claim 1: the static contributor totals equal the model's own
    /// totals exactly, and the model's resolution/carryover sit inside
    /// the proven envelope.
    #[test]
    fn static_bounds_match_the_model_exactly(
        cfg in arb_config(),
        profile in arb_profile(),
        seed in 0u64..1000,
    ) {
        let trace = profile.generate(2_000, seed);
        let b = bounds::compute(&cfg, &trace);
        let analysis = PenaltyModel::new(cfg.clone()).analyze(&trace);
        let m = ModelMetrics::from_analysis(&analysis, cpi::predict(&trace, &cfg));
        prop_assert_eq!(m.intervals, b.intervals, "interval segmentation agrees");
        let violations = b.check_model(&m);
        prop_assert!(violations.is_empty(), "model violations: {:?}", violations);
        // Every local contributor is an exact replay, not just a range.
        for (name, bound) in b.contributor_rows() {
            if !matches!(name, "carryover (ii)" | "resolution" | "penalty") {
                prop_assert!(bound.is_exact(), "{} must be exact", name);
            }
        }
    }

    /// Claim 2: simulated resolution/refill totals from BOTH engines sit
    /// inside the static bounds (the BMP603 envelope, here checked with
    /// the exact machine configuration rather than the baseline).
    #[test]
    fn static_bounds_bracket_both_engines(
        cfg in arb_config(),
        profile in arb_profile(),
        seed in 0u64..1000,
    ) {
        let trace = profile.generate(2_000, seed);
        let b = bounds::compute(&cfg, &trace);
        let sim = Simulator::new(cfg);
        for (engine, res) in [
            ("event", sim.run_compiled(&trace.compile())),
            ("reference", sim.run_reference(&trace)),
        ] {
            let violations = b.check_sim(
                res.mispredicts.len() as u64,
                res.resolution_total(),
                res.refill_total(),
            );
            prop_assert!(
                violations.is_empty(),
                "{} engine escaped the bounds: {:?}",
                engine,
                violations
            );
        }
    }
}
