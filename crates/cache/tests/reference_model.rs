//! Property test: `SetAssocCache` against an executable reference model.
//!
//! The reference is a per-set LRU list built on plain `Vec`s — obviously
//! correct, hopelessly slow — checked against the production cache on
//! random access streams.

use bmp_cache::SetAssocCache;
use bmp_uarch::CacheGeometry;
use proptest::prelude::*;

/// The obviously-correct model: per set, a most-recent-first list of
/// resident block numbers.
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_shift: u32,
    set_count: u64,
}

impl RefCache {
    fn new(geom: CacheGeometry) -> Self {
        Self {
            sets: vec![Vec::new(); geom.sets() as usize],
            ways: geom.ways() as usize,
            line_shift: geom.line_bytes().trailing_zeros(),
            set_count: geom.sets(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = (block % self.set_count) as usize;
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&b| b == block) {
            list.remove(pos);
            list.insert(0, block);
            true
        } else {
            list.insert(0, block);
            list.truncate(self.ways);
            false
        }
    }
}

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    (
        prop::sample::select(vec![512u64, 1024, 4096, 16384]),
        prop::sample::select(vec![16u32, 32, 64]),
        prop::sample::select(vec![1u32, 2, 4, 8]),
    )
        .prop_filter_map("valid geometry", |(size, line, ways)| {
            CacheGeometry::new(size, line, ways, 1).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every access's hit/miss outcome matches the reference LRU model,
    /// for arbitrary geometries and access streams.
    #[test]
    fn matches_reference_lru(
        geom in arb_geometry(),
        // Addresses drawn from a small space so sets conflict heavily.
        addrs in prop::collection::vec(0u64..32_768, 1..400),
    ) {
        let mut real = SetAssocCache::new(geom);
        let mut reference = RefCache::new(geom);
        for (i, &a) in addrs.iter().enumerate() {
            let r = real.access(a);
            let e = reference.access(a);
            prop_assert_eq!(r, e, "divergence at access {} (addr {:#x})", i, a);
        }
    }

    /// `probe` never lies: it agrees with what a subsequent access sees,
    /// and never changes state.
    #[test]
    fn probe_is_consistent_and_pure(
        geom in arb_geometry(),
        addrs in prop::collection::vec(0u64..32_768, 1..200),
    ) {
        let mut c = SetAssocCache::new(geom);
        for &a in &addrs {
            let p1 = c.probe(a);
            let p2 = c.probe(a);
            prop_assert_eq!(p1, p2, "probe must be idempotent");
            let hit = c.access(a);
            prop_assert_eq!(p1, hit, "probe must predict the access outcome");
        }
    }

    /// Statistics always reconcile: hits + misses == accesses.
    #[test]
    fn stats_reconcile(
        geom in arb_geometry(),
        addrs in prop::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let mut c = SetAssocCache::new(geom);
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert_eq!(s.hits() + s.misses(), s.accesses());
    }
}
