//! Cache statistics.

use serde::{Deserialize, Serialize};

/// Access/miss accounting for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    accesses: u64,
    misses: u64,
}

impl CacheStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs statistics from raw counters — the deserialization
    /// path for the bench crate's persisted-artifact codec. `misses` is
    /// clamped to `accesses` so [`hits`](Self::hits) cannot underflow on
    /// decoded data.
    pub fn from_raw(accesses: u64, misses: u64) -> Self {
        Self {
            accesses,
            misses: misses.min(accesses),
        }
    }

    /// Records one access and whether it hit.
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        if !hit {
            self.misses += 1;
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Miss rate (0 when no accesses yet).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-instruction for a run of `total_instructions`.
    pub fn mpki(&self, total_instructions: u64) -> f64 {
        if total_instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / total_instructions as f64
        }
    }

    /// Zeroes the counters (cache contents are unaffected).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A point-in-time snapshot of every level of a
/// [`MemoryHierarchy`](crate::MemoryHierarchy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics (zero when no L2 is configured).
    pub l2: CacheStats,
    /// Number of data accesses classed as short misses (L1D miss, L2 hit).
    pub short_dmisses: u64,
    /// Number of data accesses classed as long misses (to memory).
    pub long_dmisses: u64,
    /// Data-side prefetch fills issued by the stride prefetcher.
    pub dprefetches: u64,
    /// Instruction-side next-line prefetch fills issued.
    pub iprefetches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_mpki() {
        let mut s = CacheStats::new();
        s.record(true);
        s.record(false);
        s.record(true);
        s.record(false);
        assert_eq!(s.hits(), 2);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.mpki(2000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.mpki(100), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }
}
