//! Hardware prefetchers: the PC-indexed stride reference-prediction table.

/// One RPT entry: the last address and detected stride of a load PC.
#[derive(Debug, Clone, Copy, Default)]
struct RptEntry {
    tag: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    /// 2-bit confidence: >= 2 means the stride is trusted.
    confidence: u8,
}

/// The prefetch addresses emitted by one [`StridePrefetcher::observe`]
/// call: `addr + stride * k` for `k` in `1..=degree`, materialized lazily
/// so the hot path never touches the heap.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchBatch {
    base: u64,
    stride: i64,
    count: u32,
    k: u32,
}

impl PrefetchBatch {
    const EMPTY: Self = Self {
        base: 0,
        stride: 0,
        count: 0,
        k: 0,
    };

    /// `true` when the observation emitted no prefetches.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Addresses remaining in the batch.
    pub fn len(&self) -> usize {
        (self.count - self.k) as usize
    }
}

impl Iterator for PrefetchBatch {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.k == self.count {
            return None;
        }
        self.k += 1;
        Some(
            self.base
                .wrapping_add((self.stride * i64::from(self.k)) as u64),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len(), Some(self.len()))
    }
}

impl ExactSizeIterator for PrefetchBatch {}

/// A classic reference prediction table (Chen & Baer): per-PC stride
/// detection with 2-bit confidence, emitting `degree` prefetch addresses
/// once a stride repeats.
///
/// # Examples
///
/// ```
/// use bmp_cache::StridePrefetcher;
///
/// let mut p = StridePrefetcher::new(16, 2);
/// assert!(p.observe(0x100, 0x1000).is_empty()); // first sighting
/// assert!(p.observe(0x100, 0x1040).is_empty()); // stride learned
/// let pf = p.observe(0x100, 0x1080);            // stride confirmed
/// assert_eq!(pf.collect::<Vec<_>>(), vec![0x10c0, 0x1100]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<RptEntry>,
    entries: u32,
    degree: u32,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `entries` RPT slots emitting `degree`
    /// lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    pub fn new(entries: u32, degree: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        assert!(degree > 0);
        Self {
            table: vec![RptEntry::default(); entries as usize],
            entries,
            degree,
            issued: 0,
        }
    }

    /// Restores the just-built state: an empty table and a zeroed issue
    /// counter. The table is a few hundred entries at most, so this is
    /// cheap enough for per-run reuse.
    pub fn reset(&mut self) {
        self.table.fill(RptEntry::default());
        self.issued = 0;
    }

    /// Observes a data access by the instruction at `pc` to `addr` and
    /// returns the addresses to prefetch (possibly empty).
    pub fn observe(&mut self, pc: u64, addr: u64) -> PrefetchBatch {
        let idx = ((pc >> 2) & u64::from(self.entries - 1)) as usize;
        let e = &mut self.table[idx];
        if !e.valid || e.tag != pc {
            *e = RptEntry {
                tag: pc,
                valid: true,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return PrefetchBatch::EMPTY;
        }
        let new_stride = addr.wrapping_sub(e.last_addr) as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= 1 && e.stride != 0 {
            self.issued += u64::from(self.degree);
            return PrefetchBatch {
                base: addr,
                stride: e.stride,
                count: self.degree,
                k: 0,
            };
        }
        PrefetchBatch::EMPTY
    }

    /// Total prefetch addresses emitted.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Zeroes the issue counter (table state is kept).
    pub fn reset_issued(&mut self) {
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_positive_stride() {
        let mut p = StridePrefetcher::new(16, 1);
        assert!(p.observe(0x10, 100).is_empty());
        assert!(p.observe(0x10, 164).is_empty());
        assert_eq!(p.observe(0x10, 228).collect::<Vec<_>>(), vec![292]);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn learns_negative_stride() {
        let mut p = StridePrefetcher::new(16, 1);
        p.observe(0x10, 1000);
        p.observe(0x10, 936);
        assert_eq!(p.observe(0x10, 872).collect::<Vec<_>>(), vec![808]);
    }

    #[test]
    fn random_addresses_stay_quiet() {
        let mut p = StridePrefetcher::new(16, 2);
        let mut issued = 0;
        for addr in [5u64, 900, 32, 7777, 12, 90000, 4, 512] {
            issued += p.observe(0x10, addr).len();
        }
        assert!(
            issued <= 2,
            "random stream should rarely trigger, got {issued}"
        );
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::new(16, 2);
        for _ in 0..10 {
            assert!(p.observe(0x10, 0x500).is_empty());
        }
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = StridePrefetcher::new(16, 1);
        p.observe(0x10, 0);
        p.observe(0x14, 1000);
        p.observe(0x10, 64);
        p.observe(0x14, 1008);
        assert_eq!(p.observe(0x10, 128).collect::<Vec<_>>(), vec![192]);
        assert_eq!(p.observe(0x14, 1016).collect::<Vec<_>>(), vec![1024]);
    }

    #[test]
    fn aliasing_pcs_retag() {
        let mut p = StridePrefetcher::new(4, 1);
        p.observe(0x10, 0);
        p.observe(0x10, 64);
        // 0x10 + 4*4*4 aliases slot (same index, different tag).
        p.observe(0x50, 5000);
        // The entry was stolen; 0x10 must re-learn.
        assert!(p.observe(0x10, 128).is_empty());
    }

    #[test]
    fn degree_controls_depth() {
        let mut p = StridePrefetcher::new(16, 4);
        p.observe(0x10, 0);
        p.observe(0x10, 64);
        assert_eq!(
            p.observe(0x10, 128).collect::<Vec<_>>(),
            vec![192, 256, 320, 384]
        );
    }
}
