//! Multi-level memory hierarchy.

use bmp_uarch::{HierarchyConfig, PrefetchConfig};

use crate::cache::SetAssocCache;
use crate::prefetch::StridePrefetcher;
use crate::stats::HierarchyStats;

/// Classification of a data access, in the vocabulary of the interval
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataOutcome {
    /// Hit in the L1 data cache: steady-state behaviour.
    L1Hit,
    /// L1 miss that hits in the L2 — a *short* miss, contributor (v) of
    /// the branch misprediction penalty.
    ShortMiss,
    /// Miss to main memory — a *long* miss, an interval-terminating miss
    /// event of its own.
    LongMiss,
}

impl DataOutcome {
    /// Returns `true` for short misses.
    pub fn is_short_miss(self) -> bool {
        matches!(self, DataOutcome::ShortMiss)
    }

    /// Returns `true` for long misses.
    pub fn is_long_miss(self) -> bool {
        matches!(self, DataOutcome::LongMiss)
    }
}

/// Result of a data-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Total access latency in cycles.
    pub latency: u32,
    /// Interval-model classification.
    pub outcome: DataOutcome,
}

/// Result of an instruction fetch access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchAccess {
    /// Total access latency in cycles.
    pub latency: u32,
    /// `true` when the L1I missed (an I-cache miss event when the stall is
    /// long enough to interrupt dispatch).
    pub l1i_miss: bool,
    /// `true` when the fetch went all the way to memory.
    pub long_miss: bool,
}

/// A two-level memory hierarchy: split L1 caches over an optional unified
/// L2 over a fixed-latency memory.
///
/// Latencies compose cumulatively: an access that misses at a level pays
/// that level's hit latency plus the next level's. Fills are inclusive:
/// a line fetched from memory is installed in the L2 and the requesting L1.
///
/// # Examples
///
/// ```
/// use bmp_cache::{DataOutcome, MemoryHierarchy};
/// use bmp_uarch::HierarchyConfig;
///
/// let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
/// assert_eq!(mem.data_access(0x100).outcome, DataOutcome::LongMiss);
/// assert_eq!(mem.data_access(0x100).outcome, DataOutcome::L1Hit);
/// // A different line in the same L2 block region:
/// let s = mem.stats();
/// assert_eq!(s.long_dmisses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: Option<SetAssocCache>,
    mem_latency: u32,
    short_dmisses: u64,
    long_dmisses: u64,
    prefetch_cfg: PrefetchConfig,
    stride_prefetcher: Option<StridePrefetcher>,
    iprefetches: u64,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy from its configuration.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        let prefetch_cfg = cfg.prefetch();
        let stride_prefetcher = prefetch_cfg
            .l1d_stride
            .then(|| StridePrefetcher::new(prefetch_cfg.stride_table_entries, prefetch_cfg.degree));
        Self {
            l1i: SetAssocCache::new(cfg.l1i()),
            l1d: SetAssocCache::new(cfg.l1d()),
            l2: cfg.l2().map(SetAssocCache::new),
            mem_latency: cfg.mem_latency(),
            short_dmisses: 0,
            long_dmisses: 0,
            prefetch_cfg,
            stride_prefetcher,
            iprefetches: 0,
        }
    }

    /// Performs an instruction fetch of the line containing `pc`.
    pub fn fetch_access(&mut self, pc: u64) -> FetchAccess {
        let l1_lat = self.l1i.geometry().hit_latency();
        if self.l1i.access(pc) {
            return FetchAccess {
                latency: l1_lat,
                l1i_miss: false,
                long_miss: false,
            };
        }
        if self.prefetch_cfg.l1i_next_line {
            // Next-line prefetch: bring the following line in alongside
            // the demand miss.
            let next = pc.wrapping_add(u64::from(self.l1i.geometry().line_bytes()));
            self.l1i.fill_quiet(next);
            if let Some(l2) = &mut self.l2 {
                l2.fill_quiet(next);
            }
            self.iprefetches += 1;
        }
        match &mut self.l2 {
            Some(l2) => {
                let l2_lat = l2.geometry().hit_latency();
                if l2.access(pc) {
                    FetchAccess {
                        latency: l1_lat + l2_lat,
                        l1i_miss: true,
                        long_miss: false,
                    }
                } else {
                    FetchAccess {
                        latency: l1_lat + l2_lat + self.mem_latency,
                        l1i_miss: true,
                        long_miss: true,
                    }
                }
            }
            None => FetchAccess {
                latency: l1_lat + self.mem_latency,
                l1i_miss: true,
                long_miss: true,
            },
        }
    }

    /// Performs a data access (load or store) to `addr` issued by the
    /// instruction at `pc`, feeding the stride prefetcher when enabled.
    pub fn data_access_at(&mut self, pc: u64, addr: u64) -> DataAccess {
        let access = self.data_access(addr);
        if let Some(p) = &mut self.stride_prefetcher {
            let targets = p.observe(pc, addr);
            for t in targets {
                self.l1d.fill_quiet(t);
                if let Some(l2) = &mut self.l2 {
                    l2.fill_quiet(t);
                }
            }
        }
        access
    }

    /// Performs a data access (load or store — the timing model treats
    /// both as allocate-on-miss) to `addr`, bypassing the prefetcher.
    pub fn data_access(&mut self, addr: u64) -> DataAccess {
        let l1_lat = self.l1d.geometry().hit_latency();
        if self.l1d.access(addr) {
            return DataAccess {
                latency: l1_lat,
                outcome: DataOutcome::L1Hit,
            };
        }
        match &mut self.l2 {
            Some(l2) => {
                let l2_lat = l2.geometry().hit_latency();
                if l2.access(addr) {
                    self.short_dmisses += 1;
                    DataAccess {
                        latency: l1_lat + l2_lat,
                        outcome: DataOutcome::ShortMiss,
                    }
                } else {
                    self.long_dmisses += 1;
                    DataAccess {
                        latency: l1_lat + l2_lat + self.mem_latency,
                        outcome: DataOutcome::LongMiss,
                    }
                }
            }
            None => {
                self.long_dmisses += 1;
                DataAccess {
                    latency: l1_lat + self.mem_latency,
                    outcome: DataOutcome::LongMiss,
                }
            }
        }
    }

    /// Snapshot of per-level statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.as_ref().map(|c| c.stats()).unwrap_or_default(),
            short_dmisses: self.short_dmisses,
            long_dmisses: self.long_dmisses,
            dprefetches: self.stride_prefetcher.as_ref().map_or(0, |p| p.issued()),
            iprefetches: self.iprefetches,
        }
    }

    /// Zeroes every statistic while keeping all cache contents and
    /// predictor-visible state — the warmup idiom.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
        self.short_dmisses = 0;
        self.long_dmisses = 0;
        self.iprefetches = 0;
        if let Some(p) = &mut self.stride_prefetcher {
            p.reset_issued();
        }
    }

    /// Restores the exact just-built state of the whole hierarchy —
    /// empty caches, zeroed statistics and counters, pristine
    /// prefetcher — without reallocating the line arrays. A reused
    /// hierarchy behaves bit-identically to a fresh
    /// [`MemoryHierarchy::new`] over the same configuration.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        if let Some(l2) = &mut self.l2 {
            l2.reset();
        }
        self.short_dmisses = 0;
        self.long_dmisses = 0;
        self.iprefetches = 0;
        if let Some(p) = &mut self.stride_prefetcher {
            p.reset();
        }
    }

    /// Invalidates every level (statistics are kept).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::CacheGeometry;

    fn small_hierarchy() -> MemoryHierarchy {
        let l1 = CacheGeometry::new(1024, 64, 2, 2).unwrap();
        let l2 = CacheGeometry::new(8192, 64, 4, 10).unwrap();
        MemoryHierarchy::new(&HierarchyConfig::new(l1, l1, Some(l2), 100).unwrap())
    }

    #[test]
    fn data_latency_composition() {
        let mut m = small_hierarchy();
        let long = m.data_access(0x4000);
        assert_eq!(long.latency, 2 + 10 + 100);
        assert_eq!(long.outcome, DataOutcome::LongMiss);
        let hit = m.data_access(0x4000);
        assert_eq!(hit.latency, 2);
        assert_eq!(hit.outcome, DataOutcome::L1Hit);
    }

    #[test]
    fn short_miss_requires_l2_residency() {
        let mut m = small_hierarchy();
        // Fill L1 (1 KiB = 16 lines, 2-way, 8 sets) with conflicting lines
        // to evict 0x0 from L1 while it stays in the 8 KiB L2.
        m.data_access(0x0);
        m.data_access(0x400); // same L1 set (1024-byte stride), same L2 set region? L2 has 32 sets: 0x400>>6=16, set 16 — different L2 set, fine.
        m.data_access(0x800);
        // 2-way L1 set now held {0x400, 0x800}; 0x0 evicted.
        let again = m.data_access(0x0);
        assert_eq!(again.outcome, DataOutcome::ShortMiss);
        assert_eq!(again.latency, 2 + 10);
        assert_eq!(m.stats().short_dmisses, 1);
        assert_eq!(m.stats().long_dmisses, 3);
    }

    #[test]
    fn fetch_and_data_sides_are_split() {
        let mut m = small_hierarchy();
        let f = m.fetch_access(0x1000);
        assert!(f.l1i_miss && f.long_miss);
        // The data side never saw 0x1000, but the L2 did (unified).
        let d = m.data_access(0x1000);
        assert_eq!(
            d.outcome,
            DataOutcome::ShortMiss,
            "unified L2 now holds the line"
        );
    }

    #[test]
    fn fetch_hit_latency() {
        let mut m = small_hierarchy();
        m.fetch_access(0x0);
        let f = m.fetch_access(0x0);
        assert!(!f.l1i_miss);
        assert_eq!(f.latency, 2);
    }

    #[test]
    fn no_l2_hierarchy_long_misses_only() {
        let l1 = CacheGeometry::new(1024, 64, 2, 2).unwrap();
        let mut m = MemoryHierarchy::new(&HierarchyConfig::new(l1, l1, None, 50).unwrap());
        let d = m.data_access(0x9000);
        assert_eq!(d.outcome, DataOutcome::LongMiss);
        assert_eq!(d.latency, 52);
        assert_eq!(m.stats().short_dmisses, 0);
    }

    #[test]
    fn stats_snapshot_counts_levels() {
        let mut m = small_hierarchy();
        m.data_access(0x0);
        m.data_access(0x0);
        m.fetch_access(0x0);
        let s = m.stats();
        assert_eq!(s.l1d.accesses(), 2);
        assert_eq!(s.l1i.accesses(), 1);
        // L2 saw the L1D long miss and the L1I miss (0x0 was filled into
        // L2 by the data access, so the fetch miss hits L2).
        assert_eq!(s.l2.accesses(), 2);
        assert_eq!(s.l2.misses(), 1);
    }

    #[test]
    fn flush_clears_residency() {
        let mut m = small_hierarchy();
        m.data_access(0x0);
        m.flush();
        assert_eq!(m.data_access(0x0).outcome, DataOutcome::LongMiss);
    }

    #[test]
    fn stride_prefetch_turns_streams_into_hits() {
        let l1 = CacheGeometry::new(1024, 64, 2, 2).unwrap();
        let l2 = CacheGeometry::new(8192, 64, 4, 10).unwrap();
        let base = HierarchyConfig::new(l1, l1, Some(l2), 100).unwrap();
        let with_pf = base
            .with_prefetch(bmp_uarch::PrefetchConfig::aggressive())
            .unwrap();
        let run = |cfg: &HierarchyConfig| {
            let mut m = MemoryHierarchy::new(cfg);
            let mut misses = 0;
            // A 64-byte-stride stream from one load PC.
            for i in 0..64u64 {
                let a = m.data_access_at(0x100, 0x10_0000 + i * 64);
                if a.outcome != DataOutcome::L1Hit {
                    misses += 1;
                }
            }
            (misses, m.stats().dprefetches)
        };
        let (m_off, pf_off) = run(&base);
        let (m_on, pf_on) = run(&with_pf);
        assert_eq!(pf_off, 0);
        assert!(pf_on > 50, "stream should trigger the prefetcher: {pf_on}");
        assert!(
            m_on * 4 < m_off,
            "prefetching must remove most stream misses: {m_on} vs {m_off}"
        );
    }

    #[test]
    fn next_line_iprefetch_counts_and_helps() {
        let l1 = CacheGeometry::new(1024, 64, 2, 2).unwrap();
        let l2 = CacheGeometry::new(8192, 64, 4, 10).unwrap();
        let cfg = HierarchyConfig::new(l1, l1, Some(l2), 100)
            .unwrap()
            .with_prefetch(bmp_uarch::PrefetchConfig::aggressive())
            .unwrap();
        let mut m = MemoryHierarchy::new(&cfg);
        let first = m.fetch_access(0x0);
        assert!(first.l1i_miss);
        let second = m.fetch_access(0x40);
        assert!(!second.l1i_miss, "next line was prefetched");
        assert_eq!(m.stats().iprefetches, 1);
    }

    #[test]
    fn data_access_at_without_prefetcher_matches_plain() {
        let mut a = small_hierarchy();
        let mut b = small_hierarchy();
        for i in 0..32u64 {
            let x = a.data_access_at(0x10, i * 128);
            let y = b.data_access(i * 128);
            assert_eq!(x, y);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn hierarchy_reset_replays_exactly_like_fresh() {
        let l1 = CacheGeometry::new(1024, 64, 2, 2).unwrap();
        let l2 = CacheGeometry::new(8192, 64, 4, 10).unwrap();
        let cfg = HierarchyConfig::new(l1, l1, Some(l2), 100)
            .unwrap()
            .with_prefetch(bmp_uarch::PrefetchConfig::aggressive())
            .unwrap();
        let mut reused = MemoryHierarchy::new(&cfg);
        for i in 0..512u64 {
            reused.data_access_at(i % 7 * 4, i * 48);
            reused.fetch_access(i * 32);
        }
        reused.reset();
        let mut fresh = MemoryHierarchy::new(&cfg);
        for i in 0..512u64 {
            assert_eq!(
                reused.data_access_at(i % 5 * 4, i * 80),
                fresh.data_access_at(i % 5 * 4, i * 80)
            );
            assert_eq!(reused.fetch_access(i * 56), fresh.fetch_access(i * 56));
        }
        assert_eq!(reused.stats(), fresh.stats());
    }

    #[test]
    fn outcome_helpers() {
        assert!(DataOutcome::ShortMiss.is_short_miss());
        assert!(!DataOutcome::ShortMiss.is_long_miss());
        assert!(DataOutcome::LongMiss.is_long_miss());
        assert!(!DataOutcome::L1Hit.is_short_miss());
    }
}
