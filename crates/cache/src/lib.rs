//! Cache and memory-hierarchy models for the `mispredict` workspace.
//!
//! The interval model cares about three classes of memory behaviour:
//!
//! * **L1 hits** — part of steady-state execution;
//! * **short misses** (L1 miss, L2 hit) — contributor (v) of the branch
//!   misprediction penalty: they inflate the critical path to the branch
//!   without being miss events themselves;
//! * **long misses** (to memory) — interval-terminating miss events in
//!   their own right.
//!
//! [`MemoryHierarchy`] resolves every access into one of these classes and
//! a latency; [`SetAssocCache`] is the underlying single-level model.
//! The class boundary matters downstream: short misses surface as the
//! `short_dmiss` contributor term and long misses as `dlong` intervals
//! in the accounting records of `bmp_core::accounting` (see
//! `docs/THEORY.md` §the contributors, `docs/OBSERVABILITY.md` §schema).
//!
//! # Examples
//!
//! ```
//! use bmp_cache::{DataOutcome, MemoryHierarchy};
//! use bmp_uarch::HierarchyConfig;
//!
//! let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
//! let first = mem.data_access(0x1_0000);
//! assert_eq!(first.outcome, DataOutcome::LongMiss);
//! let second = mem.data_access(0x1_0000);
//! assert_eq!(second.outcome, DataOutcome::L1Hit);
//! assert!(second.latency < first.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod prefetch;
mod stats;

pub use cache::SetAssocCache;
pub use hierarchy::{DataAccess, DataOutcome, FetchAccess, MemoryHierarchy};
pub use prefetch::{PrefetchBatch, StridePrefetcher};
pub use stats::{CacheStats, HierarchyStats};
