//! Single-level set-associative cache.

use bmp_uarch::{CacheGeometry, ReplacementKind};

use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    /// Epoch the line was filled in; valid iff it matches the cache's
    /// current epoch. Bumping the cache epoch invalidates every line in
    /// O(1) — `flush` and `reset` cost nothing regardless of capacity.
    epoch: u64,
    /// LRU timestamp.
    last_use: u64,
    /// FIFO timestamp (set at fill, untouched by hits).
    inserted: u64,
}

/// A set-associative cache with configurable replacement.
///
/// The model tracks presence only (tags), which is all the timing models
/// need; data values are never stored. Stores are modeled as
/// write-allocate (a store miss fills the line like a load miss).
///
/// # Examples
///
/// ```
/// use bmp_cache::SetAssocCache;
/// use bmp_uarch::CacheGeometry;
///
/// let geom = CacheGeometry::new(1024, 64, 2, 1).unwrap();
/// let mut c = SetAssocCache::new(geom);
/// assert!(!c.access(0x40));   // cold miss
/// assert!(c.access(0x40));    // now resident
/// assert!(c.access(0x44));    // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    /// Current validity epoch; lines are resident iff their epoch
    /// matches. Starts at 1 so default (zeroed) lines are invalid.
    epoch: u64,
    tick: u64,
    rng_state: u64,
    stats: CacheStats,
}

/// Seed of the xorshift64* stream behind [`ReplacementKind::Random`];
/// `reset` restores it so a reused cache replays the exact victim
/// sequence of a freshly built one.
const RNG_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets() as usize;
        let ways = geometry.ways() as usize;
        Self {
            geometry,
            lines: vec![Line::default(); sets * ways],
            sets,
            ways,
            line_shift: geometry.line_bytes().trailing_zeros(),
            set_mask: geometry.sets() - 1,
            epoch: 1,
            tick: 0,
            rng_state: RNG_SEED,
            stats: CacheStats::default(),
        }
    }

    /// Restores the exact just-built state — empty cache, zeroed
    /// statistics, pristine replacement stream — without touching the
    /// line array (stale lines die by epoch). O(1), so run harnesses can
    /// reuse one allocation across simulations and still get results
    /// bit-identical to a fresh [`SetAssocCache::new`].
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.tick = 0;
        self.rng_state = RNG_SEED;
        self.stats.reset();
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the access statistics, keeping the cache contents — the
    /// warmup idiom: run, reset, measure.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.line_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.sets.trailing_zeros(),
        )
    }

    /// Returns `true` if `addr`'s line is resident, *without* updating
    /// replacement state or statistics (a probe, not an access).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.epoch == self.epoch && l.tag == tag)
    }

    /// Accesses `addr`: returns `true` on hit. On miss the line is filled,
    /// evicting per the replacement policy.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        // Hit path.
        let epoch = self.epoch;
        for line in &mut self.lines[base..base + self.ways] {
            if line.epoch == epoch && line.tag == tag {
                line.last_use = self.tick;
                self.stats.record(true);
                return true;
            }
        }
        // Miss: pick a victim.
        let victim = self.pick_victim(base);
        let tick = self.tick;
        let line = &mut self.lines[base + victim];
        line.tag = tag;
        line.epoch = epoch;
        line.last_use = tick;
        line.inserted = tick;
        self.stats.record(false);
        false
    }

    fn pick_victim(&mut self, base: usize) -> usize {
        // Prefer an invalid way.
        for (i, line) in self.lines[base..base + self.ways].iter().enumerate() {
            if line.epoch != self.epoch {
                return i;
            }
        }
        match self.geometry.replacement() {
            ReplacementKind::Lru => self.lines[base..base + self.ways]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("ways >= 1"),
            ReplacementKind::Fifo => self.lines[base..base + self.ways]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.inserted)
                .map(|(i, _)| i)
                .expect("ways >= 1"),
            ReplacementKind::Random => {
                // xorshift64*
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % self.ways as u64) as usize
            }
        }
    }

    /// Installs `addr`'s line without touching hit/miss statistics —
    /// used for prefetch fills. Replacement state is updated (the line
    /// becomes most-recent) and a victim is chosen normally. A line that
    /// is already resident is refreshed.
    pub fn fill_quiet(&mut self, addr: u64) {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        let epoch = self.epoch;
        for line in &mut self.lines[base..base + self.ways] {
            if line.epoch == epoch && line.tag == tag {
                line.last_use = self.tick;
                return;
            }
        }
        let victim = self.pick_victim(base);
        let tick = self.tick;
        let line = &mut self.lines[base + victim];
        line.tag = tag;
        line.epoch = epoch;
        line.last_use = tick;
        line.inserted = tick;
    }

    /// Invalidates every line (statistics are kept). O(1): bumps the
    /// validity epoch instead of walking the line array.
    pub fn flush(&mut self) {
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(size: u64, line: u32, ways: u32) -> CacheGeometry {
        CacheGeometry::new(size, line, ways, 1).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(geom(1024, 64, 2));
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f), "same line");
        assert!(!c.access(0x1040), "next line");
        assert_eq!(c.stats().misses(), 2);
        assert_eq!(c.stats().accesses(), 4);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = SetAssocCache::new(geom(1024, 64, 2));
        assert!(!c.probe(0x0));
        assert_eq!(c.stats().accesses(), 0);
        c.access(0x0);
        assert!(c.probe(0x0));
        assert_eq!(c.stats().accesses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 8 sets of 64 B: addresses 0x0, 0x200, 0x400 share set 0.
        let mut c = SetAssocCache::new(geom(1024, 64, 2));
        c.access(0x0);
        c.access(0x200);
        c.access(0x0); // touch 0x0: 0x200 is now LRU
        c.access(0x400); // evicts 0x200
        assert!(c.probe(0x0));
        assert!(!c.probe(0x200));
        assert!(c.probe(0x400));
    }

    #[test]
    fn fifo_ignores_reuse() {
        let g = geom(1024, 64, 2).with_replacement(ReplacementKind::Fifo);
        let mut c = SetAssocCache::new(g);
        c.access(0x0);
        c.access(0x200);
        c.access(0x0); // reuse does not refresh FIFO order
        c.access(0x400); // evicts 0x0 (oldest insert)
        assert!(!c.probe(0x0));
        assert!(c.probe(0x200));
    }

    #[test]
    fn random_replacement_stays_within_set() {
        let g = geom(1024, 64, 2).with_replacement(ReplacementKind::Random);
        let mut c = SetAssocCache::new(g);
        // Fill set 0 beyond capacity repeatedly; other sets must be
        // untouched.
        c.access(0x1040); // set 1 resident
        for i in 0..32u64 {
            c.access(i * 0x200);
        }
        assert!(c.probe(0x1040), "random policy must not evict other sets");
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut c = SetAssocCache::new(geom(4096, 64, 4));
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect();
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            assert!(c.access(a), "address {a:#x} should be resident");
        }
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes_lru() {
        // Capacity 16 lines; walk 17 lines that all map across sets
        // cyclically => LRU misses every time on the second pass.
        let mut c = SetAssocCache::new(geom(1024, 64, 1));
        // direct-mapped with 16 sets: use 17 lines hitting the same set:
        let addrs: Vec<u64> = (0..2).map(|i| i * 1024).collect();
        for _ in 0..4 {
            for &a in &addrs {
                c.access(a);
            }
        }
        // Direct-mapped, both map set 0 => all misses.
        assert_eq!(c.stats().misses(), 8);
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = SetAssocCache::new(geom(1024, 64, 2));
        c.access(0x0);
        c.flush();
        assert!(!c.probe(0x0));
        assert_eq!(c.stats().accesses(), 1);
    }

    #[test]
    fn reset_replays_exactly_like_fresh() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::Random,
        ] {
            let g = geom(1024, 64, 2).with_replacement(kind);
            let mut reused = SetAssocCache::new(g);
            // Dirty the cache thoroughly, then reset.
            for i in 0..257u64 {
                reused.access(i * 192);
            }
            reused.reset();
            let mut fresh = SetAssocCache::new(g);
            for i in 0..257u64 {
                let a = i.wrapping_mul(0x9e37) % 4096;
                assert_eq!(reused.access(a), fresh.access(a), "{kind:?} access {i}");
            }
            assert_eq!(reused.stats(), fresh.stats(), "{kind:?}");
        }
    }

    #[test]
    fn miss_rate_tracks() {
        let mut c = SetAssocCache::new(geom(1024, 64, 2));
        c.access(0x0);
        c.access(0x0);
        c.access(0x0);
        c.access(0x0);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
    }
}
