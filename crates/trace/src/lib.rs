//! Dynamic instruction traces for the `mispredict` workspace.
//!
//! The unit of work in this system is a [`Trace`]: a linear sequence of
//! [`MicroOp`]s describing the *correct-path* dynamic instruction stream of
//! a program. Each micro-op carries exactly the information the interval
//! model and the cycle-level simulator need:
//!
//! * its [`OpClass`](bmp_uarch::OpClass) (which selects functional unit and
//!   latency),
//! * up to two register source dependences, encoded as *dependence
//!   distances* (how many dynamic instructions earlier the producer is),
//! * a memory address for loads/stores, and
//! * direction/target/kind for branches.
//!
//! Encoding dependences as distances makes traces position-independent and
//! cheap to slice, which the interval model exploits when scheduling
//! individual inter-miss intervals (and the event-driven simulator
//! un-does once, resolving distances to absolute producer indices in its
//! compiled structure-of-arrays form — `docs/PERFORMANCE.md`).
//!
//! The [`dag`] module provides dependence-graph utilities — data-flow
//! scheduling and critical-path extraction — and the `I_W(k)` window-ILP
//! characterization from the interval-analysis literature. The [`sites`]
//! module adds the *static* view: per-branch-PC execution/direction
//! statistics for the predictability classifier.
//!
//! # Examples
//!
//! ```
//! use bmp_trace::{MicroOp, TraceBuilder};
//! use bmp_uarch::OpClass;
//!
//! let mut b = TraceBuilder::new();
//! b.push(MicroOp::alu(0x1000, OpClass::IntAlu, [None, None]))?;
//! b.push(MicroOp::load(0x1004, 0xbeef_0000, [Some(1), None]))?;
//! let trace = b.finish();
//! assert_eq!(trace.len(), 2);
//! # Ok::<(), bmp_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod dag;
pub mod io;
mod op;
pub mod sites;
mod stats;
pub mod superblock;
mod trace;

pub use compiled::CompiledTrace;
pub use op::{BranchInfo, BranchKind, MicroOp};
pub use sites::BranchSiteStats;
pub use stats::{DepDistanceHistogram, TraceStats};
pub use superblock::{Region, RegionEnd, SuperblockMap, SuperblockStats};
pub use trace::{Trace, TraceBuilder, TraceError};
