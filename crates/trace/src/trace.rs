//! The trace container and its builder.

use serde::{Deserialize, Serialize};

use crate::op::MicroOp;
use crate::stats::TraceStats;

/// Error produced while assembling a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An op at `index` named a dependence distance reaching before the
    /// start of the trace.
    DanglingDependence {
        /// Position of the offending op.
        index: usize,
        /// The out-of-range distance.
        distance: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::DanglingDependence { index, distance } => write!(
                f,
                "op {index} has dependence distance {distance} reaching before the trace start"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A correct-path dynamic instruction stream.
///
/// Traces are immutable once built; assemble them with [`TraceBuilder`]
/// (which validates dependence distances) or collect from an iterator of
/// already-consistent ops via [`Trace::from_ops_unchecked`].
///
/// # Examples
///
/// ```
/// use bmp_trace::{MicroOp, TraceBuilder};
/// use bmp_uarch::OpClass;
///
/// let mut b = TraceBuilder::new();
/// for i in 0..10u64 {
///     let src = if i > 0 { Some(1) } else { None };
///     b.push(MicroOp::alu(i * 4, OpClass::IntAlu, [src, None]))?;
/// }
/// let t = b.finish();
/// assert_eq!(t.len(), 10);
/// assert_eq!(t.stats().total(), 10);
/// # Ok::<(), bmp_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<MicroOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a vector of ops without validating dependence distances.
    ///
    /// The first few ops of a generated trace may legitimately carry
    /// distances pointing "before" the trace when the trace is a window
    /// into a longer stream; consumers treat such sources as ready.
    pub fn from_ops_unchecked(ops: Vec<MicroOp>) -> Self {
        Self { ops }
    }

    /// Number of dynamic instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the trace holds no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op at `index`, if in range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&MicroOp> {
        self.ops.get(index)
    }

    /// All ops as a slice.
    #[inline]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Iterator over the ops.
    pub fn iter(&self) -> std::slice::Iter<'_, MicroOp> {
        self.ops.iter()
    }

    /// Computes summary statistics over the whole trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_ops(&self.ops)
    }

    /// Positions of all conditional branches.
    pub fn conditional_branch_indices(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_conditional_branch())
            .map(|(i, _)| i)
            .collect()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MicroOp;
    type IntoIter = std::slice::Iter<'a, MicroOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl FromIterator<MicroOp> for Trace {
    /// Collects ops without validation; see [`Trace::from_ops_unchecked`].
    fn from_iter<T: IntoIterator<Item = MicroOp>>(iter: T) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Incremental, validating constructor for [`Trace`].
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    ops: Vec<MicroOp>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` ops.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            ops: Vec::with_capacity(n),
        }
    }

    /// Appends an op, validating that its dependence distances stay within
    /// the trace built so far.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::DanglingDependence`] if a distance reaches
    /// before op 0.
    pub fn push(&mut self, op: MicroOp) -> Result<(), TraceError> {
        let index = self.ops.len();
        for d in op.src_distances() {
            if d as usize > index {
                return Err(TraceError::DanglingDependence { index, distance: d });
            }
        }
        self.ops.push(op);
        Ok(())
    }

    /// Number of ops pushed so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finishes the trace.
    pub fn finish(self) -> Trace {
        Trace { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BranchKind;
    use bmp_uarch::OpClass;

    fn alu(srcs: [Option<u32>; 2]) -> MicroOp {
        MicroOp::alu(0, OpClass::IntAlu, srcs)
    }

    #[test]
    fn builder_accepts_valid_dependences() {
        let mut b = TraceBuilder::new();
        b.push(alu([None, None])).unwrap();
        b.push(alu([Some(1), None])).unwrap();
        b.push(alu([Some(2), Some(1)])).unwrap();
        assert_eq!(b.finish().len(), 3);
    }

    #[test]
    fn builder_rejects_dangling_dependence() {
        let mut b = TraceBuilder::new();
        b.push(alu([None, None])).unwrap();
        let err = b.push(alu([Some(2), None])).unwrap_err();
        assert_eq!(
            err,
            TraceError::DanglingDependence {
                index: 1,
                distance: 2
            }
        );
    }

    #[test]
    fn first_op_cannot_depend() {
        let mut b = TraceBuilder::new();
        assert!(b.push(alu([Some(1), None])).is_err());
    }

    #[test]
    fn conditional_branch_indices_found() {
        let mut b = TraceBuilder::new();
        b.push(alu([None, None])).unwrap();
        b.push(MicroOp::branch(
            4,
            BranchKind::Conditional,
            true,
            0,
            [None, None],
        ))
        .unwrap();
        b.push(MicroOp::branch(8, BranchKind::Jump, true, 0, [None, None]))
            .unwrap();
        b.push(MicroOp::branch(
            12,
            BranchKind::Conditional,
            false,
            0,
            [None, None],
        ))
        .unwrap();
        let t = b.finish();
        assert_eq!(t.conditional_branch_indices(), vec![1, 3]);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = (0..5)
            .map(|i| alu([if i > 0 { Some(1) } else { None }, None]))
            .collect();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 5);
        assert_eq!((&t).into_iter().count(), 5);
    }

    #[test]
    fn get_in_and_out_of_range() {
        let t: Trace = std::iter::once(alu([None, None])).collect();
        assert!(t.get(0).is_some());
        assert!(t.get(1).is_none());
    }

    #[test]
    fn error_display() {
        let e = TraceError::DanglingDependence {
            index: 3,
            distance: 9,
        };
        assert!(e.to_string().contains("op 3"));
    }
}
