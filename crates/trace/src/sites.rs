//! Per-static-branch (per-PC) introspection of a compiled trace.
//!
//! The interval model and the simulators consume traces *dynamically* —
//! one op at a time. The static analyzer additionally needs the *static*
//! view: every branch site (unique PC) with its execution count and
//! taken/not-taken split, the raw material for taken-rate entropy,
//! history-sensitivity probes and H2P flagging (see
//! `docs/STATIC_ANALYSIS.md`).
//!
//! # Examples
//!
//! ```
//! use bmp_trace::{sites, MicroOp, Trace, BranchKind};
//!
//! let t: Trace = vec![
//!     MicroOp::branch(0x10, BranchKind::Conditional, true, 0x40, [None, None]),
//!     MicroOp::branch(0x10, BranchKind::Conditional, false, 0x40, [None, None]),
//! ]
//! .into_iter()
//! .collect();
//! let stats = sites::branch_sites(&t.compile());
//! assert_eq!(stats.len(), 1);
//! assert_eq!(stats[0].executions, 2);
//! assert_eq!(stats[0].taken, 1);
//! ```

use std::collections::HashMap;

use crate::compiled::CompiledTrace;
use crate::op::BranchKind;

/// Aggregate statistics for one static branch site (unique branch PC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchSiteStats {
    /// The site's program counter.
    pub pc: u64,
    /// Control-transfer flavor (from the site's first dynamic instance;
    /// the workload generator never reuses a PC across kinds).
    pub kind: BranchKind,
    /// Dynamic executions of this site.
    pub executions: u64,
    /// How many of those executions were taken.
    pub taken: u64,
}

impl BranchSiteStats {
    /// Fraction of executions that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.taken as f64 / self.executions as f64
        }
    }
}

/// Groups every branch of `trace` by PC, in increasing PC order.
///
/// All branch kinds are included; conditional sites are the ones whose
/// direction statistics feed the predictability classifier.
pub fn branch_sites(trace: &CompiledTrace) -> Vec<BranchSiteStats> {
    let mut by_pc: HashMap<u64, BranchSiteStats> = HashMap::new();
    for i in 0..trace.len() {
        let Some(info) = trace.branch_info(i) else {
            continue;
        };
        let pc = trace.pc(i);
        let e = by_pc.entry(pc).or_insert(BranchSiteStats {
            pc,
            kind: info.kind,
            executions: 0,
            taken: 0,
        });
        e.executions += 1;
        e.taken += u64::from(info.taken);
    }
    let mut out: Vec<BranchSiteStats> = by_pc.into_values().collect();
    out.sort_by_key(|s| s.pc);
    out
}

/// Binary entropy `H(p)` in bits: 0 for a fully biased direction, 1 for
/// a coin flip.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Ideal accuracy of a per-history majority table over `outcomes` with
/// `bits` outcomes of local history: every history context predicts its
/// most frequent successor. This upper-bounds any real predictor with
/// the same history length, which is exactly what a *static* sensitivity
/// probe needs. Empty sequences score 1.0 (nothing to mispredict).
pub fn ideal_history_accuracy(outcomes: &[bool], bits: u32) -> f64 {
    if outcomes.is_empty() {
        return 1.0;
    }
    let mask: u64 = (1u64 << bits) - 1;
    // counts[history] = (taken, not taken)
    let mut counts: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut hist = 0u64;
    for &taken in outcomes {
        let e = counts.entry(hist).or_default();
        if taken {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
        hist = ((hist << 1) | u64::from(taken)) & mask;
    }
    let correct: u64 = counts.values().map(|&(t, n)| t.max(n)).sum();
    correct as f64 / outcomes.len() as f64
}

/// History lengths probed by the H2P sensitivity sweep, shortest first.
pub const H2P_SWEEP_BITS: [u32; 4] = [0, 2, 4, 8];

/// The H2P score of one conditional branch site: taken-rate entropy
/// combined with a history-length sensitivity sweep
/// (see `docs/PREDICTORS.md` for the scoring definition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteScore {
    /// The site's PC.
    pub pc: u64,
    /// Dynamic executions.
    pub executions: u64,
    /// Fraction taken.
    pub taken_rate: f64,
    /// Direction entropy `H(taken_rate)` in bits.
    pub entropy: f64,
    /// Ideal majority-table accuracy at each [`H2P_SWEEP_BITS`] history
    /// length, in sweep order.
    pub sweep_accuracy: [f64; H2P_SWEEP_BITS.len()],
}

impl SiteScore {
    /// Accuracy gained by the longest probed history over none:
    /// `sweep_accuracy[last] − sweep_accuracy[0]`. Pattern-driven sites
    /// gain a lot; fundamentally hard sites gain little.
    pub fn history_sensitivity(&self) -> f64 {
        self.sweep_accuracy[H2P_SWEEP_BITS.len() - 1] - self.sweep_accuracy[0]
    }

    /// The scalar H2P score: `entropy × (1 − best sweep accuracy) ×
    /// log2(executions + 1)`. High for sites that are unbiased, remain
    /// inaccurate even with history, and execute often enough to matter;
    /// exactly 0 for fully biased or history-explained sites.
    pub fn h2p_score(&self) -> f64 {
        let best = self
            .sweep_accuracy
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        self.entropy * (1.0 - best) * ((self.executions + 1) as f64).log2()
    }
}

/// Scores every *conditional* branch site of `trace`, in increasing PC
/// order: the raw material for H2P flagging in the static analyzer and
/// the per-class experiment family.
pub fn score_conditional_sites(trace: &CompiledTrace) -> Vec<SiteScore> {
    conditional_outcome_sequences(trace)
        .into_iter()
        .map(|(pc, outcomes)| {
            let taken = outcomes.iter().filter(|&&t| t).count() as f64;
            let rate = if outcomes.is_empty() {
                0.0
            } else {
                taken / outcomes.len() as f64
            };
            let mut sweep_accuracy = [0.0; H2P_SWEEP_BITS.len()];
            for (slot, &bits) in sweep_accuracy.iter_mut().zip(H2P_SWEEP_BITS.iter()) {
                *slot = ideal_history_accuracy(&outcomes, bits);
            }
            SiteScore {
                pc,
                executions: outcomes.len() as u64,
                taken_rate: rate,
                entropy: binary_entropy(rate),
                sweep_accuracy,
            }
        })
        .collect()
}

/// The dynamic outcome sequence (taken = `true`) of every *conditional*
/// branch site, keyed by PC — the input to history-length-sensitivity
/// probes. Sequences preserve trace order.
pub fn conditional_outcome_sequences(trace: &CompiledTrace) -> Vec<(u64, Vec<bool>)> {
    let mut by_pc: HashMap<u64, Vec<bool>> = HashMap::new();
    for i in 0..trace.len() {
        let Some(info) = trace.branch_info(i) else {
            continue;
        };
        if info.kind.is_conditional() {
            by_pc.entry(trace.pc(i)).or_default().push(info.taken);
        }
    }
    let mut out: Vec<(u64, Vec<bool>)> = by_pc.into_iter().collect();
    out.sort_by_key(|&(pc, _)| pc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MicroOp;
    use crate::trace::Trace;
    use bmp_uarch::OpClass;

    fn mixed_trace() -> Trace {
        vec![
            MicroOp::branch(0x10, BranchKind::Conditional, true, 0x40, [None, None]),
            MicroOp::alu(0x14, OpClass::IntAlu, [None, None]),
            MicroOp::branch(0x10, BranchKind::Conditional, false, 0x40, [None, None]),
            MicroOp::branch(0x20, BranchKind::Jump, true, 0x80, [None, None]),
            MicroOp::branch(0x10, BranchKind::Conditional, true, 0x40, [None, None]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn sites_group_and_sort() {
        let stats = branch_sites(&mixed_trace().compile());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].pc, 0x10);
        assert_eq!(stats[0].executions, 3);
        assert_eq!(stats[0].taken, 2);
        assert!(stats[0].kind.is_conditional());
        assert!((stats[0].taken_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats[1].pc, 0x20);
        assert_eq!(stats[1].kind, BranchKind::Jump);
        assert_eq!(stats[1].taken_rate(), 1.0);
    }

    #[test]
    fn outcome_sequences_are_conditional_only_and_ordered() {
        let seqs = conditional_outcome_sequences(&mixed_trace().compile());
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].0, 0x10);
        assert_eq!(seqs[0].1, vec![true, false, true]);
    }

    #[test]
    fn empty_trace_has_no_sites() {
        assert!(branch_sites(&Trace::new().compile()).is_empty());
        assert!(conditional_outcome_sequences(&Trace::new().compile()).is_empty());
        assert!(score_conditional_sites(&Trace::new().compile()).is_empty());
    }

    #[test]
    fn entropy_shape() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.1) < binary_entropy(0.3));
    }

    #[test]
    fn ideal_accuracy_probe() {
        let alternating: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        assert!(ideal_history_accuracy(&alternating, 0) <= 0.5 + 1e-9);
        assert!(ideal_history_accuracy(&alternating, 1) > 0.95);
        let constant = vec![true; 64];
        assert_eq!(ideal_history_accuracy(&constant, 0), 1.0);
        assert_eq!(ideal_history_accuracy(&[], 8), 1.0);
    }

    fn cond(pc: u64, taken: bool) -> MicroOp {
        MicroOp::branch(pc, BranchKind::Conditional, taken, pc + 0x40, [None, None])
    }

    #[test]
    fn scores_separate_biased_patterned_and_random_sites() {
        let mut ops = Vec::new();
        let mut lcg = 9u64;
        for i in 0..2048 {
            ops.push(cond(0x10, true)); // biased
            ops.push(cond(0x20, i % 2 == 0)); // alternating
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ops.push(cond(0x30, (lcg >> 33) & 1 == 1)); // pseudo-random
        }
        let t: Trace = ops.into_iter().collect();
        let scores = score_conditional_sites(&t.compile());
        assert_eq!(scores.len(), 3);
        let (biased, patterned, random) = (&scores[0], &scores[1], &scores[2]);
        assert_eq!(biased.entropy, 0.0);
        assert!(biased.h2p_score() == 0.0, "biased sites never score");
        assert!(
            patterned.history_sensitivity() > 0.4,
            "alternation is explained by history: {patterned:?}"
        );
        assert!(
            patterned.h2p_score() < 0.1,
            "history-explained sites score ~0: {}",
            patterned.h2p_score()
        );
        assert!(random.entropy > 0.9);
        assert!(random.history_sensitivity() < 0.3);
        assert!(
            random.h2p_score() > 10.0 * patterned.h2p_score().max(0.01),
            "random dominates: {} vs {}",
            random.h2p_score(),
            patterned.h2p_score()
        );
        // The sweep is monotone for an ideal table over nested history.
        for s in &scores {
            for w in s.sweep_accuracy.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{s:?}");
            }
        }
    }
}
