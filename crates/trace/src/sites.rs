//! Per-static-branch (per-PC) introspection of a compiled trace.
//!
//! The interval model and the simulators consume traces *dynamically* —
//! one op at a time. The static analyzer additionally needs the *static*
//! view: every branch site (unique PC) with its execution count and
//! taken/not-taken split, the raw material for taken-rate entropy,
//! history-sensitivity probes and H2P flagging (see
//! `docs/STATIC_ANALYSIS.md`).
//!
//! # Examples
//!
//! ```
//! use bmp_trace::{sites, MicroOp, Trace, BranchKind};
//!
//! let t: Trace = vec![
//!     MicroOp::branch(0x10, BranchKind::Conditional, true, 0x40, [None, None]),
//!     MicroOp::branch(0x10, BranchKind::Conditional, false, 0x40, [None, None]),
//! ]
//! .into_iter()
//! .collect();
//! let stats = sites::branch_sites(&t.compile());
//! assert_eq!(stats.len(), 1);
//! assert_eq!(stats[0].executions, 2);
//! assert_eq!(stats[0].taken, 1);
//! ```

use std::collections::HashMap;

use crate::compiled::CompiledTrace;
use crate::op::BranchKind;

/// Aggregate statistics for one static branch site (unique branch PC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchSiteStats {
    /// The site's program counter.
    pub pc: u64,
    /// Control-transfer flavor (from the site's first dynamic instance;
    /// the workload generator never reuses a PC across kinds).
    pub kind: BranchKind,
    /// Dynamic executions of this site.
    pub executions: u64,
    /// How many of those executions were taken.
    pub taken: u64,
}

impl BranchSiteStats {
    /// Fraction of executions that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.taken as f64 / self.executions as f64
        }
    }
}

/// Groups every branch of `trace` by PC, in increasing PC order.
///
/// All branch kinds are included; conditional sites are the ones whose
/// direction statistics feed the predictability classifier.
pub fn branch_sites(trace: &CompiledTrace) -> Vec<BranchSiteStats> {
    let mut by_pc: HashMap<u64, BranchSiteStats> = HashMap::new();
    for i in 0..trace.len() {
        let Some(info) = trace.branch_info(i) else {
            continue;
        };
        let pc = trace.pc(i);
        let e = by_pc.entry(pc).or_insert(BranchSiteStats {
            pc,
            kind: info.kind,
            executions: 0,
            taken: 0,
        });
        e.executions += 1;
        e.taken += u64::from(info.taken);
    }
    let mut out: Vec<BranchSiteStats> = by_pc.into_values().collect();
    out.sort_by_key(|s| s.pc);
    out
}

/// The dynamic outcome sequence (taken = `true`) of every *conditional*
/// branch site, keyed by PC — the input to history-length-sensitivity
/// probes. Sequences preserve trace order.
pub fn conditional_outcome_sequences(trace: &CompiledTrace) -> Vec<(u64, Vec<bool>)> {
    let mut by_pc: HashMap<u64, Vec<bool>> = HashMap::new();
    for i in 0..trace.len() {
        let Some(info) = trace.branch_info(i) else {
            continue;
        };
        if info.kind.is_conditional() {
            by_pc.entry(trace.pc(i)).or_default().push(info.taken);
        }
    }
    let mut out: Vec<(u64, Vec<bool>)> = by_pc.into_iter().collect();
    out.sort_by_key(|&(pc, _)| pc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MicroOp;
    use crate::trace::Trace;
    use bmp_uarch::OpClass;

    fn mixed_trace() -> Trace {
        vec![
            MicroOp::branch(0x10, BranchKind::Conditional, true, 0x40, [None, None]),
            MicroOp::alu(0x14, OpClass::IntAlu, [None, None]),
            MicroOp::branch(0x10, BranchKind::Conditional, false, 0x40, [None, None]),
            MicroOp::branch(0x20, BranchKind::Jump, true, 0x80, [None, None]),
            MicroOp::branch(0x10, BranchKind::Conditional, true, 0x40, [None, None]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn sites_group_and_sort() {
        let stats = branch_sites(&mixed_trace().compile());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].pc, 0x10);
        assert_eq!(stats[0].executions, 3);
        assert_eq!(stats[0].taken, 2);
        assert!(stats[0].kind.is_conditional());
        assert!((stats[0].taken_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats[1].pc, 0x20);
        assert_eq!(stats[1].kind, BranchKind::Jump);
        assert_eq!(stats[1].taken_rate(), 1.0);
    }

    #[test]
    fn outcome_sequences_are_conditional_only_and_ordered() {
        let seqs = conditional_outcome_sequences(&mixed_trace().compile());
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].0, 0x10);
        assert_eq!(seqs[0].1, vec![true, false, true]);
    }

    #[test]
    fn empty_trace_has_no_sites() {
        assert!(branch_sites(&Trace::new().compile()).is_empty());
        assert!(conditional_outcome_sequences(&Trace::new().compile()).is_empty());
    }
}
