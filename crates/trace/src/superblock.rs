//! Superblock segmentation of compiled traces.
//!
//! The event-driven simulator's frontend examines every op: load its
//! flags, compare its cache line against the previous one, branch on
//! both. Almost all of those tests have statically known answers — a
//! trace is a fixed sequence, so *where the branches are* and *where a
//! new I-cache line begins* are pure functions of the trace and the line
//! size. [`SuperblockMap`] precomputes them once:
//!
//! * the trace is tiled into **regions**: maximal runs of non-branch ops
//!   that share one I-cache line, plus single-op regions for branches —
//!   the boundaries are exactly the places where per-op work (prediction,
//!   I-cache access, redirect) can happen;
//! * [`run_len`](SuperblockMap::run_len) gives, for every op, the number
//!   of plain same-line ops starting there, so a fetch stage can admit a
//!   whole run as one branch-free batched fill;
//! * [`is_line_start`](SuperblockMap::is_line_start) marks the ops whose
//!   examination triggers an I-cache line access (a *likely miss event*
//!   in interval-analysis terms).
//!
//! The map depends only on the trace and the L1I line size, so it is
//! cacheable per `(trace, line_bytes)` — one map serves every machine
//! configuration sharing a line size. [`SuperblockMap::regions`]
//! materializes the region list with per-region metadata (functional-unit
//! demand vector, maximum backward producer reach, intra-region critical
//! depth) for lints, profiling reports and property tests; the simulator
//! itself reads only the two dense arrays.
//!
//! Structural invariants (linted as `BMP31x` by `bmp-analyze`, proven by
//! proptests in `tests/trace_properties.rs`):
//!
//! 1. regions tile the trace exactly (concatenated, in order, no gaps);
//! 2. a branch op is always a single-op region;
//! 3. no region spans an I-cache line boundary;
//! 4. `run_len(i)` is 0 exactly on branches, and otherwise counts the
//!    remaining ops of `i`'s region.

use bmp_uarch::FU_KINDS;

use crate::compiled::{CompiledTrace, FLAG_BRANCH, NO_PRODUCER};

/// Why a region ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionEnd {
    /// The region is a single branch op.
    Branch,
    /// The next op begins a new I-cache line.
    LineBreak,
    /// The trace ran out.
    TraceEnd,
}

/// One superblock region: a tile of the trace (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// First op index.
    pub start: u32,
    /// Number of ops (>= 1).
    pub len: u32,
    /// Why the region ended.
    pub end: RegionEnd,
    /// Ops per functional-unit kind ([`bmp_uarch::FU_KINDS`] order).
    pub fu_demand: [u32; 5],
    /// Maximum backward producer reach: `max(i - producer(i))` over the
    /// region's ops, 0 when no op has a producer.
    pub max_reach: u32,
    /// Length in ops of the longest dependence chain internal to the
    /// region — a lower bound on the issue spread of the region when
    /// dispatched together (the "earliest-issue offset" of its last
    /// chain link).
    pub crit_depth: u32,
}

/// Aggregate region statistics, reported per workload by `bmp-profile`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperblockStats {
    /// Number of regions tiling the trace.
    pub regions: u64,
    /// Mean region length in ops (0 for an empty trace).
    pub mean_len: f64,
    /// Longest region in ops.
    pub max_len: u32,
    /// Ops that begin a new I-cache line.
    pub line_starts: u64,
}

/// Precomputed superblock segmentation of one [`CompiledTrace`] at one
/// L1I line size. See the module docs for the layout and invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperblockMap {
    line_bytes: u32,
    /// `run_len[i]`: number of consecutive non-branch ops starting at
    /// `i` that share op `i`'s I-cache line; 0 iff op `i` is a branch.
    run_len: Vec<u32>,
    /// One bit per op: set iff examining the op performs an I-cache
    /// line access (`i == 0` or its line differs from op `i - 1`'s).
    line_start: Vec<u64>,
}

impl SuperblockMap {
    /// Builds the map for `ct` at an L1I line size of `line_bytes`
    /// (a power of two, as enforced by cache-config validation).
    pub fn build(ct: &CompiledTrace, line_bytes: u32) -> Self {
        let n = ct.len();
        let mask = !u64::from(line_bytes - 1);
        let mut run_len = vec![0u32; n];
        let mut line_start = vec![0u64; (n >> 6) + 1];
        let mut prev_line = u64::MAX; // op 0 always starts a line
        for i in 0..n {
            let line = ct.pc(i) & mask;
            if line != prev_line {
                line_start[i >> 6] |= 1 << (i & 63);
            }
            prev_line = line;
        }
        // Backward pass: a run ends before a branch or a line start.
        for i in (0..n).rev() {
            if ct.flags(i) & FLAG_BRANCH != 0 {
                continue; // run_len stays 0
            }
            let next_breaks = i + 1 == n
                || ct.flags(i + 1) & FLAG_BRANCH != 0
                || line_start[(i + 1) >> 6] >> ((i + 1) & 63) & 1 == 1;
            run_len[i] = if next_breaks { 1 } else { run_len[i + 1] + 1 };
        }
        Self {
            line_bytes,
            run_len,
            line_start,
        }
    }

    /// The L1I line size the map was built for.
    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of ops covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.run_len.len()
    }

    /// `true` when the map covers no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.run_len.is_empty()
    }

    /// Length of the branch-free same-line run starting at `i` (0 iff
    /// op `i` is a branch).
    #[inline]
    pub fn run_len(&self, i: usize) -> u32 {
        self.run_len[i]
    }

    /// `true` when examining op `i` performs an I-cache line access.
    #[inline]
    pub fn is_line_start(&self, i: usize) -> bool {
        self.line_start[i >> 6] >> (i & 63) & 1 == 1
    }

    /// Materializes the region list with per-region metadata. `ct` must
    /// be the trace the map was built from.
    ///
    /// # Panics
    ///
    /// Panics if `ct` has a different length than the map.
    pub fn regions(&self, ct: &CompiledTrace) -> Vec<Region> {
        assert_eq!(ct.len(), self.len(), "map/trace length mismatch");
        let n = self.len();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < n {
            let run = self.run_len[i];
            let (len, end) = if run == 0 {
                (1u32, RegionEnd::Branch)
            } else if i + run as usize == n {
                (run, RegionEnd::TraceEnd)
            } else if ct.flags(i + run as usize) & FLAG_BRANCH != 0
                && !self.is_line_start(i + run as usize)
            {
                // The run stopped at a same-line branch: that branch is
                // its own region, so this one ended *because* of it —
                // still a Branch-adjacent tile, classified by what
                // follows.
                (run, RegionEnd::Branch)
            } else {
                (run, RegionEnd::LineBreak)
            };
            let mut fu_demand = [0u32; 5];
            let mut max_reach = 0u32;
            // Longest intra-region chain, computed with per-op depths
            // relative to the region (ops whose producers all precede
            // the region have depth 1).
            let mut depth = vec![1u32; len as usize];
            let mut crit = 0u32;
            for k in 0..len as usize {
                let idx = i + k;
                let mut d = depth[k];
                fu_demand[ct.class(idx).fu_kind().index()] += 1;
                for p in ct.producers(idx) {
                    if p == NO_PRODUCER {
                        continue;
                    }
                    let reach = (idx as u32) - p;
                    max_reach = max_reach.max(reach);
                    if p as usize >= i {
                        d = d.max(depth[(p as usize) - i] + 1);
                    }
                }
                depth[k] = d;
                crit = crit.max(d);
            }
            out.push(Region {
                start: i as u32,
                len,
                end,
                fu_demand,
                max_reach,
                crit_depth: crit,
            });
            i += len as usize;
        }
        out
    }

    /// Aggregate statistics over the region tiling (cheap scan; does not
    /// materialize the region list).
    pub fn stats(&self) -> SuperblockStats {
        let n = self.len();
        let mut regions = 0u64;
        let mut max_len = 0u32;
        let mut i = 0usize;
        while i < n {
            let len = self.run_len[i].max(1);
            regions += 1;
            max_len = max_len.max(len);
            i += len as usize;
        }
        let line_starts: u64 = self
            .line_start
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        SuperblockStats {
            regions,
            mean_len: if regions == 0 {
                0.0
            } else {
                n as f64 / regions as f64
            },
            max_len,
            line_starts,
        }
    }
}

// `Region::fu_demand` is indexed by `FuKind::index()`.
const _: () = assert!(FU_KINDS.len() == 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BranchKind, MicroOp};
    use crate::trace::Trace;
    use bmp_uarch::OpClass;

    fn trace_with_branch() -> Trace {
        // 64-byte lines; pcs 4 bytes apart. Ops 0..=2 plain on one line,
        // op 3 a branch, ops 4..=5 plain on the target's line.
        vec![
            MicroOp::alu(0x100, OpClass::IntAlu, [None, None]),
            MicroOp::alu(0x104, OpClass::IntAlu, [Some(1), None]),
            MicroOp::load(0x108, 0xbeef, [Some(1), None]),
            MicroOp::branch(0x10c, BranchKind::Conditional, true, 0x400, [Some(1), None]),
            MicroOp::alu(0x400, OpClass::IntMul, [None, None]),
            MicroOp::alu(0x404, OpClass::IntAlu, [Some(1), None]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn runs_and_line_starts() {
        let ct = trace_with_branch().compile();
        let sb = SuperblockMap::build(&ct, 64);
        assert_eq!(sb.len(), 6);
        assert!(sb.is_line_start(0));
        assert!(!sb.is_line_start(1));
        assert!(sb.is_line_start(4), "branch target starts a new line");
        assert_eq!(sb.run_len(0), 3);
        assert_eq!(sb.run_len(1), 2);
        assert_eq!(sb.run_len(2), 1);
        assert_eq!(sb.run_len(3), 0, "branches have zero run length");
        assert_eq!(sb.run_len(4), 2);
        assert_eq!(sb.run_len(5), 1);
    }

    #[test]
    fn regions_tile_the_trace() {
        let ct = trace_with_branch().compile();
        let sb = SuperblockMap::build(&ct, 64);
        let regions = sb.regions(&ct);
        assert_eq!(regions.len(), 3);
        let mut cursor = 0u32;
        for r in &regions {
            assert_eq!(r.start, cursor, "regions must tile exactly");
            assert!(r.len >= 1);
            cursor += r.len;
        }
        assert_eq!(cursor as usize, ct.len());
        assert_eq!(regions[0].end, RegionEnd::Branch, "run ends at the branch");
        assert_eq!(regions[1].end, RegionEnd::Branch, "the branch itself");
        assert_eq!(regions[2].end, RegionEnd::TraceEnd);
    }

    #[test]
    fn region_metadata_counts_fu_and_reach() {
        let ct = trace_with_branch().compile();
        let sb = SuperblockMap::build(&ct, 64);
        let regions = sb.regions(&ct);
        let r0 = &regions[0];
        // 2 ALU + 1 load.
        assert_eq!(r0.fu_demand.iter().sum::<u32>(), 3);
        assert_eq!(r0.max_reach, 1);
        // op0 -> op1 -> op2 is a 3-deep chain.
        assert_eq!(r0.crit_depth, 3);
        let r2 = &regions[2];
        assert_eq!(r2.max_reach, 1);
        assert_eq!(r2.crit_depth, 2);
    }

    #[test]
    fn line_size_sets_boundaries() {
        // With 8-byte lines every other op starts a line.
        let t: Trace = (0..8)
            .map(|i| MicroOp::alu(0x100 + 4 * i, OpClass::IntAlu, [None, None]))
            .collect();
        let ct = t.compile();
        let sb = SuperblockMap::build(&ct, 8);
        for i in 0..8 {
            assert_eq!(sb.is_line_start(i), i % 2 == 0, "op {i}");
            assert_eq!(sb.run_len(i), if i % 2 == 0 { 2 } else { 1 });
        }
        assert_eq!(sb.stats().regions, 4);
    }

    #[test]
    fn stats_match_regions() {
        let ct = trace_with_branch().compile();
        let sb = SuperblockMap::build(&ct, 64);
        let s = sb.stats();
        let regions = sb.regions(&ct);
        assert_eq!(s.regions as usize, regions.len());
        assert_eq!(s.max_len, regions.iter().map(|r| r.len).max().unwrap());
        let mean: f64 = ct.len() as f64 / regions.len() as f64;
        assert!((s.mean_len - mean).abs() < 1e-12);
        assert_eq!(s.line_starts, 2);
    }

    #[test]
    fn empty_trace() {
        let ct = Trace::new().compile();
        let sb = SuperblockMap::build(&ct, 64);
        assert!(sb.is_empty());
        assert_eq!(sb.stats().regions, 0);
        assert!(sb.regions(&ct).is_empty());
    }
}
