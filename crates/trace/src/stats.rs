//! Summary statistics over traces.

use bmp_uarch::{OpClass, OP_CLASSES};
use serde::{Deserialize, Serialize};

use crate::op::MicroOp;

/// Histogram of register dependence distances, with a saturating tail
/// bucket.
///
/// Distance `d` means the producer is `d` dynamic instructions earlier.
/// Short distances mean long dependence chains and low inherent ILP —
/// contributor (iii) of the misprediction penalty.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepDistanceHistogram {
    /// `buckets[d-1]` counts sources at distance `d`, for `d` in
    /// `1..=cap`; the final element accumulates everything beyond.
    buckets: Vec<u64>,
    cap: u32,
    total: u64,
}

impl DepDistanceHistogram {
    /// Creates an empty histogram tracking exact distances up to `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: u32) -> Self {
        assert!(cap > 0, "histogram cap must be at least 1");
        Self {
            buckets: vec![0; cap as usize + 1],
            cap,
            total: 0,
        }
    }

    /// Records one source dependence at `distance`.
    pub fn record(&mut self, distance: u32) {
        let idx = if distance == 0 {
            return; // no dependence
        } else if distance <= self.cap {
            distance as usize - 1
        } else {
            self.cap as usize
        };
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Count of sources at exactly `distance` (`distance <= cap`), or in
    /// the overflow bucket when `distance > cap`.
    pub fn count(&self, distance: u32) -> u64 {
        if distance == 0 {
            0
        } else if distance <= self.cap {
            self.buckets[distance as usize - 1]
        } else {
            self.buckets[self.cap as usize]
        }
    }

    /// Total recorded dependences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean distance, counting overflow entries as `cap + 1`. Returns
    /// `None` for an empty histogram.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
            .sum();
        Some(sum / self.total as f64)
    }

    /// Fraction of dependences at distance `<= d`.
    pub fn cdf(&self, d: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto = d.min(self.cap) as usize;
        let c: u64 = self.buckets[..upto].iter().sum();
        c as f64 / self.total as f64
    }
}

/// Aggregate statistics of a trace: instruction mix, branch counts and the
/// dependence-distance profile.
///
/// # Examples
///
/// ```
/// use bmp_trace::{MicroOp, Trace};
/// use bmp_uarch::OpClass;
///
/// let t: Trace = (0..8)
///     .map(|i| MicroOp::alu(i * 4, OpClass::IntAlu, [None, None]))
///     .collect();
/// let s = t.stats();
/// assert_eq!(s.total(), 8);
/// assert_eq!(s.fraction(OpClass::IntAlu), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    counts: [u64; 9],
    conditional_branches: u64,
    taken_branches: u64,
    dep_distances: DepDistanceHistogram,
}

impl TraceStats {
    /// Default exact-tracking range for the dependence histogram.
    pub const DEFAULT_DEP_CAP: u32 = 256;

    /// Computes statistics from a slice of ops.
    pub fn from_ops(ops: &[MicroOp]) -> Self {
        let mut counts = [0u64; 9];
        let mut conditional_branches = 0;
        let mut taken_branches = 0;
        let mut dep_distances = DepDistanceHistogram::new(Self::DEFAULT_DEP_CAP);
        for op in ops {
            counts[op.class().index()] += 1;
            if let Some(info) = op.branch_info() {
                if info.kind.is_conditional() {
                    conditional_branches += 1;
                }
                if info.taken {
                    taken_branches += 1;
                }
            }
            for d in op.src_distances() {
                dep_distances.record(d);
            }
        }
        Self {
            counts,
            conditional_branches,
            taken_branches,
            dep_distances,
        }
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Dynamic count of `class`.
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Fraction of instructions of `class` (0 for an empty trace).
    pub fn fraction(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64
        }
    }

    /// Number of conditional branches.
    pub fn conditional_branches(&self) -> u64 {
        self.conditional_branches
    }

    /// Number of taken branches (all kinds).
    pub fn taken_branches(&self) -> u64 {
        self.taken_branches
    }

    /// Average dynamic basic-block size: instructions per taken branch
    /// (total instructions if nothing is taken).
    pub fn avg_taken_run(&self) -> f64 {
        if self.taken_branches == 0 {
            self.total() as f64
        } else {
            self.total() as f64 / self.taken_branches as f64
        }
    }

    /// The dependence-distance histogram.
    pub fn dep_distances(&self) -> &DepDistanceHistogram {
        &self.dep_distances
    }

    /// Instruction-mix table in [`OP_CLASSES`] order, as (class, count,
    /// fraction) rows — convenient for report printing.
    pub fn mix_rows(&self) -> Vec<(OpClass, u64, f64)> {
        OP_CLASSES
            .iter()
            .map(|&c| (c, self.count(c), self.fraction(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BranchKind;

    #[test]
    fn histogram_basics() {
        let mut h = DepDistanceHistogram::new(4);
        for d in [1, 1, 2, 4, 9, 200] {
            h.record(d);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.count(4), 1);
        // overflow bucket
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(1000), 2);
    }

    #[test]
    fn histogram_ignores_zero() {
        let mut h = DepDistanceHistogram::new(4);
        h.record(0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn histogram_mean_and_cdf() {
        let mut h = DepDistanceHistogram::new(10);
        for d in [1, 2, 3] {
            h.record(d);
        }
        assert!((h.mean().unwrap() - 2.0).abs() < 1e-12);
        assert!((h.cdf(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.cdf(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cap must be at least 1")]
    fn histogram_rejects_zero_cap() {
        let _ = DepDistanceHistogram::new(0);
    }

    #[test]
    fn stats_mix_and_branches() {
        let ops = vec![
            MicroOp::alu(0, OpClass::IntAlu, [None, None]),
            MicroOp::load(4, 0x100, [Some(1), None]),
            MicroOp::branch(8, BranchKind::Conditional, true, 0, [Some(1), None]),
            MicroOp::branch(12, BranchKind::Jump, true, 0x40, [None, None]),
            MicroOp::branch(16, BranchKind::Conditional, false, 0, [None, None]),
        ];
        let s = TraceStats::from_ops(&ops);
        assert_eq!(s.total(), 5);
        assert_eq!(s.count(OpClass::Branch), 3);
        assert_eq!(s.conditional_branches(), 2);
        assert_eq!(s.taken_branches(), 2);
        assert!((s.fraction(OpClass::Load) - 0.2).abs() < 1e-12);
        assert_eq!(s.dep_distances().total(), 2);
        assert!((s.avg_taken_run() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_trace() {
        let s = TraceStats::from_ops(&[]);
        assert_eq!(s.total(), 0);
        assert_eq!(s.fraction(OpClass::IntAlu), 0.0);
        assert_eq!(s.avg_taken_run(), 0.0);
    }

    #[test]
    fn mix_rows_cover_all_classes() {
        let s = TraceStats::from_ops(&[]);
        assert_eq!(s.mix_rows().len(), OP_CLASSES.len());
    }
}
