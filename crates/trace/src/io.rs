//! Compact binary serialization of traces.
//!
//! Synthesizing a multi-million-instruction trace is cheap but not free;
//! saving it lets a parameter sweep reuse one trace across dozens of
//! machine configurations, and lets experiments archive exactly what they
//! ran. The format is a simple length-prefixed record stream:
//!
//! ```text
//! magic "BMPT"  u8 version  u64 op-count
//! per op:
//!   u8  tag          (class index, with branch flavors folded in)
//!   u64 pc
//!   u32 src1, u32 src2          (0 = none)
//!   payload:
//!     memory ops:  u64 addr
//!     branches:    u64 target, u8 taken
//! ```
//!
//! All integers are little-endian. The format is versioned and refuses
//! foreign or truncated input with a descriptive [`TraceIoError`].

use std::io::{Read, Write};

use bmp_uarch::OpClass;

use crate::op::{BranchKind, MicroOp};
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"BMPT";
const VERSION: u8 = 1;

/// Tags: 0..=8 mirror `OpClass::index()` for non-branch classes; branches
/// encode their kind.
const TAG_BRANCH_COND: u8 = 16;
const TAG_BRANCH_JUMP: u8 = 17;
const TAG_BRANCH_CALL: u8 = 18;
const TAG_BRANCH_RET: u8 = 19;
const TAG_BRANCH_INDIRECT: u8 = 20;

/// Error reading or writing a serialized trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the trace magic.
    BadMagic,
    /// The input's format version is not supported.
    BadVersion(u8),
    /// An op record carried an unknown tag.
    BadTag(u8),
    /// The input ended before the declared op count was read.
    Truncated,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => f.write_str("input is not a bmp trace (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            TraceIoError::BadTag(t) => write!(f, "unknown op tag {t}"),
            TraceIoError::Truncated => f.write_str("trace input ended early"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated
        } else {
            TraceIoError::Io(e)
        }
    }
}

fn class_tag(op: &MicroOp) -> u8 {
    match op.branch_info() {
        Some(info) => match info.kind {
            BranchKind::Conditional => TAG_BRANCH_COND,
            BranchKind::Jump => TAG_BRANCH_JUMP,
            BranchKind::Call => TAG_BRANCH_CALL,
            BranchKind::Return => TAG_BRANCH_RET,
            BranchKind::IndirectJump => TAG_BRANCH_INDIRECT,
        },
        None => op.class().index() as u8,
    }
}

/// Writes `trace` to `w` in the compact binary format.
///
/// A `&mut` reference works as the writer, e.g. `&mut Vec<u8>` or
/// `&mut File`.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on any underlying write failure.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for op in trace.iter() {
        w.write_all(&[class_tag(op)])?;
        w.write_all(&op.pc().to_le_bytes())?;
        let srcs = op.srcs();
        w.write_all(&srcs[0].unwrap_or(0).to_le_bytes())?;
        w.write_all(&srcs[1].unwrap_or(0).to_le_bytes())?;
        if let Some(addr) = op.mem_addr() {
            w.write_all(&addr.to_le_bytes())?;
        } else if let Some(info) = op.branch_info() {
            w.write_all(&info.target.to_le_bytes())?;
            w.write_all(&[u8::from(info.taken)])?;
        }
    }
    Ok(())
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, TraceIoError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`TraceIoError`] for foreign input, version mismatch,
/// unknown tags, or truncation.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = read_u8(&mut r)?;
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let n = read_u64(&mut r)? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let tag = read_u8(&mut r)?;
        let pc = read_u64(&mut r)?;
        let s1 = read_u32(&mut r)?;
        let s2 = read_u32(&mut r)?;
        let srcs = [(s1 != 0).then_some(s1), (s2 != 0).then_some(s2)];
        let op = match tag {
            TAG_BRANCH_COND | TAG_BRANCH_JUMP | TAG_BRANCH_CALL | TAG_BRANCH_RET
            | TAG_BRANCH_INDIRECT => {
                let target = read_u64(&mut r)?;
                let taken = read_u8(&mut r)? != 0;
                let kind = match tag {
                    TAG_BRANCH_COND => BranchKind::Conditional,
                    TAG_BRANCH_JUMP => BranchKind::Jump,
                    TAG_BRANCH_CALL => BranchKind::Call,
                    TAG_BRANCH_INDIRECT => BranchKind::IndirectJump,
                    _ => BranchKind::Return,
                };
                MicroOp::branch(pc, kind, taken, target, srcs)
            }
            t if (t as usize) < bmp_uarch::OP_CLASSES.len() => {
                let class = bmp_uarch::OP_CLASSES[t as usize];
                match class {
                    OpClass::Load => MicroOp::load(pc, read_u64(&mut r)?, srcs),
                    OpClass::Store => MicroOp::store(pc, read_u64(&mut r)?, srcs),
                    OpClass::Branch => return Err(TraceIoError::BadTag(t)),
                    other => MicroOp::alu(pc, other, srcs),
                }
            }
            t => return Err(TraceIoError::BadTag(t)),
        };
        ops.push(op);
    }
    Ok(Trace::from_ops_unchecked(ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let ops = vec![
            MicroOp::alu(0x100, OpClass::IntAlu, [None, None]),
            MicroOp::alu(0x104, OpClass::FpMul, [Some(1), None]),
            MicroOp::load(0x108, 0xdead_beef, [Some(2), Some(1)]),
            MicroOp::store(0x10c, 0xcafe_f00d, [Some(1), None]),
            MicroOp::branch(0x110, BranchKind::Conditional, true, 0x100, [Some(2), None]),
            MicroOp::branch(0x100, BranchKind::Jump, true, 0x200, [None, None]),
            MicroOp::branch(0x200, BranchKind::Call, true, 0x300, [None, None]),
            MicroOp::branch(0x300, BranchKind::Return, true, 0x204, [None, None]),
            MicroOp::branch(
                0x304,
                BranchKind::IndirectJump,
                true,
                0x400,
                [Some(1), None],
            ),
        ];
        Trace::from_ops_unchecked(ops)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_generated_trace() {
        // The real consumer: a generated workload.
        let ops: Vec<MicroOp> = (0..500)
            .map(|i| {
                MicroOp::alu(
                    0x1000 + i * 4,
                    OpClass::IntAlu,
                    [if i > 0 { Some(1) } else { None }, None],
                )
            })
            .collect();
        let t = Trace::from_ops_unchecked(ops);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            TraceIoError::BadVersion(99)
        ));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            TraceIoError::Truncated
        ));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf[13] = 42; // first op's tag byte (4 magic + 1 version + 8 count)
        assert!(matches!(
            read_trace(buf.as_slice()).unwrap_err(),
            TraceIoError::BadTag(42)
        ));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(TraceIoError::BadMagic.to_string().contains("magic"));
        assert!(TraceIoError::Truncated.to_string().contains("early"));
    }
}
