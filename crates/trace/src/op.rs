//! The dynamic micro-operation type.

use bmp_uarch::OpClass;
use serde::{Deserialize, Serialize};

/// Control-transfer flavors, used by the BTB/RAS models and the workload
/// generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch; the only kind the direction predictor
    /// speaks to.
    Conditional,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes the return-address stack).
    Call,
    /// Return (pops the return-address stack).
    Return,
    /// Indirect jump (switch table, virtual call): the target varies at
    /// run time, so the frontend relies on the BTB's last-seen target and
    /// mispredicts when it changes.
    IndirectJump,
}

impl BranchKind {
    /// Returns `true` for conditional branches.
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }
}

/// Resolved control-flow information attached to a branch micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// The architected outcome: `true` if the branch is taken.
    pub taken: bool,
    /// The architected target address (next PC when taken).
    pub target: u64,
    /// The control-transfer flavor.
    pub kind: BranchKind,
}

/// Per-op payload: memory reference or branch information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Payload {
    None,
    Mem { addr: u64 },
    Branch(BranchInfo),
}

/// One dynamic instruction of the correct-path stream.
///
/// Register dependences are encoded as *distances*: `Some(d)` means "my
/// producer is the instruction `d` positions earlier in the trace". The
/// constructors enforce that the payload matches the class (loads carry an
/// address, branches carry a [`BranchInfo`], and so on), so a constructed
/// `MicroOp` is always internally consistent.
///
/// # Examples
///
/// ```
/// use bmp_trace::{BranchKind, MicroOp};
/// use bmp_uarch::OpClass;
///
/// let br = MicroOp::branch(0x40, BranchKind::Conditional, true, 0x80, [Some(2), None]);
/// assert!(br.class().is_branch());
/// assert_eq!(br.branch_info().unwrap().target, 0x80);
/// assert_eq!(br.mem_addr(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroOp {
    pc: u64,
    class: OpClass,
    /// Dependence distances; 0 encodes "no dependence".
    srcs: [u32; 2],
    payload: Payload,
}

impl MicroOp {
    fn encode_srcs(srcs: [Option<u32>; 2]) -> [u32; 2] {
        let enc = |s: Option<u32>| match s {
            Some(0) | None => 0,
            Some(d) => d,
        };
        [enc(srcs[0]), enc(srcs[1])]
    }

    /// Creates a non-memory, non-branch computational op of the given
    /// class.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `class` is a memory or branch class — use
    /// the dedicated constructors for those.
    pub fn alu(pc: u64, class: OpClass, srcs: [Option<u32>; 2]) -> Self {
        debug_assert!(
            !class.is_memory() && !class.is_branch(),
            "use MicroOp::load/store/branch for {class}"
        );
        Self {
            pc,
            class,
            srcs: Self::encode_srcs(srcs),
            payload: Payload::None,
        }
    }

    /// Creates a load from `addr`.
    pub fn load(pc: u64, addr: u64, srcs: [Option<u32>; 2]) -> Self {
        Self {
            pc,
            class: OpClass::Load,
            srcs: Self::encode_srcs(srcs),
            payload: Payload::Mem { addr },
        }
    }

    /// Creates a store to `addr`.
    pub fn store(pc: u64, addr: u64, srcs: [Option<u32>; 2]) -> Self {
        Self {
            pc,
            class: OpClass::Store,
            srcs: Self::encode_srcs(srcs),
            payload: Payload::Mem { addr },
        }
    }

    /// Creates a branch with its resolved outcome and target.
    pub fn branch(
        pc: u64,
        kind: BranchKind,
        taken: bool,
        target: u64,
        srcs: [Option<u32>; 2],
    ) -> Self {
        Self {
            pc,
            class: OpClass::Branch,
            srcs: Self::encode_srcs(srcs),
            payload: Payload::Branch(BranchInfo {
                taken,
                target,
                kind,
            }),
        }
    }

    /// The instruction's program counter.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The operation class.
    #[inline]
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// The two source-dependence distances; `None` means no dependence in
    /// that slot.
    #[inline]
    pub fn srcs(&self) -> [Option<u32>; 2] {
        let dec = |d: u32| if d == 0 { None } else { Some(d) };
        [dec(self.srcs[0]), dec(self.srcs[1])]
    }

    /// Iterator over the present dependence distances.
    #[inline]
    pub fn src_distances(&self) -> impl Iterator<Item = u32> + '_ {
        self.srcs.iter().copied().filter(|&d| d != 0)
    }

    /// The largest dependence distance, if any source exists.
    pub fn max_src_distance(&self) -> Option<u32> {
        self.src_distances().max()
    }

    /// Memory address for loads and stores, `None` otherwise.
    #[inline]
    pub fn mem_addr(&self) -> Option<u64> {
        match self.payload {
            Payload::Mem { addr } => Some(addr),
            _ => None,
        }
    }

    /// Branch information for branches, `None` otherwise.
    #[inline]
    pub fn branch_info(&self) -> Option<BranchInfo> {
        match self.payload {
            Payload::Branch(info) => Some(info),
            _ => None,
        }
    }

    /// Returns `true` if this is a conditional branch.
    #[inline]
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self.payload,
            Payload::Branch(BranchInfo {
                kind: BranchKind::Conditional,
                ..
            })
        )
    }

    /// The address of the next instruction on the architected path:
    /// the branch target when taken, otherwise `pc + 4` (a fixed 4-byte
    /// instruction encoding is assumed throughout).
    pub fn next_pc(&self) -> u64 {
        match self.payload {
            Payload::Branch(BranchInfo {
                taken: true,
                target,
                ..
            }) => target,
            _ => self.pc.wrapping_add(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        assert_eq!(MicroOp::load(0, 0, [None, None]).class(), OpClass::Load);
        assert_eq!(MicroOp::store(0, 0, [None, None]).class(), OpClass::Store);
        assert_eq!(
            MicroOp::branch(0, BranchKind::Jump, true, 8, [None, None]).class(),
            OpClass::Branch
        );
        assert_eq!(
            MicroOp::alu(0, OpClass::FpMul, [None, None]).class(),
            OpClass::FpMul
        );
    }

    #[test]
    #[should_panic(expected = "use MicroOp::load")]
    #[cfg(debug_assertions)]
    fn alu_rejects_memory_class() {
        let _ = MicroOp::alu(0, OpClass::Load, [None, None]);
    }

    #[test]
    fn src_encoding_roundtrip() {
        let op = MicroOp::alu(0, OpClass::IntAlu, [Some(3), None]);
        assert_eq!(op.srcs(), [Some(3), None]);
        assert_eq!(op.src_distances().collect::<Vec<_>>(), vec![3]);
        assert_eq!(op.max_src_distance(), Some(3));
    }

    #[test]
    fn zero_distance_is_no_dependence() {
        // A distance of zero would mean "depends on itself"; it is
        // normalized to no-dependence.
        let op = MicroOp::alu(0, OpClass::IntAlu, [Some(0), Some(5)]);
        assert_eq!(op.srcs(), [None, Some(5)]);
    }

    #[test]
    fn payload_accessors_are_exclusive() {
        let ld = MicroOp::load(0, 0x1234, [None, None]);
        assert_eq!(ld.mem_addr(), Some(0x1234));
        assert!(ld.branch_info().is_none());

        let br = MicroOp::branch(0, BranchKind::Return, false, 0, [None, None]);
        assert!(br.mem_addr().is_none());
        assert_eq!(br.branch_info().unwrap().kind, BranchKind::Return);
    }

    #[test]
    fn next_pc_follows_taken_branches() {
        let br = MicroOp::branch(0x100, BranchKind::Conditional, true, 0x40, [None, None]);
        assert_eq!(br.next_pc(), 0x40);
        let nt = MicroOp::branch(0x100, BranchKind::Conditional, false, 0x40, [None, None]);
        assert_eq!(nt.next_pc(), 0x104);
        let alu = MicroOp::alu(0x100, OpClass::IntAlu, [None, None]);
        assert_eq!(alu.next_pc(), 0x104);
    }

    #[test]
    fn conditional_detection() {
        assert!(
            MicroOp::branch(0, BranchKind::Conditional, true, 0, [None, None])
                .is_conditional_branch()
        );
        assert!(
            !MicroOp::branch(0, BranchKind::Call, true, 0, [None, None]).is_conditional_branch()
        );
        assert!(!MicroOp::alu(0, OpClass::IntAlu, [None, None]).is_conditional_branch());
    }
}
