//! Structure-of-arrays compiled traces.
//!
//! [`Trace`] stores ops as an array-of-structs with an enum payload —
//! ideal for building and validating, poor for the simulator's hot loop:
//! every access pattern-matches the payload, and dependences are encoded
//! as *distances* that each consumer must re-resolve against its own
//! position. [`CompiledTrace`] is a one-time, deterministic transform
//! into flat per-field arrays:
//!
//! * dependence distances are pre-resolved to **absolute producer
//!   indices** ([`NO_PRODUCER`] when a slot is empty or the distance
//!   reaches before the trace — such sources are ready by definition),
//! * class, pc and a packed flags byte live in dense arrays, and
//! * branch and memory payloads are split into side tables indexed
//!   through one `payload` array, so non-memory non-branch ops pay
//!   nothing for the enum.
//!
//! The transform is pure and cacheable: compiling the same trace twice
//! yields identical arrays, and [`CompiledTrace::op`] reconstructs each
//! original [`MicroOp`] exactly (for self-contained traces — windowed
//! slices whose leading ops depend on producers before the window
//! compile those sources away, as the consumers treat them as ready).

use bmp_uarch::OpClass;

use crate::op::{BranchInfo, MicroOp};
use crate::trace::Trace;

/// Sentinel producer index: the source slot is empty (or reached before
/// the start of the trace and is therefore always ready).
pub const NO_PRODUCER: u32 = u32::MAX;

/// Sentinel payload index: the op has no branch/memory side-table entry.
const NO_PAYLOAD: u32 = u32::MAX;

/// Bit set in [`CompiledTrace::flags`] for any branch op.
pub const FLAG_BRANCH: u8 = 1 << 0;
/// Bit set in [`CompiledTrace::flags`] for conditional branches.
pub const FLAG_COND_BRANCH: u8 = 1 << 1;
/// Bit set in [`CompiledTrace::flags`] for loads and stores.
pub const FLAG_MEM: u8 = 1 << 2;

/// A [`Trace`] compiled into structure-of-arrays form.
///
/// Build one with [`Trace::compile`] (or [`CompiledTrace::from_trace`]);
/// the arrays are immutable afterwards. All per-op accessors are O(1)
/// and branch-free except the side-table indirections.
///
/// # Examples
///
/// ```
/// use bmp_trace::{MicroOp, Trace, compiled::NO_PRODUCER};
/// use bmp_uarch::OpClass;
///
/// let t: Trace = vec![
///     MicroOp::alu(0x100, OpClass::IntAlu, [None, None]),
///     MicroOp::load(0x104, 0xbeef, [Some(1), None]),
/// ]
/// .into_iter()
/// .collect();
/// let ct = t.compile();
/// assert_eq!(ct.producers(1), [0, NO_PRODUCER]); // distance 1 → index 0
/// assert_eq!(ct.mem_addr(1), Some(0xbeef));
/// assert_eq!(ct.op(1), *t.get(1).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrace {
    pc: Vec<u64>,
    class: Vec<OpClass>,
    flags: Vec<u8>,
    producers: Vec<[u32; 2]>,
    payload: Vec<u32>,
    mem_addrs: Vec<u64>,
    branches: Vec<BranchInfo>,
}

impl CompiledTrace {
    /// Compiles `trace` into structure-of-arrays form.
    ///
    /// # Panics
    ///
    /// Panics if the trace holds `u32::MAX` or more ops (the index
    /// encoding's sentinel space).
    pub fn from_trace(trace: &Trace) -> Self {
        let ops = trace.ops();
        let n = ops.len();
        assert!(
            (n as u64) < u64::from(u32::MAX),
            "trace too long for 32-bit compiled indices"
        );
        let mut out = Self {
            pc: Vec::with_capacity(n),
            class: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            producers: Vec::with_capacity(n),
            payload: Vec::with_capacity(n),
            mem_addrs: Vec::new(),
            branches: Vec::new(),
        };
        for (i, op) in ops.iter().enumerate() {
            out.pc.push(op.pc());
            out.class.push(op.class());
            let srcs = op.srcs();
            let resolve = |s: Option<u32>| match s {
                Some(d) if (d as usize) <= i => (i - d as usize) as u32,
                _ => NO_PRODUCER,
            };
            out.producers.push([resolve(srcs[0]), resolve(srcs[1])]);
            let mut flags = 0u8;
            let payload = if let Some(info) = op.branch_info() {
                flags |= FLAG_BRANCH;
                if info.kind.is_conditional() {
                    flags |= FLAG_COND_BRANCH;
                }
                out.branches.push(info);
                (out.branches.len() - 1) as u32
            } else if let Some(addr) = op.mem_addr() {
                flags |= FLAG_MEM;
                out.mem_addrs.push(addr);
                (out.mem_addrs.len() - 1) as u32
            } else {
                NO_PAYLOAD
            };
            out.flags.push(flags);
            out.payload.push(payload);
        }
        out
    }

    /// Number of ops.
    #[inline]
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Returns `true` when the trace holds no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// The op's program counter.
    #[inline]
    pub fn pc(&self, i: usize) -> u64 {
        self.pc[i]
    }

    /// The op's class.
    #[inline]
    pub fn class(&self, i: usize) -> OpClass {
        self.class[i]
    }

    /// The packed per-op flags byte ([`FLAG_BRANCH`] / [`FLAG_COND_BRANCH`]
    /// / [`FLAG_MEM`]).
    #[inline]
    pub fn flags(&self, i: usize) -> u8 {
        self.flags[i]
    }

    /// The op's absolute producer indices ([`NO_PRODUCER`] for empty or
    /// out-of-trace source slots). Producers always precede consumers:
    /// `producers(i)[k] < i` for every real entry.
    #[inline]
    pub fn producers(&self, i: usize) -> [u32; 2] {
        self.producers[i]
    }

    /// Memory address for loads and stores, `None` otherwise.
    #[inline]
    pub fn mem_addr(&self, i: usize) -> Option<u64> {
        if self.flags[i] & FLAG_MEM != 0 {
            Some(self.mem_addrs[self.payload[i] as usize])
        } else {
            None
        }
    }

    /// Branch information for branches, `None` otherwise.
    #[inline]
    pub fn branch_info(&self, i: usize) -> Option<BranchInfo> {
        if self.flags[i] & FLAG_BRANCH != 0 {
            Some(self.branches[self.payload[i] as usize])
        } else {
            None
        }
    }

    /// Number of entries in the branch side table.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Number of entries in the memory side table.
    pub fn mem_count(&self) -> usize {
        self.mem_addrs.len()
    }

    /// The raw payload index of op `i` into its side table, for
    /// consistency checking; `None` for plain computational ops.
    pub fn payload_index(&self, i: usize) -> Option<u32> {
        let p = self.payload[i];
        (p != NO_PAYLOAD).then_some(p)
    }

    /// Reconstructs the original [`MicroOp`] at `i`.
    ///
    /// Exact for self-contained traces. For windowed slices, source
    /// distances that reached before the window were compiled to
    /// [`NO_PRODUCER`] (they are unconditionally ready) and reconstruct
    /// as "no dependence".
    pub fn op(&self, i: usize) -> MicroOp {
        let srcs = self.producers[i].map(|p| {
            if p == NO_PRODUCER {
                None
            } else {
                Some((i - p as usize) as u32)
            }
        });
        let pc = self.pc[i];
        if let Some(info) = self.branch_info(i) {
            MicroOp::branch(pc, info.kind, info.taken, info.target, srcs)
        } else if let Some(addr) = self.mem_addr(i) {
            match self.class[i] {
                OpClass::Store => MicroOp::store(pc, addr, srcs),
                _ => MicroOp::load(pc, addr, srcs),
            }
        } else {
            MicroOp::alu(pc, self.class[i], srcs)
        }
    }
}

impl Trace {
    /// Compiles this trace into [`CompiledTrace`] form; see the module
    /// docs for the layout.
    pub fn compile(&self) -> CompiledTrace {
        CompiledTrace::from_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BranchKind;
    use crate::trace::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.push(MicroOp::alu(0x100, OpClass::IntAlu, [None, None]))
            .unwrap();
        b.push(MicroOp::load(0x104, 0x1000_0000, [Some(1), None]))
            .unwrap();
        b.push(MicroOp::store(0x108, 0x2000_0008, [Some(1), Some(2)]))
            .unwrap();
        b.push(MicroOp::alu(0x10c, OpClass::FpMul, [Some(3), None]))
            .unwrap();
        b.push(MicroOp::branch(
            0x110,
            BranchKind::Conditional,
            true,
            0x100,
            [Some(2), None],
        ))
        .unwrap();
        b.push(MicroOp::branch(
            0x100,
            BranchKind::Return,
            true,
            0x200,
            [None, None],
        ))
        .unwrap();
        b.finish()
    }

    /// The round-trip guarantee: every MicroOp field survives
    /// compilation (satellite requirement).
    #[test]
    fn roundtrips_every_field() {
        let t = sample_trace();
        let ct = t.compile();
        assert_eq!(ct.len(), t.len());
        for (i, op) in t.iter().enumerate() {
            let back = ct.op(i);
            assert_eq!(back, *op, "op {i} must round-trip exactly");
            assert_eq!(back.pc(), op.pc());
            assert_eq!(back.class(), op.class());
            assert_eq!(back.srcs(), op.srcs());
            assert_eq!(back.mem_addr(), op.mem_addr());
            assert_eq!(back.branch_info(), op.branch_info());
        }
    }

    #[test]
    fn producers_are_absolute_and_backward() {
        let ct = sample_trace().compile();
        assert_eq!(ct.producers(0), [NO_PRODUCER, NO_PRODUCER]);
        assert_eq!(ct.producers(1), [0, NO_PRODUCER]);
        assert_eq!(ct.producers(2), [1, 0]);
        assert_eq!(ct.producers(3), [0, NO_PRODUCER]);
        assert_eq!(ct.producers(4), [2, NO_PRODUCER]);
        for i in 0..ct.len() {
            for p in ct.producers(i) {
                assert!(p == NO_PRODUCER || (p as usize) < i);
            }
        }
    }

    #[test]
    fn flags_and_side_tables_partition_the_ops() {
        let ct = sample_trace().compile();
        assert_eq!(ct.flags(0), 0);
        assert_eq!(ct.flags(1), FLAG_MEM);
        assert_eq!(ct.flags(2), FLAG_MEM);
        assert_eq!(ct.flags(4), FLAG_BRANCH | FLAG_COND_BRANCH);
        assert_eq!(ct.flags(5), FLAG_BRANCH);
        assert_eq!(ct.mem_count(), 2);
        assert_eq!(ct.branch_count(), 2);
        assert_eq!(ct.payload_index(0), None);
        assert_eq!(ct.payload_index(1), Some(0));
        assert_eq!(ct.payload_index(2), Some(1));
        assert_eq!(ct.payload_index(4), Some(0));
    }

    #[test]
    fn dangling_distances_compile_to_always_ready() {
        // A windowed slice: op 0 names a producer before the window.
        let t = Trace::from_ops_unchecked(vec![
            MicroOp::alu(0x100, OpClass::IntAlu, [Some(5), None]),
            MicroOp::alu(0x104, OpClass::IntAlu, [Some(1), None]),
        ]);
        let ct = t.compile();
        assert_eq!(ct.producers(0), [NO_PRODUCER, NO_PRODUCER]);
        assert_eq!(ct.producers(1), [0, NO_PRODUCER]);
        // The dangling source reconstructs as "no dependence".
        assert_eq!(ct.op(0).srcs(), [None, None]);
    }

    #[test]
    fn empty_trace_compiles() {
        let ct = Trace::new().compile();
        assert_eq!(ct.len(), 0);
        assert!(ct.is_empty());
        assert_eq!(ct.branch_count(), 0);
        assert_eq!(ct.mem_count(), 0);
    }

    #[test]
    fn compilation_is_deterministic() {
        let t = sample_trace();
        assert_eq!(t.compile(), t.compile());
    }
}
