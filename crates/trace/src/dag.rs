//! Dependence-graph utilities: data-flow scheduling, critical paths, and
//! the `I_W(k)` window-ILP characterization.
//!
//! These are the analytical primitives beneath interval analysis. An
//! instruction stream induces a DAG via register dependences; the *critical
//! path* through a window bounds how fast the window can drain, and the
//! per-window ILP curve `I_W(k)` (average instructions per cycle achievable
//! with a window of `k` instructions and unbounded resources) is the
//! program-inherent-ILP input to the penalty model — contributor (iii).
//!
//! Latencies are supplied by a caller-provided closure so that the interval
//! model can inject cache-dependent load latencies (contributor (v))
//! without this crate knowing anything about caches.

use crate::op::MicroOp;

/// Computes data-flow completion times for a slice of ops.
///
/// Op `i` starts executing at
/// `max(enter(i), max over sources completion(src))` and completes
/// `latency_of(i, op)` cycles later. Sources whose dependence distance
/// reaches before the slice are treated as ready at cycle 0 (they belong to
/// an earlier, already-drained part of the stream).
///
/// `enter(i)` models when op `i` becomes visible to the scheduler; passing
/// `|_| 0` yields the pure data-flow (infinite-machine) schedule, while the
/// interval model passes the dispatch-width-limited window-entry time.
///
/// # Examples
///
/// ```
/// use bmp_trace::{dag, MicroOp};
/// use bmp_uarch::OpClass;
///
/// // A 3-op chain with unit latencies completes at cycles 1, 2, 3.
/// let ops: Vec<_> = (0..3)
///     .map(|i| MicroOp::alu(i * 4, OpClass::IntAlu, [if i > 0 { Some(1) } else { None }, None]))
///     .collect();
/// let done = dag::completion_times(&ops, |_, _| 1, |_| 0);
/// assert_eq!(done, vec![1, 2, 3]);
/// ```
pub fn completion_times<L, E>(ops: &[MicroOp], mut latency_of: L, mut enter: E) -> Vec<u64>
where
    L: FnMut(usize, &MicroOp) -> u64,
    E: FnMut(usize) -> u64,
{
    let mut done = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let mut start = enter(i);
        for d in op.src_distances() {
            let d = d as usize;
            if d <= i {
                let src_done = done[i - d];
                start = start.max(src_done);
            }
            // else: producer precedes the slice; ready at 0.
        }
        let lat = latency_of(i, op).max(1);
        done.push(start + lat);
    }
    done
}

/// Length of the critical path through `ops` (the completion time of the
/// data-flow schedule), with latencies from `latency_of`.
///
/// Returns 0 for an empty slice.
pub fn critical_path<L>(ops: &[MicroOp], latency_of: L) -> u64
where
    L: FnMut(usize, &MicroOp) -> u64,
{
    completion_times(ops, latency_of, |_| 0)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// The `I_W(k)` window-ILP characterization: the average IPC achievable
/// over disjoint consecutive windows of `k` instructions, assuming
/// unbounded issue resources within each window.
///
/// For each window the achievable IPC is `k / critical_path(window)`; the
/// returned value is the harmonic-consistent aggregate
/// `total instructions / total critical-path cycles`, which is the rate a
/// machine repeatedly draining such windows would sustain.
///
/// Returns `None` when the trace is shorter than one window or `k == 0`.
///
/// # Examples
///
/// ```
/// use bmp_trace::{dag, MicroOp};
/// use bmp_uarch::OpClass;
///
/// // Fully independent ops: I_W(k) == k (one window drains in 1 cycle).
/// let ops: Vec<_> = (0..64)
///     .map(|i| MicroOp::alu(i * 4, OpClass::IntAlu, [None, None]))
///     .collect();
/// let ilp = dag::window_ilp(&ops, 16, |_, _| 1).unwrap();
/// assert!((ilp - 16.0).abs() < 1e-9);
/// ```
pub fn window_ilp<L>(ops: &[MicroOp], k: usize, mut latency_of: L) -> Option<f64>
where
    L: FnMut(usize, &MicroOp) -> u64,
{
    if k == 0 || ops.len() < k {
        return None;
    }
    let mut insts = 0u64;
    let mut cycles = 0u64;
    let mut start = 0;
    while start + k <= ops.len() {
        let window = &ops[start..start + k];
        let cp = critical_path(window, |i, op| latency_of(start + i, op));
        insts += k as u64;
        cycles += cp.max(1);
        start += k;
    }
    Some(insts as f64 / cycles as f64)
}

/// The full ILP curve: `I_W(k)` for each `k` in `ks`, skipping sizes the
/// trace cannot fill.
pub fn ilp_curve<L>(ops: &[MicroOp], ks: &[usize], mut latency_of: L) -> Vec<(usize, f64)>
where
    L: FnMut(usize, &MicroOp) -> u64,
{
    ks.iter()
        .filter_map(|&k| window_ilp(ops, k, &mut latency_of).map(|ilp| (k, ilp)))
        .collect()
}

/// Length (in ops) of the dependence chain ending at `ops[target]`,
/// following, at each step, the source with the latest completion time.
///
/// This identifies *which* chain limits a mispredicted branch's resolution
/// — useful for attributing the penalty to program structure.
pub fn limiting_chain<L>(ops: &[MicroOp], target: usize, mut latency_of: L) -> Vec<usize>
where
    L: FnMut(usize, &MicroOp) -> u64,
{
    assert!(target < ops.len(), "target out of range");
    let done = completion_times(&ops[..=target], &mut latency_of, |_| 0);
    let mut chain = vec![target];
    let mut cur = target;
    loop {
        let op = &ops[cur];
        let mut best: Option<usize> = None;
        for d in op.src_distances() {
            let d = d as usize;
            if d <= cur {
                let src = cur - d;
                if best.is_none_or(|b| done[src] > done[b]) {
                    best = Some(src);
                }
            }
        }
        match best {
            Some(src) => {
                chain.push(src);
                cur = src;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_uarch::OpClass;

    fn chain(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| {
                MicroOp::alu(
                    i as u64 * 4,
                    OpClass::IntAlu,
                    [if i > 0 { Some(1) } else { None }, None],
                )
            })
            .collect()
    }

    fn independent(n: usize) -> Vec<MicroOp> {
        (0..n)
            .map(|i| MicroOp::alu(i as u64 * 4, OpClass::IntAlu, [None, None]))
            .collect()
    }

    #[test]
    fn chain_critical_path_is_length_times_latency() {
        let ops = chain(10);
        assert_eq!(critical_path(&ops, |_, _| 1), 10);
        assert_eq!(critical_path(&ops, |_, _| 3), 30);
    }

    #[test]
    fn independent_critical_path_is_one_latency() {
        let ops = independent(10);
        assert_eq!(critical_path(&ops, |_, _| 1), 1);
        assert_eq!(critical_path(&ops, |_, _| 5), 5);
    }

    #[test]
    fn empty_slice_has_zero_critical_path() {
        assert_eq!(critical_path(&[], |_, _| 1), 0);
    }

    #[test]
    fn out_of_slice_sources_are_ready() {
        // Op 0 depends on distance 5, which precedes the slice.
        let ops = vec![MicroOp::alu(0, OpClass::IntAlu, [Some(5), None])];
        // Builder would reject it, but slices of longer traces see this.
        assert_eq!(critical_path(&ops, |_, _| 2), 2);
    }

    #[test]
    fn enter_delays_are_respected() {
        let ops = independent(4);
        let done = completion_times(&ops, |_, _| 1, |i| i as u64);
        assert_eq!(done, vec![1, 2, 3, 4]);
    }

    #[test]
    fn latency_floor_is_one() {
        let ops = independent(2);
        let done = completion_times(&ops, |_, _| 0, |_| 0);
        assert_eq!(done, vec![1, 1]);
    }

    #[test]
    fn window_ilp_of_chain_is_near_one() {
        let ops = chain(64);
        let ilp = window_ilp(&ops, 16, |_, _| 1).unwrap();
        assert!((ilp - 1.0).abs() < 1e-9, "chain ILP should be 1, got {ilp}");
    }

    #[test]
    fn window_ilp_respects_latencies() {
        let ops = chain(64);
        let ilp = window_ilp(&ops, 16, |_, _| 2).unwrap();
        assert!((ilp - 0.5).abs() < 1e-9);
    }

    #[test]
    fn window_ilp_none_when_trace_too_short() {
        let ops = chain(4);
        assert!(window_ilp(&ops, 8, |_, _| 1).is_none());
        assert!(window_ilp(&ops, 0, |_, _| 1).is_none());
    }

    #[test]
    fn ilp_curve_is_monotone_for_mixed_code() {
        // Interleave chains so bigger windows expose more parallelism.
        let mut ops = Vec::new();
        for i in 0..256usize {
            // Two interleaved chains: even ops depend on i-2, odd on i-2.
            let src = if i >= 2 { Some(2) } else { None };
            ops.push(MicroOp::alu(i as u64 * 4, OpClass::IntAlu, [src, None]));
        }
        let curve = ilp_curve(&ops, &[2, 4, 8, 16], |_, _| 1);
        assert_eq!(curve.len(), 4);
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-9,
                "ILP curve should be non-decreasing: {curve:?}"
            );
        }
        // Two independent chains => ILP approaches 2.
        assert!(curve.last().unwrap().1 <= 2.0 + 1e-9);
    }

    #[test]
    fn limiting_chain_follows_the_slow_source() {
        // op2 depends on op0 (slow) and op1 (fast).
        let ops = vec![
            MicroOp::alu(0, OpClass::FpDiv, [None, None]),
            MicroOp::alu(4, OpClass::IntAlu, [None, None]),
            MicroOp::alu(8, OpClass::IntAlu, [Some(2), Some(1)]),
        ];
        let chain = limiting_chain(
            &ops,
            2,
            |_, op| {
                if op.class() == OpClass::FpDiv {
                    24
                } else {
                    1
                }
            },
        );
        assert_eq!(chain, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn limiting_chain_rejects_bad_target() {
        let ops = independent(1);
        let _ = limiting_chain(&ops, 5, |_, _| 1);
    }
}
