//! Property tests on traces: serialization roundtrips,
//! dependence-graph invariants and superblock-segmentation invariants,
//! over arbitrary op streams.

use bmp_trace::compiled::FLAG_BRANCH;
use bmp_trace::{dag, io, BranchKind, MicroOp, RegionEnd, SuperblockMap, Trace};
use bmp_uarch::OpClass;
use proptest::prelude::*;

fn arb_op(max_dist: u32) -> impl Strategy<Value = MicroOp> {
    let srcs = (0u32..=max_dist, 0u32..=max_dist)
        .prop_map(|(a, b)| [(a != 0).then_some(a), (b != 0).then_some(b)]);
    (0u64..1 << 40, srcs, 0u8..12).prop_flat_map(|(pc, srcs, kind)| match kind {
        0..=4 => {
            let class = [
                OpClass::IntAlu,
                OpClass::IntMul,
                OpClass::FpAdd,
                OpClass::FpMul,
                OpClass::IntDiv,
            ][kind as usize];
            Just(MicroOp::alu(pc, class, srcs)).boxed()
        }
        5 | 6 => (0u64..1 << 40)
            .prop_map(move |addr| {
                if kind == 5 {
                    MicroOp::load(pc, addr, srcs)
                } else {
                    MicroOp::store(pc, addr, srcs)
                }
            })
            .boxed(),
        _ => ((0u64..1 << 40), any::<bool>(), 0u8..4)
            .prop_map(move |(target, taken, bk)| {
                let bkind = [
                    BranchKind::Conditional,
                    BranchKind::Jump,
                    BranchKind::Call,
                    BranchKind::Return,
                ][bk as usize];
                MicroOp::branch(pc, bkind, taken, target, srcs)
            })
            .boxed(),
    })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_op(64), 0..300).prop_map(Trace::from_ops_unchecked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary serialization roundtrips every representable trace.
    #[test]
    fn io_roundtrip(trace in arb_trace()) {
        let mut buf = Vec::new();
        io::write_trace(&trace, &mut buf).expect("write to vec");
        let back = io::read_trace(buf.as_slice()).expect("read back");
        prop_assert_eq!(trace, back);
    }

    /// Truncating a serialized trace anywhere inside the payload is
    /// detected, never a panic or a silent wrong answer.
    #[test]
    fn io_truncation_is_detected(trace in arb_trace(), cut in 0usize..64) {
        prop_assume!(!trace.is_empty());
        let mut buf = Vec::new();
        io::write_trace(&trace, &mut buf).expect("write to vec");
        let cut = cut % buf.len().max(1);
        // Keep at least nothing; always strictly shorter than full.
        let truncated = &buf[..buf.len() - 1 - cut.min(buf.len() - 1)];
        prop_assert!(io::read_trace(truncated).is_err());
    }

    /// Data-flow completion times respect dependences: a consumer never
    /// completes before its producer.
    #[test]
    fn completion_respects_dependences(trace in arb_trace()) {
        let done = dag::completion_times(trace.ops(), |_, _| 2, |_| 0);
        for (i, op) in trace.iter().enumerate() {
            for d in op.src_distances() {
                let d = d as usize;
                if d <= i {
                    prop_assert!(
                        done[i] >= done[i - d] + 2,
                        "op {i} finished before its producer plus latency"
                    );
                }
            }
        }
    }

    /// The critical path is monotone in latency and bounded by
    /// ops × max-latency.
    #[test]
    fn critical_path_bounds(trace in arb_trace()) {
        let cp1 = dag::critical_path(trace.ops(), |_, _| 1);
        let cp3 = dag::critical_path(trace.ops(), |_, _| 3);
        prop_assert!(cp3 >= cp1);
        prop_assert!(cp1 as usize <= trace.len().max(1));
        prop_assert!(cp3 as usize <= 3 * trace.len().max(1));
        if !trace.is_empty() {
            prop_assert!(cp1 >= 1);
        }
    }

    /// Trace statistics reconcile with direct counting.
    #[test]
    fn stats_reconcile(trace in arb_trace()) {
        let s = trace.stats();
        prop_assert_eq!(s.total() as usize, trace.len());
        let loads = trace.iter().filter(|o| o.class() == OpClass::Load).count();
        prop_assert_eq!(s.count(OpClass::Load) as usize, loads);
        let conds = trace.conditional_branch_indices().len();
        prop_assert_eq!(s.conditional_branches() as usize, conds);
    }
}

/// Power-of-two L1I line sizes spanning the configurable range.
fn arb_line_bytes() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![16u32, 32, 64, 128])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Superblock invariant 1 (module docs): the region list tiles the
    /// trace exactly — in order, no gaps, no overlap.
    #[test]
    fn superblock_regions_tile_exactly(trace in arb_trace(), lb in arb_line_bytes()) {
        let ct = trace.compile();
        let sb = SuperblockMap::build(&ct, lb);
        let regions = sb.regions(&ct);
        let mut next = 0u32;
        for r in &regions {
            prop_assert_eq!(r.start, next, "region starts where the last ended");
            prop_assert!(r.len >= 1);
            next += r.len;
        }
        prop_assert_eq!(next as usize, ct.len(), "regions cover the whole trace");
    }

    /// Superblock invariants 2 and 3: a branch is always a single-op
    /// region, and no region spans an I-cache line boundary.
    #[test]
    fn superblock_regions_respect_branches_and_lines(
        trace in arb_trace(),
        lb in arb_line_bytes(),
    ) {
        let ct = trace.compile();
        let sb = SuperblockMap::build(&ct, lb);
        let mask = !u64::from(lb - 1);
        for r in sb.regions(&ct) {
            let start = r.start as usize;
            let len = r.len as usize;
            let has_branch = (start..start + len)
                .any(|i| ct.flags(i) & FLAG_BRANCH != 0);
            if has_branch {
                prop_assert_eq!(r.len, 1, "branches are single-op regions");
                prop_assert_eq!(r.end, RegionEnd::Branch);
            } else {
                let line = ct.pc(start) & mask;
                for i in start..start + len {
                    prop_assert_eq!(
                        ct.pc(i) & mask, line,
                        "region {start}+{len} spans a line boundary at op {i}"
                    );
                }
            }
            // The end reason is consistent with what follows the region.
            match r.end {
                RegionEnd::Branch => {}
                RegionEnd::TraceEnd => {
                    prop_assert_eq!(start + len, ct.len());
                }
                RegionEnd::LineBreak => {
                    let next = start + len;
                    prop_assert!(next < ct.len());
                    prop_assert!(sb.is_line_start(next), "LineBreak implies a new line");
                }
            }
        }
    }

    /// Superblock invariant 4: `run_len(i)` is 0 exactly on branches and
    /// otherwise counts the ops from `i` to the end of `i`'s region —
    /// i.e. it decreases by one per op inside a region.
    #[test]
    fn superblock_run_len_semantics(trace in arb_trace(), lb in arb_line_bytes()) {
        let ct = trace.compile();
        let sb = SuperblockMap::build(&ct, lb);
        for i in 0..ct.len() {
            let is_branch = ct.flags(i) & FLAG_BRANCH != 0;
            prop_assert_eq!(sb.run_len(i) == 0, is_branch, "run_len is 0 iff branch (op {i})");
        }
        for r in sb.regions(&ct) {
            // A branch region itself has run_len 0, checked above. A
            // non-branch region can also end as `Branch` (it stopped at a
            // same-line branch) and still obeys the countdown.
            if ct.flags(r.start as usize) & FLAG_BRANCH != 0 {
                continue;
            }
            for k in 0..r.len {
                prop_assert_eq!(
                    sb.run_len((r.start + k) as usize),
                    r.len - k,
                    "run_len counts the rest of the region"
                );
            }
        }
    }

    /// `is_line_start` matches the dynamic compare the reference fetch
    /// stage performs: set iff the op's line differs from its
    /// predecessor's (op 0 always starts a line).
    #[test]
    fn superblock_line_starts_match_dynamic_compare(
        trace in arb_trace(),
        lb in arb_line_bytes(),
    ) {
        let ct = trace.compile();
        let sb = SuperblockMap::build(&ct, lb);
        let mask = !u64::from(lb - 1);
        for i in 0..ct.len() {
            let expect = i == 0 || (ct.pc(i) & mask) != (ct.pc(i - 1) & mask);
            prop_assert_eq!(sb.is_line_start(i), expect, "op {i}");
        }
    }

    /// Aggregate stats agree with the materialized region list, and the
    /// per-region metadata is internally consistent: FU demand sums to
    /// the region length, and reach/critical-depth respect their bounds.
    #[test]
    fn superblock_stats_and_metadata_consistent(
        trace in arb_trace(),
        lb in arb_line_bytes(),
    ) {
        let ct = trace.compile();
        let sb = SuperblockMap::build(&ct, lb);
        let regions = sb.regions(&ct);
        let stats = sb.stats();
        prop_assert_eq!(stats.regions as usize, regions.len());
        let max_len = regions.iter().map(|r| r.len).max().unwrap_or(0);
        prop_assert_eq!(stats.max_len, max_len);
        if !regions.is_empty() {
            let mean = ct.len() as f64 / regions.len() as f64;
            prop_assert!((stats.mean_len - mean).abs() < 1e-9);
        }
        let line_starts = (0..ct.len()).filter(|&i| sb.is_line_start(i)).count();
        prop_assert_eq!(stats.line_starts as usize, line_starts);
        for r in &regions {
            prop_assert_eq!(
                r.fu_demand.iter().sum::<u32>(), r.len,
                "every op lands in exactly one FU pool"
            );
            prop_assert!(r.crit_depth >= 1 && r.crit_depth <= r.len);
            // Reach is measured from an op to its producer, which may sit
            // before the region but never past the trace start.
            for k in 0..r.len {
                let i = (r.start + k) as usize;
                for p in ct.producers(i) {
                    if p != u32::MAX {
                        prop_assert!(u64::from(r.max_reach) >= (i as u64) - u64::from(p));
                    }
                }
            }
        }
    }
}
