//! Property tests on traces: serialization roundtrips and
//! dependence-graph invariants, over arbitrary op streams.

use bmp_trace::{dag, io, BranchKind, MicroOp, Trace};
use bmp_uarch::OpClass;
use proptest::prelude::*;

fn arb_op(max_dist: u32) -> impl Strategy<Value = MicroOp> {
    let srcs = (0u32..=max_dist, 0u32..=max_dist)
        .prop_map(|(a, b)| [(a != 0).then_some(a), (b != 0).then_some(b)]);
    (0u64..1 << 40, srcs, 0u8..12).prop_flat_map(|(pc, srcs, kind)| match kind {
        0..=4 => {
            let class = [
                OpClass::IntAlu,
                OpClass::IntMul,
                OpClass::FpAdd,
                OpClass::FpMul,
                OpClass::IntDiv,
            ][kind as usize];
            Just(MicroOp::alu(pc, class, srcs)).boxed()
        }
        5 | 6 => (0u64..1 << 40)
            .prop_map(move |addr| {
                if kind == 5 {
                    MicroOp::load(pc, addr, srcs)
                } else {
                    MicroOp::store(pc, addr, srcs)
                }
            })
            .boxed(),
        _ => ((0u64..1 << 40), any::<bool>(), 0u8..4)
            .prop_map(move |(target, taken, bk)| {
                let bkind = [
                    BranchKind::Conditional,
                    BranchKind::Jump,
                    BranchKind::Call,
                    BranchKind::Return,
                ][bk as usize];
                MicroOp::branch(pc, bkind, taken, target, srcs)
            })
            .boxed(),
    })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_op(64), 0..300).prop_map(Trace::from_ops_unchecked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary serialization roundtrips every representable trace.
    #[test]
    fn io_roundtrip(trace in arb_trace()) {
        let mut buf = Vec::new();
        io::write_trace(&trace, &mut buf).expect("write to vec");
        let back = io::read_trace(buf.as_slice()).expect("read back");
        prop_assert_eq!(trace, back);
    }

    /// Truncating a serialized trace anywhere inside the payload is
    /// detected, never a panic or a silent wrong answer.
    #[test]
    fn io_truncation_is_detected(trace in arb_trace(), cut in 0usize..64) {
        prop_assume!(!trace.is_empty());
        let mut buf = Vec::new();
        io::write_trace(&trace, &mut buf).expect("write to vec");
        let cut = cut % buf.len().max(1);
        // Keep at least nothing; always strictly shorter than full.
        let truncated = &buf[..buf.len() - 1 - cut.min(buf.len() - 1)];
        prop_assert!(io::read_trace(truncated).is_err());
    }

    /// Data-flow completion times respect dependences: a consumer never
    /// completes before its producer.
    #[test]
    fn completion_respects_dependences(trace in arb_trace()) {
        let done = dag::completion_times(trace.ops(), |_, _| 2, |_| 0);
        for (i, op) in trace.iter().enumerate() {
            for d in op.src_distances() {
                let d = d as usize;
                if d <= i {
                    prop_assert!(
                        done[i] >= done[i - d] + 2,
                        "op {i} finished before its producer plus latency"
                    );
                }
            }
        }
    }

    /// The critical path is monotone in latency and bounded by
    /// ops × max-latency.
    #[test]
    fn critical_path_bounds(trace in arb_trace()) {
        let cp1 = dag::critical_path(trace.ops(), |_, _| 1);
        let cp3 = dag::critical_path(trace.ops(), |_, _| 3);
        prop_assert!(cp3 >= cp1);
        prop_assert!(cp1 as usize <= trace.len().max(1));
        prop_assert!(cp3 as usize <= 3 * trace.len().max(1));
        if !trace.is_empty() {
            prop_assert!(cp1 >= 1);
        }
    }

    /// Trace statistics reconcile with direct counting.
    #[test]
    fn stats_reconcile(trace in arb_trace()) {
        let s = trace.stats();
        prop_assert_eq!(s.total() as usize, trace.len());
        let loads = trace.iter().filter(|o| o.class() == OpClass::Load).count();
        prop_assert_eq!(s.count(OpClass::Load) as usize, loads);
        let conds = trace.conditional_branch_indices().len();
        prop_assert_eq!(s.conditional_branches() as usize, conds);
    }
}
