//! Property tests over every direction predictor: total robustness on
//! arbitrary branch streams, plus the semantic guarantees each predictor
//! kind makes.

use bmp_branch::{build_predictor, BranchStats};
use bmp_uarch::PredictorConfig;
use proptest::prelude::*;

fn all_configs() -> Vec<PredictorConfig> {
    vec![
        PredictorConfig::AlwaysTaken,
        PredictorConfig::AlwaysNotTaken,
        PredictorConfig::Bimodal { entries: 64 },
        PredictorConfig::GShare {
            entries: 64,
            history_bits: 6,
        },
        PredictorConfig::Local {
            history_entries: 32,
            history_bits: 5,
            pattern_entries: 32,
        },
        PredictorConfig::Tournament {
            entries: 64,
            history_bits: 6,
        },
        PredictorConfig::Perceptron {
            entries: 32,
            history_bits: 12,
        },
        PredictorConfig::Perfect,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No predictor panics or corrupts its statistics on arbitrary
    /// (pc, outcome) streams.
    #[test]
    fn predictors_are_total(
        stream in prop::collection::vec((0u64..1 << 34, any::<bool>()), 0..500),
    ) {
        for cfg in all_configs() {
            let mut p = build_predictor(&cfg);
            let mut stats = BranchStats::new();
            for &(pc, taken) in &stream {
                let pred = p.predict(pc, taken);
                stats.record(pred, taken);
                p.update(pc, taken);
            }
            prop_assert_eq!(stats.predictions(), stream.len() as u64);
            prop_assert!(stats.mispredictions() <= stats.predictions());
        }
    }

    /// The oracle is perfect on any stream; static predictors are exactly
    /// as wrong as the outcome distribution says.
    #[test]
    fn oracle_and_static_semantics(
        stream in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..300),
    ) {
        let mut oracle = build_predictor(&PredictorConfig::Perfect);
        let mut taken_pred = build_predictor(&PredictorConfig::AlwaysTaken);
        let mut o_wrong = 0u64;
        let mut t_wrong = 0u64;
        let mut not_taken_count = 0u64;
        for &(pc, taken) in &stream {
            if oracle.predict(pc, taken) != taken {
                o_wrong += 1;
            }
            if taken_pred.predict(pc, taken) != taken {
                t_wrong += 1;
            }
            oracle.update(pc, taken);
            taken_pred.update(pc, taken);
            not_taken_count += u64::from(!taken);
        }
        prop_assert_eq!(o_wrong, 0);
        prop_assert_eq!(t_wrong, not_taken_count);
    }

    /// Every trainable predictor converges on a constant-outcome branch:
    /// after warmup, it stops mispredicting it.
    #[test]
    fn constant_branches_are_learned(pc in 0u64..1 << 30, taken in any::<bool>()) {
        for cfg in all_configs() {
            if matches!(
                cfg,
                PredictorConfig::AlwaysTaken | PredictorConfig::AlwaysNotTaken
            ) {
                continue; // statics cannot learn
            }
            let mut p = build_predictor(&cfg);
            for _ in 0..64 {
                p.predict(pc, taken);
                p.update(pc, taken);
            }
            let mut wrong = 0;
            for _ in 0..32 {
                if p.predict(pc, taken) != taken {
                    wrong += 1;
                }
                p.update(pc, taken);
            }
            prop_assert_eq!(
                wrong,
                0,
                "{} failed to learn a constant branch",
                cfg.name()
            );
        }
    }

    /// Determinism: two instances fed the same stream agree exactly.
    #[test]
    fn predictors_are_deterministic(
        stream in prop::collection::vec((0u64..1 << 16, any::<bool>()), 0..200),
    ) {
        for cfg in all_configs() {
            let mut a = build_predictor(&cfg);
            let mut b = build_predictor(&cfg);
            for &(pc, taken) in &stream {
                prop_assert_eq!(a.predict(pc, taken), b.predict(pc, taken));
                a.update(pc, taken);
                b.update(pc, taken);
            }
        }
    }
}
