//! Property tests over every direction predictor: total robustness on
//! arbitrary branch streams, plus the semantic guarantees each predictor
//! kind makes.

use bmp_branch::{build_predictor, BranchStats, Ittage, Tage, U_AGING_PERIOD};
use bmp_uarch::PredictorConfig;
use proptest::prelude::*;

fn all_configs() -> Vec<PredictorConfig> {
    vec![
        PredictorConfig::AlwaysTaken,
        PredictorConfig::AlwaysNotTaken,
        PredictorConfig::Bimodal { entries: 64 },
        PredictorConfig::GShare {
            entries: 64,
            history_bits: 6,
        },
        PredictorConfig::Local {
            history_entries: 32,
            history_bits: 5,
            pattern_entries: 32,
        },
        PredictorConfig::Tournament {
            entries: 64,
            history_bits: 6,
        },
        PredictorConfig::Perceptron {
            entries: 32,
            history_bits: 12,
        },
        PredictorConfig::Tage {
            base_entries: 64,
            tagged_entries: 64,
            tag_bits: 8,
            num_tables: 4,
            min_history: 2,
            max_history: 16,
        },
        PredictorConfig::Perfect,
    ]
}

/// A strategy over valid TAGE geometries: power-of-two tables, 1..=8
/// tagged tables, and a history span wide enough for the table count.
fn arb_tage() -> impl Strategy<Value = Tage> {
    (
        prop::sample::select(vec![16u32, 64, 256]),
        prop::sample::select(vec![16u32, 64, 256]),
        4u32..=12,
        1u32..=6,
        1u32..=4,
        16u32..=48,
    )
        .prop_map(|(base, tagged, tag_bits, tables, min_h, max_h)| {
            Tage::new(base, tagged, tag_bits, tables, min_h, max_h)
        })
}

/// Same over ITTAGE geometries, plus a small target alphabet so tagged
/// entries actually get exercised (allocation, confidence, u bits).
fn arb_ittage() -> impl Strategy<Value = Ittage> {
    (
        prop::sample::select(vec![16u32, 64, 256]),
        4u32..=12,
        1u32..=6,
        1u32..=4,
        16u32..=48,
    )
        .prop_map(|(tagged, tag_bits, tables, min_h, max_h)| {
            Ittage::new(tagged, tag_bits, tables, min_h, max_h)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No predictor panics or corrupts its statistics on arbitrary
    /// (pc, outcome) streams.
    #[test]
    fn predictors_are_total(
        stream in prop::collection::vec((0u64..1 << 34, any::<bool>()), 0..500),
    ) {
        for cfg in all_configs() {
            let mut p = build_predictor(&cfg);
            let mut stats = BranchStats::new();
            for &(pc, taken) in &stream {
                let pred = p.predict(pc, taken);
                stats.record(pred, taken);
                p.update(pc, taken);
            }
            prop_assert_eq!(stats.predictions(), stream.len() as u64);
            prop_assert!(stats.mispredictions() <= stats.predictions());
        }
    }

    /// The oracle is perfect on any stream; static predictors are exactly
    /// as wrong as the outcome distribution says.
    #[test]
    fn oracle_and_static_semantics(
        stream in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..300),
    ) {
        let mut oracle = build_predictor(&PredictorConfig::Perfect);
        let mut taken_pred = build_predictor(&PredictorConfig::AlwaysTaken);
        let mut o_wrong = 0u64;
        let mut t_wrong = 0u64;
        let mut not_taken_count = 0u64;
        for &(pc, taken) in &stream {
            if oracle.predict(pc, taken) != taken {
                o_wrong += 1;
            }
            if taken_pred.predict(pc, taken) != taken {
                t_wrong += 1;
            }
            oracle.update(pc, taken);
            taken_pred.update(pc, taken);
            not_taken_count += u64::from(!taken);
        }
        prop_assert_eq!(o_wrong, 0);
        prop_assert_eq!(t_wrong, not_taken_count);
    }

    /// Every trainable predictor converges on a constant-outcome branch:
    /// after warmup, it stops mispredicting it.
    #[test]
    fn constant_branches_are_learned(pc in 0u64..1 << 30, taken in any::<bool>()) {
        for cfg in all_configs() {
            if matches!(
                cfg,
                PredictorConfig::AlwaysTaken | PredictorConfig::AlwaysNotTaken
            ) {
                continue; // statics cannot learn
            }
            let mut p = build_predictor(&cfg);
            for _ in 0..64 {
                p.predict(pc, taken);
                p.update(pc, taken);
            }
            let mut wrong = 0;
            for _ in 0..32 {
                if p.predict(pc, taken) != taken {
                    wrong += 1;
                }
                p.update(pc, taken);
            }
            prop_assert_eq!(
                wrong,
                0,
                "{} failed to learn a constant branch",
                cfg.name()
            );
        }
    }

    /// Determinism: two instances fed the same stream agree exactly.
    #[test]
    fn predictors_are_deterministic(
        stream in prop::collection::vec((0u64..1 << 16, any::<bool>()), 0..200),
    ) {
        for cfg in all_configs() {
            let mut a = build_predictor(&cfg);
            let mut b = build_predictor(&cfg);
            for &(pc, taken) in &stream {
                prop_assert_eq!(a.predict(pc, taken), b.predict(pc, taken));
                a.update(pc, taken);
                b.update(pc, taken);
            }
        }
    }

    /// TAGE predictions are pure functions of `(history, tables)` for
    /// any geometry: after arbitrary training, repeated queries at any
    /// pc return the same answer and leave every observable piece of
    /// state untouched.
    #[test]
    fn tage_predict_is_pure_for_random_configs(
        tage in arb_tage(),
        stream in prop::collection::vec((0u64..1 << 20, any::<bool>()), 0..300),
        probes in prop::collection::vec(0u64..1 << 20, 1..20),
    ) {
        let mut t = tage;
        for &(pc, taken) in &stream {
            t.train(pc, taken);
        }
        let (h, u, n) = (t.history(), t.useful_total(), t.update_count());
        for &pc in &probes {
            let first = (t.predict_taken(pc), t.altpred_taken(pc), t.provider_level(pc));
            for _ in 0..3 {
                let again = (t.predict_taken(pc), t.altpred_taken(pc), t.provider_level(pc));
                prop_assert_eq!(again, first);
            }
        }
        prop_assert_eq!(t.history(), h);
        prop_assert_eq!(t.useful_total(), u);
        prop_assert_eq!(t.update_count(), n);
    }

    /// TAGE useful counters age only on the [`U_AGING_PERIOD`] schedule:
    /// away from a boundary, an update changes the useful total by at
    /// most ±1 (one provider's counter moving one step); at a boundary,
    /// the post-halving total is bounded by half the pre-update total
    /// plus that same single step.
    #[test]
    fn tage_u_bits_age_only_on_schedule(
        tage in arb_tage(),
        stream in prop::collection::vec((0u64..1 << 16, any::<bool>()), 1..400),
    ) {
        let mut t = tage;
        // Advance to just short of an aging boundary so the random
        // stream always straddles one (its last update lands exactly on
        // `U_AGING_PERIOD`).
        for _ in 0..U_AGING_PERIOD - stream.len() as u64 {
            t.train(0x1C, false);
        }
        for &(pc, taken) in &stream {
            let before = t.useful_total();
            t.train(pc, taken);
            let after = t.useful_total();
            if t.update_count() % U_AGING_PERIOD == 0 {
                prop_assert!(after <= (before + 1).div_ceil(2));
            } else {
                // One update moves at most one u counter by one, or
                // decays one allocation column by one each.
                prop_assert!(after <= before + 1);
            }
        }
    }

    /// ITTAGE target predictions are pure for any geometry.
    #[test]
    fn ittage_predict_is_pure_for_random_configs(
        ittage in arb_ittage(),
        stream in prop::collection::vec(
            (0u64..1 << 12, prop::sample::select(vec![0x100u64, 0x204, 0x30C, 0x8010])),
            0..300,
        ),
        probes in prop::collection::vec(0u64..1 << 12, 1..20),
    ) {
        let mut t = ittage;
        for &(pc, target) in &stream {
            t.update(pc, target);
        }
        let (u, n) = (t.useful_total(), t.update_count());
        for &pc in &probes {
            let first = (t.predict_target(pc), t.provider_level(pc));
            for _ in 0..3 {
                let again = (t.predict_target(pc), t.provider_level(pc));
                prop_assert_eq!(again, first);
            }
        }
        prop_assert_eq!(t.useful_total(), u);
        prop_assert_eq!(t.update_count(), n);
    }
}
