//! Predictor conformance suite: hand-computed vectors that pin down the
//! exact bit-level behaviour of every direction predictor generation
//! (bimodal, gshare, perceptron, TAGE) and of ITTAGE.
//!
//! Unlike the statistical tests in each predictor's unit module ("learns
//! alternation", "miss rate under X"), every assertion here is derived
//! by hand from the documented update rules — the counter widths and
//! initial values in `counter.rs`, the index/tag hashes in the `tage`
//! module docs, and the provider/altpred/allocation/aging schedule
//! pinned in `tage.rs` and `indirect.rs`. A conformance failure means
//! the predictor's *definition* changed, which silently invalidates
//! every committed golden table; regenerate goldens only after updating
//! the vectors here to the new, intended definition.
//!
//! The suite runs each direction vector through both construction paths
//! (`build_predictor`'s boxed trait object and `InlinePredictor`'s
//! static dispatch) so the two engines' predictors are pinned to the
//! same bit-exact behaviour.

use bmp_branch::{build_predictor, InlinePredictor, Ittage, Tage, U_AGING_PERIOD};
use bmp_uarch::PredictorConfig;

/// Drives one (pc, outcome) stream through both the boxed and the inline
/// construction of `cfg`, asserting each step's prediction against the
/// hand-computed expectation.
fn run_vector(cfg: &PredictorConfig, steps: &[(u64, bool, bool)]) {
    let mut boxed = build_predictor(cfg);
    let mut inline = InlinePredictor::build(cfg);
    for (i, &(pc, outcome, expected)) in steps.iter().enumerate() {
        assert_eq!(
            boxed.predict(pc, outcome),
            expected,
            "{}: step {i} (pc {pc:#x}) boxed prediction",
            cfg.name()
        );
        assert_eq!(
            inline.predict(pc, outcome),
            expected,
            "{}: step {i} (pc {pc:#x}) inline prediction",
            cfg.name()
        );
        boxed.update(pc, outcome);
        inline.update(pc, outcome);
    }
}

/// Bimodal, 4 entries of 2-bit counters starting at 1 (weakly
/// not-taken); index = (pc >> 2) & 3. The counter walks
/// 1 →T 2 →T 3 →F 2 →F 1 →F 0, predicting taken at values 2 and 3.
#[test]
fn bimodal_counter_walk_and_aliasing() {
    let cfg = PredictorConfig::Bimodal { entries: 4 };
    run_vector(
        &cfg,
        &[
            // pc 0x8 → entry 2: 1(NT) →T 2(T) →T 3(T) →F 2(T) →F 1(NT)
            (0x8, true, false),
            (0x8, true, true),
            (0x8, false, true),
            (0x8, false, true),
            // pc 0x18 → (0x18>>2)&3 = 2: shares the entry (now at 1).
            (0x18, true, false),
            // pc 0xC → entry 3: untouched, still weakly not-taken.
            (0xC, true, false),
            // pc 0x8 again: the 0x18 update drove entry 2 back to 2.
            (0x8, true, true),
        ],
    );
}

/// GShare, 16 entries, 4 history bits: index = ((pc>>2) ^ h) & 15,
/// h' = ((h<<1)|taken) & 15. For pc 0x40 ((pc>>2)&15 = 0) under strict
/// alternation T,F,T,F,… the history register walks
/// 0 →T 1 →F 2 →T 5 →F 10 →T 5 →F 10 … so from step 5 on the index
/// ping-pongs between entries 5 and 10; entry 10 was trained taken at
/// step 5 (value 2) and entry 5 trained to 0 at steps 4 and 6, making
/// every prediction from step 7 onward correct.
#[test]
fn gshare_locks_onto_alternation_through_the_history_index() {
    let cfg = PredictorConfig::GShare {
        entries: 16,
        history_bits: 4,
    };
    run_vector(
        &cfg,
        &[
            (0x40, true, false),  // h=0,  idx 0:  ctr 1 → NT; train→2
            (0x40, false, false), // h=1,  idx 1:  ctr 1 → NT; train→0
            (0x40, true, false),  // h=2,  idx 2:  ctr 1 → NT; train→2
            (0x40, false, false), // h=5,  idx 5:  ctr 1 → NT; train→0
            (0x40, true, false),  // h=10, idx 10: ctr 1 → NT; train→2
            (0x40, false, false), // h=5,  idx 5:  ctr 0 → NT (correct)
            (0x40, true, true),   // h=10, idx 10: ctr 2 → T  (correct)
            (0x40, false, false), // h=5:  correct from here on
            (0x40, true, true),   // h=10
        ],
    );
}

/// Perceptron, 16 rows × (4 history weights + bias), θ = ⌊1.93·4+14⌋ =
/// 21. All weights start at 0, so the cold dot product is 0 and
/// `y >= 0` predicts taken. Training an always-taken branch at pc 0x20
/// keeps y small (every step trains because |y| ≤ 21); the hand-tracked
/// outputs for steps 1..=6 are 0, 3, 4, 3, 0, 5 — all taken. The first
/// not-taken outcome at step 7 (y = 10, mispredict) subtracts the
/// history pattern from the weights and flips the history register, and
/// the very next output is y = −1 → not-taken.
#[test]
fn perceptron_dot_product_walk() {
    let cfg = PredictorConfig::Perceptron {
        entries: 16,
        history_bits: 4,
    };
    run_vector(
        &cfg,
        &[
            (0x20, true, true),   // y=0   w←[1,-1,-1,-1,-1] h=0b0001
            (0x20, true, true),   // y=3   w←[2,0,-2,-2,-2]  h=0b0011
            (0x20, true, true),   // y=4   w←[3,1,-1,-3,-3]  h=0b0111
            (0x20, true, true),   // y=3   w←[4,2,0,-2,-4]   h=0b1111
            (0x20, true, true),   // y=0   w←[5,3,1,-1,-3]   h=0b1111
            (0x20, true, true),   // y=5   w←[6,4,2,0,-2]    h=0b1111
            (0x20, false, true),  // y=10  mispredict; w←[5,3,1,-1,-3] h=0b1110
            (0x20, false, false), // y = 5−3+1−1−3 = −1 → NT (correct)
        ],
    );
}

/// The conformance TAGE: 16-entry base and tagged tables, 8-bit tags,
/// two tagged tables with history lengths [2, 4] (the geometric series
/// for n=2, min=2, max=4). With 16 entries the index fold of ≤4 history
/// bits is just `h & 15`, so every index and tag below is computable by
/// eye: `idx_i = ((pc>>2) ^ (h & (2^L_i − 1))) & 15`, same for tags
/// against an 8-bit mask.
fn conformance_tage() -> Tage {
    Tage::new(16, 16, 8, 2, 2, 4)
}

/// The full hand trace for pc 0x40 (pc>>2 = 0x10) under alternation.
///
/// | step | h (pre) | provider        | predict | outcome | effect |
/// |------|---------|-----------------|---------|---------|--------|
/// | 1    | 0       | base[0]=1       | NT      | T       | base→2, alloc T0[0] tag 0x10 weak-T |
/// | 2    | 1       | base[0]=2       | T       | F       | base→1, alloc T0[1] tag 0x11 weak-NT |
/// | 3    | 2       | base[0]=1       | NT      | T       | base→2, alloc T0[2] tag 0x12 weak-T |
/// | 4    | 5       | T0[1] ctr 3     | NT      | F       | correct: u[1] 0→1, ctr→2 |
/// | 5    | 10      | T0[2] ctr 4     | T       | T       | correct: altpred base agrees, ctr→5 |
/// | 6    | 21      | T0[1] ctr 2     | NT      | F       | correct: u[1] 1→2, ctr→1 |
/// | 7    | 42      | T0[2] ctr 5     | T       | T       | correct |
///
/// (The entries allocated in steps 1–3 are each found again two steps
/// later, when the two youngest history bits repeat.)
#[test]
fn tage_alternation_hand_trace() {
    let cfg = PredictorConfig::Tage {
        base_entries: 16,
        tagged_entries: 16,
        tag_bits: 8,
        num_tables: 2,
        min_history: 2,
        max_history: 4,
    };
    run_vector(
        &cfg,
        &[
            (0x40, true, false),
            (0x40, false, true),
            (0x40, true, false),
            (0x40, false, false),
            (0x40, true, true),
            (0x40, false, false),
            (0x40, true, true),
        ],
    );

    // Replay on the concrete type and check the internals the vector
    // implies, through the public inspection APIs.
    let mut t = conformance_tage();
    assert_eq!(t.history_lengths(), &[2, 4]);
    assert_eq!(t.provider_level(0x40), None, "cold: base provides");
    for (i, taken) in [true, false, true, false, true, false, true]
        .into_iter()
        .enumerate()
    {
        if i == 3 {
            // Before step 4 (h = 5): T0[1] (allocated at step 2) is
            // found again and provides a not-taken prediction while the
            // base table altpred still says taken.
            assert_eq!(t.provider_level(0x40), Some(0));
            assert!(!t.predict_taken(0x40));
            assert!(t.altpred_taken(0x40), "base altpred disagrees");
            assert_eq!(t.useful_total(), 0, "no provider has been useful yet");
        }
        t.train(0x40, taken);
    }
    assert_eq!(t.history(), 0b1010101, "seven outcomes shifted in, T first");
    assert_eq!(t.update_count(), 7);
    // Steps 4 and 6: T0[1] provided correctly against a disagreeing
    // altpred, twice.
    assert_eq!(t.useful_total(), 2);
}

/// Rule 4: at exactly every [`U_AGING_PERIOD`]th update, all useful
/// counters halve. The filler branch (pc 0x84, always not-taken) is
/// predicted correctly by its own cold base entry from the first step,
/// so it never allocates and never touches any `u` — the only change at
/// the boundary is the halving.
#[test]
fn tage_u_bits_age_only_at_the_period_boundary() {
    let mut t = conformance_tage();
    for taken in [true, false, true, false, true, false, true] {
        t.train(0x40, taken);
    }
    assert_eq!(t.useful_total(), 2);
    while t.update_count() < U_AGING_PERIOD - 1 {
        t.train(0x84, false);
        assert_eq!(t.useful_total(), 2, "u stable away from the boundary");
    }
    t.train(0x84, false);
    assert_eq!(t.update_count(), U_AGING_PERIOD);
    assert_eq!(t.useful_total(), 1, "2 >> 1 at the first boundary");
    for _ in 0..U_AGING_PERIOD {
        t.train(0x84, false);
    }
    assert_eq!(t.useful_total(), 0, "1 >> 1 at the second boundary");
}

/// Continues the alternation hand trace through a table-1 provider and
/// the rule-3 fallback: a misprediction whose provider already sits in
/// the longest-history table has nowhere to allocate and must leave
/// every other entry untouched.
///
/// Steps 8–13 (pre-update history h, provider, outcome, effect):
///
/// | step | h (pre)   | provider         | outcome | effect |
/// |------|-----------|------------------|---------|--------|
/// | 8  | 85  (&3=1)  | T0[1] ctr 1 (NT) | T | wrong: u[1] 2→1, ctr→2; alloc T1[5] tag 0x15 weak-T (h&15 = 5) |
/// | 9  | 171 (&3=3)  | base (2 → T)     | F | wrong: base→1; alloc T0[3] |
/// | 10 | 342 (&3=2)  | T0[2] ctr 6 (T)  | T | right vs base altpred NT: u[2] 0→1, ctr→7 |
/// | 11 | 685 (&3=1)  | T0[1] ctr 2 (NT) | F | altpred base also NT: no u change, ctr→1 |
/// | 12 | 1370 (&3=2) | T0[2] ctr 7 (T)  | T | u[2] 1→2; h&15 becomes 5 |
/// | 13 | 2741 (&15=5)| T1[5] ctr 4 (T)  | F | wrong: u[T1[5]] stays 0, ctr→3; alloc level 2 does not exist → nothing |
#[test]
fn tage_mispredict_at_longest_table_does_not_allocate() {
    let mut t = conformance_tage();
    for taken in [true, false, true, false, true, false, true] {
        t.train(0x40, taken);
    }
    for taken in [true, false, true, false, true] {
        t.train(0x40, taken); // steps 8..=12
    }
    // Before step 13: the entry allocated at step 8 in the longest
    // table finally matches (h & 15 == 5 again), overriding the
    // table-0 altpred that says not-taken.
    assert_eq!(t.provider_level(0x40), Some(1));
    assert!(t.predict_taken(0x40));
    assert!(!t.altpred_taken(0x40));
    assert_eq!(t.useful_total(), 3, "u[T0[1]] = 1, u[T0[2]] = 2");
    t.train(0x40, false); // step 13: mispredict at the longest table
    assert_eq!(t.update_count(), 13);
    assert_eq!(t.useful_total(), 3, "no decay, no eviction: rule 3 no-ops");
    // h = 5482 (&15 = 10, &3 = 2): T1[5] no longer matches and the
    // step-3 entry T0[2] (ctr 7) provides again.
    assert_eq!(t.provider_level(0x40), Some(0));
    assert!(t.predict_taken(0x40));
}

/// ITTAGE hand trace, part 1 — constant-target training at pc 0x40 with
/// target 0x400 (whose two folded history bits are 0, keeping the path
/// history at 0 so every step reuses table-0 index 0, tag 0x10):
/// allocation on the cold miss, then confidence 1 → 2 → 3 (saturated).
#[test]
fn ittage_constant_target_confidence_walk() {
    let mut t = Ittage::new(16, 8, 2, 2, 4);
    assert_eq!(t.predict_target(0x40), None, "cold: BTB fallback");
    t.update(0x40, 0x400); // mispredict → allocate T0[0] conf 1
    assert_eq!(t.predict_target(0x40), Some(0x400));
    assert_eq!(t.provider_level(0x40), Some(0));
    for _ in 0..3 {
        t.update(0x40, 0x400); // conf 1→2→3→3 (saturates)
    }
    assert_eq!(t.predict_target(0x40), Some(0x400));
    assert_eq!(t.useful_total(), 0, "no altpred has ever disagreed");
}

/// ITTAGE hand trace, part 2 — target change, useful bits, the
/// no-allocation path at the longest table, and the re-target rule.
///
/// Continuing from part 1 (T0[0]: target 0x400, conf 3; history 0; the
/// alternate target 0x800 also folds to 0 history bits):
///
/// | step | event | provider | effect |
/// |------|-------|----------|--------|
/// | 5 | resolve 0x800 | T0 (0x400, wrong) | conf→2; alloc T1[0] (0x800, conf 1) |
/// | 6 | resolve 0x800 | T1 (right, alt T0 differs) | u(T1)→1, conf→2 |
/// | 7 | resolve 0x400 | T1 (wrong, alt right) | u(T1)→0, conf→1; alloc above T1 impossible |
/// | 8 | resolve 0x400 | T1 (wrong, conf 1→0) | prediction now falls through to T0 |
/// | 9 | resolve 0x400 | T1 (wrong, conf 0) | re-target: T1 ← (0x400, conf 1) |
#[test]
fn ittage_retarget_and_useful_bit_hand_trace() {
    let mut t = Ittage::new(16, 8, 2, 2, 4);
    t.update(0x40, 0x400);
    for _ in 0..3 {
        t.update(0x40, 0x400);
    }
    t.update(0x40, 0x800); // step 5
    assert_eq!(
        t.provider_level(0x40),
        Some(1),
        "T1 entry is the new provider"
    );
    assert_eq!(t.predict_target(0x40), Some(0x800));
    t.update(0x40, 0x800); // step 6
    assert_eq!(t.useful_total(), 1, "provider beat a disagreeing altpred");
    t.update(0x40, 0x400); // step 7
    assert_eq!(t.useful_total(), 0, "altpred was right instead");
    assert_eq!(t.predict_target(0x40), Some(0x800), "conf 1: still trusted");
    t.update(0x40, 0x400); // step 8: conf → 0
    assert_eq!(
        t.predict_target(0x40),
        Some(0x400),
        "zero-confidence provider yields to the altpred's target"
    );
    t.update(0x40, 0x400); // step 9: re-target
    assert_eq!(t.provider_level(0x40), Some(1));
    assert_eq!(t.predict_target(0x40), Some(0x400), "provider re-targeted");
    assert_eq!(t.update_count(), 9);
}

/// ITTAGE shares TAGE's aging schedule: the useful counter earned in the
/// part-2 trace survives every update until exactly the
/// [`U_AGING_PERIOD`] boundary. The filler (pc 0x84, constant target
/// 0x400) allocates once on its cold miss and then predicts correctly
/// forever, touching no useful counters.
#[test]
fn ittage_u_bits_age_on_schedule() {
    let mut t = Ittage::new(16, 8, 2, 2, 4);
    t.update(0x40, 0x400);
    for _ in 0..3 {
        t.update(0x40, 0x400);
    }
    t.update(0x40, 0x800);
    t.update(0x40, 0x800); // u = 1, updates = 6
    assert_eq!(t.useful_total(), 1);
    while t.update_count() < U_AGING_PERIOD - 1 {
        t.update(0x84, 0x400);
        assert_eq!(t.useful_total(), 1, "u stable away from the boundary");
    }
    t.update(0x84, 0x400);
    assert_eq!(t.update_count(), U_AGING_PERIOD);
    assert_eq!(t.useful_total(), 0, "1 >> 1 at the boundary");
}
