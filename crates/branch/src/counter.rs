//! Saturating up/down counters, the basic state element of direction
//! predictors.

use serde::{Deserialize, Serialize};

/// An `n`-bit saturating counter.
///
/// Counts in `0..2^n`; values in the upper half predict *taken*. The
/// classic 2-bit counter initializes to `1` (weakly not-taken).
///
/// # Examples
///
/// ```
/// use bmp_branch::SaturatingCounter;
///
/// let mut c = SaturatingCounter::two_bit();
/// assert!(!c.predicts_taken());
/// c.train(true);
/// c.train(true);
/// assert!(c.predicts_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter with `bits` bits starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `initial` exceeds the
    /// counter range.
    pub fn new(bits: u8, initial: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width must be 1..=7 bits");
        let max = (1u8 << bits) - 1;
        assert!(initial <= max, "initial value out of range");
        Self {
            value: initial,
            max,
        }
    }

    /// The conventional 2-bit counter, initialized weakly not-taken.
    pub fn two_bit() -> Self {
        Self::new(2, 1)
    }

    /// Current raw value.
    #[inline]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Returns `true` if the counter currently predicts taken.
    #[inline]
    pub fn predicts_taken(&self) -> bool {
        u16::from(self.value) * 2 > u16::from(self.max)
    }

    /// Trains the counter toward the observed outcome.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        Self::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_hysteresis() {
        let mut c = SaturatingCounter::two_bit();
        // weakly not-taken -> strongly not-taken
        c.train(false);
        assert_eq!(c.value(), 0);
        // needs two taken to flip the prediction
        c.train(true);
        assert!(!c.predicts_taken());
        c.train(true);
        assert!(c.predicts_taken());
        // one not-taken does not flip back from strong
        c.train(true);
        c.train(false);
        assert!(c.predicts_taken());
    }

    #[test]
    fn saturates_at_bounds() {
        let mut c = SaturatingCounter::two_bit();
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn one_bit_counter_flips_immediately() {
        let mut c = SaturatingCounter::new(1, 0);
        assert!(!c.predicts_taken());
        c.train(true);
        assert!(c.predicts_taken());
        c.train(false);
        assert!(!c.predicts_taken());
    }

    #[test]
    fn midpoint_predicts_not_taken_for_even_ranges() {
        // 3-bit counter: values 0..=7; 4 and above predict taken.
        let c = SaturatingCounter::new(3, 4);
        assert!(c.predicts_taken());
        let c = SaturatingCounter::new(3, 3);
        assert!(!c.predicts_taken());
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_zero_bits() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "initial value")]
    fn rejects_out_of_range_initial() {
        let _ = SaturatingCounter::new(2, 4);
    }
}
