//! Branch-prediction statistics.

use serde::{Deserialize, Serialize};

/// Accuracy accounting for a direction predictor run.
///
/// # Examples
///
/// ```
/// use bmp_branch::BranchStats;
///
/// let mut s = BranchStats::default();
/// s.record(true, true);
/// s.record(true, false);
/// assert_eq!(s.mispredictions(), 1);
/// assert!((s.miss_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    predictions: u64,
    mispredictions: u64,
}

impl BranchStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs statistics from raw counters — the deserialization
    /// path for the bench crate's persisted-artifact codec. `mispredictions`
    /// is clamped to `predictions` so a decoded value can never claim a
    /// miss rate above 1.
    pub fn from_raw(predictions: u64, mispredictions: u64) -> Self {
        Self {
            predictions,
            mispredictions: mispredictions.min(predictions),
        }
    }

    /// Records one prediction with its actual outcome.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        self.predictions += 1;
        if predicted != actual {
            self.mispredictions += 1;
        }
    }

    /// Total conditional branches predicted.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate over predicted branches (0 when nothing
    /// predicted yet).
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Mispredictions per kilo-instruction, given the total dynamic
    /// instruction count of the run.
    pub fn mpki(&self, total_instructions: u64) -> f64 {
        if total_instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / total_instructions as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &BranchStats) {
        self.predictions += other.predictions;
        self.mispredictions += other.mispredictions;
    }

    /// Zeroes the counters (the warmup idiom).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let mut s = BranchStats::new();
        for (p, a) in [(true, true), (false, true), (true, true), (false, false)] {
            s.record(p, a);
        }
        assert_eq!(s.predictions(), 4);
        assert_eq!(s.mispredictions(), 1);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.mpki(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = BranchStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
        assert_eq!(s.mpki(100), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BranchStats::new();
        a.record(true, false);
        let mut b = BranchStats::new();
        b.record(true, true);
        b.record(false, false);
        a.merge(&b);
        assert_eq!(a.predictions(), 3);
        assert_eq!(a.mispredictions(), 1);
    }
}
