//! TAGE: TAgged GEometric-history-length branch prediction
//! (Seznec & Michaud, JILP 2006).
//!
//! A bimodal base table plus `num_tables` tagged tables, each indexed by
//! a different global-history length drawn from a geometric series. The
//! *provider* is the longest-history table whose tag matches; the
//! *altpred* is the next matching table below it (or the base table).
//! Tagged entries carry a 3-bit signed counter, a partial tag, and a
//! 2-bit useful (`u`) counter that gates replacement: new entries are
//! only allocated over `u == 0` victims, and every [`U_AGING_PERIOD`]
//! updates all `u` counters are halved so stale entries decay back to
//! replaceable.
//!
//! The update rules implemented here (and pinned by
//! `crates/branch/tests/conformance.rs`):
//!
//! 1. `predict` is a pure function of `(pc, history, tables)` — it
//!    mutates nothing (property-tested in
//!    `tests/predictor_properties.rs`).
//! 2. `update` recomputes provider/altpred from the pre-update state,
//!    trains the provider's counter toward the outcome (the base counter
//!    when no tag matched), and — when provider and altpred disagree —
//!    moves the provider's `u` up if the provider was right, down if it
//!    was wrong.
//! 3. On a misprediction, one new entry is allocated in the *first*
//!    longer-history table whose indexed entry has `u == 0`
//!    (deterministic first-fit; initialized weak toward the outcome with
//!    `u = 0`). If every candidate is useful, all their `u` counters are
//!    decremented instead.
//! 4. The global history shifts in the outcome
//!    (`h' = (h << 1) | taken`) after every update, and `u` aging fires
//!    when the update counter reaches a multiple of [`U_AGING_PERIOD`].
//!
//! Index and tag hashes are deliberately simple XOR folds so conformance
//! vectors stay hand-computable: for table `i` with history length `L_i`,
//! `index = ((pc >> 2) ^ fold(h, L_i, log2(entries))) % entries` and
//! `tag = ((pc >> 2) ^ fold(h, L_i, tag_bits)) % 2^tag_bits`, where
//! `fold` XOR-folds the youngest `L_i` history bits into the given width.

use crate::counter::SaturatingCounter;

/// Updates between useful-counter aging events: every this many calls to
/// [`Tage::train`] (or `Ittage::update`), all `u` counters are halved
/// (`u >>= 1`). Public so tests can drive the schedule exactly.
pub const U_AGING_PERIOD: u64 = 2048;

/// Maximum value of the 2-bit useful counter.
pub(crate) const U_MAX: u8 = 3;

/// XOR-folds the youngest `len` bits of `history` into `bits` bits.
///
/// Bit 0 of `history` is the most recent outcome. `len == 64` uses the
/// whole register. A `bits` of zero folds to zero.
pub(crate) fn fold_history(history: u64, len: u32, bits: u32) -> u64 {
    if bits == 0 || len == 0 {
        return 0;
    }
    let mut h = if len >= 64 {
        history
    } else {
        history & ((1u64 << len) - 1)
    };
    let mask = (1u64 << bits.min(63)) - 1;
    let mut out = 0u64;
    while h != 0 {
        out ^= h & mask;
        h >>= bits;
    }
    out
}

/// The strictly increasing geometric history-length series for
/// `n` tables spanning `min..=max`.
///
/// `L_0 = min`, `L_{n-1} = max`, intermediate lengths follow
/// `min · (max/min)^(i/(n-1))` rounded to the nearest integer and then
/// adjusted minimally to stay strictly increasing (the config layer
/// guarantees `max - min + 1 >= n`, so an adjustment always exists).
pub(crate) fn geometric_lengths(n: u32, min: u32, max: u32) -> Vec<u32> {
    assert!(n >= 1 && min >= 1 && min <= max && max - min + 1 >= n);
    if n == 1 {
        return vec![max];
    }
    let ratio = (f64::from(max) / f64::from(min)).powf(1.0 / f64::from(n - 1));
    let mut lens: Vec<u32> = (0..n)
        .map(|i| {
            (f64::from(min) * ratio.powi(i as i32))
                .round()
                .clamp(f64::from(min), f64::from(max)) as u32
        })
        .collect();
    for i in 1..lens.len() {
        if lens[i] <= lens[i - 1] {
            lens[i] = lens[i - 1] + 1;
        }
    }
    let last = lens.len() - 1;
    lens[last] = max;
    for i in (0..last).rev() {
        if lens[i] >= lens[i + 1] {
            lens[i] = lens[i + 1] - 1;
        }
    }
    lens
}

/// One tagged-table entry.
#[derive(Debug, Clone, Copy)]
struct TageEntry {
    valid: bool,
    tag: u64,
    ctr: SaturatingCounter,
    u: u8,
}

impl TageEntry {
    fn empty() -> Self {
        Self {
            valid: false,
            tag: 0,
            ctr: SaturatingCounter::new(3, 3),
            u: 0,
        }
    }
}

/// Where a prediction came from: a tagged table level, or the base table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Match {
    /// Tagged-table index (0 = shortest history), `None` = base table.
    level: Option<usize>,
    taken: bool,
}

/// The TAGE direction predictor. See the module docs for the exact
/// update rules; built from [`PredictorConfig::Tage`].
///
/// [`PredictorConfig::Tage`]: bmp_uarch::PredictorConfig::Tage
#[derive(Debug, Clone)]
pub struct Tage {
    base: Vec<SaturatingCounter>,
    base_entries: u32,
    tables: Vec<Vec<TageEntry>>,
    tagged_entries: u32,
    tag_mask: u64,
    index_bits: u32,
    tag_bits: u32,
    hist_lens: Vec<u32>,
    history: u64,
    updates: u64,
}

impl Tage {
    /// Creates a TAGE predictor.
    ///
    /// # Panics
    ///
    /// Panics on parameters that [`PredictorConfig::Tage`] validation
    /// would reject (non-power-of-two tables, out-of-range tag width or
    /// table count, or a history span shorter than the table count).
    ///
    /// [`PredictorConfig::Tage`]: bmp_uarch::PredictorConfig::Tage
    pub fn new(
        base_entries: u32,
        tagged_entries: u32,
        tag_bits: u32,
        num_tables: u32,
        min_history: u32,
        max_history: u32,
    ) -> Self {
        assert!(base_entries.is_power_of_two() && base_entries > 0);
        assert!(tagged_entries.is_power_of_two() && tagged_entries > 0);
        assert!((4..=16).contains(&tag_bits));
        assert!((1..=8).contains(&num_tables));
        assert!(min_history >= 1 && min_history <= max_history && max_history <= 64);
        assert!(max_history - min_history + 1 >= num_tables);
        Self {
            base: vec![SaturatingCounter::two_bit(); base_entries as usize],
            base_entries,
            tables: vec![vec![TageEntry::empty(); tagged_entries as usize]; num_tables as usize],
            tagged_entries,
            tag_mask: (1u64 << tag_bits) - 1,
            index_bits: tagged_entries.trailing_zeros(),
            tag_bits,
            hist_lens: geometric_lengths(num_tables, min_history, max_history),
            history: 0,
            updates: 0,
        }
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) & u64::from(self.base_entries - 1)) as usize
    }

    fn index(&self, level: usize, pc: u64) -> usize {
        let folded = fold_history(self.history, self.hist_lens[level], self.index_bits);
        (((pc >> 2) ^ folded) & u64::from(self.tagged_entries - 1)) as usize
    }

    fn tag(&self, level: usize, pc: u64) -> u64 {
        let folded = fold_history(self.history, self.hist_lens[level], self.tag_bits);
        ((pc >> 2) ^ folded) & self.tag_mask
    }

    /// Provider and altpred from the current (pre-update) state.
    fn matches(&self, pc: u64) -> (Match, Match) {
        let base = Match {
            level: None,
            taken: self.base[self.base_index(pc)].predicts_taken(),
        };
        let mut provider = base;
        let mut altpred = base;
        for level in (0..self.tables.len()).rev() {
            let e = &self.tables[level][self.index(level, pc)];
            if e.valid && e.tag == self.tag(level, pc) {
                let m = Match {
                    level: Some(level),
                    taken: e.ctr.predicts_taken(),
                };
                if provider.level.is_none() {
                    provider = m;
                } else {
                    altpred = m;
                    break;
                }
            }
        }
        (provider, altpred)
    }

    /// The current prediction for `pc`: a pure function of the predictor
    /// state, mutating nothing.
    pub fn predict_taken(&self, pc: u64) -> bool {
        self.matches(pc).0.taken
    }

    /// The alternate prediction (the next-longest matching table below
    /// the provider, or the base table).
    pub fn altpred_taken(&self, pc: u64) -> bool {
        self.matches(pc).1.taken
    }

    /// The provider's tagged-table level for `pc` (0 = shortest
    /// history), or `None` when the base table provides.
    pub fn provider_level(&self, pc: u64) -> Option<usize> {
        self.matches(pc).0.level
    }

    /// Sum of all useful counters — the quantity drained by `u` aging.
    pub fn useful_total(&self) -> u64 {
        self.tables.iter().flatten().map(|e| u64::from(e.u)).sum()
    }

    /// The global-history register (bit 0 = most recent outcome).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Number of `update` calls so far (drives the aging schedule).
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// The per-table history lengths, shortest first.
    pub fn history_lengths(&self) -> &[u32] {
        &self.hist_lens
    }

    /// Trains on the resolved outcome; see the module docs for the exact
    /// provider/u-bit/allocation/aging schedule.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let (provider, altpred) = self.matches(pc);
        match provider.level {
            Some(level) => {
                // Useful-bit update: only meaningful when the provider
                // actually changed the prediction.
                if provider.taken != altpred.taken {
                    let idx = self.index(level, pc);
                    let e = &mut self.tables[level][idx];
                    if provider.taken == taken {
                        e.u = (e.u + 1).min(U_MAX);
                    } else {
                        e.u = e.u.saturating_sub(1);
                    }
                }
                let idx = self.index(level, pc);
                self.tables[level][idx].ctr.train(taken);
            }
            None => {
                let idx = self.base_index(pc);
                self.base[idx].train(taken);
            }
        }
        if provider.taken != taken {
            self.allocate(pc, provider.level, taken);
        }
        self.history = (self.history << 1) | u64::from(taken);
        self.updates += 1;
        if self.updates.is_multiple_of(U_AGING_PERIOD) {
            for t in &mut self.tables {
                for e in t {
                    e.u >>= 1;
                }
            }
        }
    }

    /// First-fit allocation into a longer-history table (see rule 3).
    fn allocate(&mut self, pc: u64, provider_level: Option<usize>, taken: bool) {
        let start = provider_level.map_or(0, |l| l + 1);
        if start >= self.tables.len() {
            return; // provider already uses the longest history
        }
        for level in start..self.tables.len() {
            let idx = self.index(level, pc);
            if self.tables[level][idx].u == 0 {
                let tag = self.tag(level, pc);
                self.tables[level][idx] = TageEntry {
                    valid: true,
                    tag,
                    // Weak toward the observed outcome: 4 is the weakest
                    // taken value of a 3-bit counter, 3 the weakest
                    // not-taken.
                    ctr: SaturatingCounter::new(3, if taken { 4 } else { 3 }),
                    u: 0,
                };
                return;
            }
        }
        // Everything useful: decay all candidates instead.
        for level in start..self.tables.len() {
            let idx = self.index(level, pc);
            let e = &mut self.tables[level][idx];
            e.u = e.u.saturating_sub(1);
        }
    }
}

impl crate::direction::DirectionPredictor for Tage {
    #[inline]
    fn predict(&mut self, pc: u64, _actual: bool) -> bool {
        self.predict_taken(pc)
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> &'static str {
        "tage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::DirectionPredictor;

    fn small() -> Tage {
        Tage::new(64, 64, 8, 4, 2, 16)
    }

    #[test]
    fn fold_history_basics() {
        assert_eq!(fold_history(0b1011, 4, 4), 0b1011);
        assert_eq!(fold_history(0b1011, 2, 4), 0b11, "only youngest 2 bits");
        // 8 bits folded into 4: low nibble XOR high nibble.
        assert_eq!(fold_history(0xA5, 8, 4), 0xA ^ 0x5);
        assert_eq!(fold_history(u64::MAX, 64, 8), 0, "even folds cancel");
        assert_eq!(fold_history(0xFF, 8, 0), 0);
    }

    #[test]
    fn geometric_lengths_are_strictly_increasing_and_anchored() {
        for (n, min, max) in [
            (1u32, 3u32, 7u32),
            (4, 2, 16),
            (8, 1, 64),
            (4, 4, 8),
            (8, 1, 8),
        ] {
            let l = geometric_lengths(n, min, max);
            assert_eq!(l.len(), n as usize);
            assert_eq!(*l.last().unwrap(), max);
            if n > 1 {
                assert_eq!(l[0], min);
            }
            for w in l.windows(2) {
                assert!(w[0] < w[1], "{l:?} not strictly increasing");
            }
            assert!(l.iter().all(|&x| x >= 1 && x <= max));
        }
    }

    #[test]
    fn cold_predictor_uses_base_table() {
        let t = small();
        assert_eq!(t.provider_level(0x40), None);
        assert!(!t.predict_taken(0x40), "2-bit base starts weakly not-taken");
    }

    #[test]
    fn learns_a_bias_through_the_base_table() {
        let mut t = small();
        for _ in 0..4 {
            t.predict(0x100, true);
            t.update(0x100, true);
        }
        assert!(t.predict_taken(0x100));
    }

    #[test]
    fn mispredict_allocates_exactly_one_tagged_entry() {
        let mut t = small();
        // Base predicts not-taken; a taken outcome mispredicts and must
        // allocate in the shortest tagged table (all u == 0 when cold).
        t.train(0x200, true);
        let allocated = t.tables.iter().flatten().filter(|e| e.valid).count();
        assert_eq!(allocated, 1, "exactly one entry allocated");
        assert_eq!(
            t.tables[0].iter().filter(|e| e.valid).count(),
            1,
            "first-fit allocation lands in the shortest-history table"
        );
    }

    #[test]
    fn correct_prediction_allocates_nothing() {
        let mut t = small();
        t.train(0x200, false); // base already predicts not-taken
        assert_eq!(t.tables.iter().flatten().filter(|e| e.valid).count(), 0);
    }

    #[test]
    fn learns_alternation_a_bimodal_cannot() {
        let mut t = Tage::new(256, 256, 8, 4, 2, 16);
        let mut wrong = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            if i > 100 && t.predict(0x80, taken) != taken {
                wrong += 1;
            }
            t.update(0x80, taken);
        }
        assert!(
            wrong < 15,
            "TAGE should lock onto alternation, {wrong} wrong"
        );
    }

    #[test]
    fn learns_long_period_pattern() {
        // Period-7 loop: TTTTTTN. Needs history; bimodal and short
        // predictors thrash on the N.
        let mut t = Tage::new(256, 256, 10, 4, 2, 16);
        let mut wrong = 0;
        for i in 0..1400 {
            let taken = i % 7 != 6;
            if i > 700 && t.predict(0x80, taken) != taken {
                wrong += 1;
            }
            t.update(0x80, taken);
        }
        assert!(wrong < 35, "period-7 should be learned, {wrong} wrong");
    }

    #[test]
    fn aging_halves_useful_counters_on_schedule() {
        let mut t = small();
        // Build up some useful bits: alternation trains tagged entries
        // whose predictions differ from base.
        for i in 0..200 {
            let taken = i % 2 == 0;
            t.train(0x80, taken);
        }
        let before = t.useful_total();
        assert!(before > 0, "alternation should mark entries useful");
        // Drive to exactly the next aging boundary with branches that
        // never touch u (base-provided, always-correct not-taken at a
        // fresh pc each time would still allocate on mispredict; use a
        // strongly not-taken pc trained first).
        for _ in 0..4 {
            t.train(0x9000, false);
        }
        while !t.update_count().is_multiple_of(U_AGING_PERIOD) {
            t.train(0x9000, false);
        }
        assert!(
            t.useful_total() <= before.div_ceil(2) + 4,
            "u counters should be halved at the boundary: before={before} after={}",
            t.useful_total()
        );
    }

    #[test]
    fn predict_is_pure() {
        let mut t = small();
        for i in 0..100 {
            t.train(0x40 + (i % 5) * 4, i % 3 == 0);
        }
        let h = t.history();
        let u = t.useful_total();
        let p1 = t.predict_taken(0x44);
        for _ in 0..10 {
            assert_eq!(t.predict_taken(0x44), p1);
        }
        assert_eq!(t.history(), h);
        assert_eq!(t.useful_total(), u);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_geometry() {
        let _ = Tage::new(100, 64, 8, 4, 2, 16);
    }
}
