//! Return-address stack.

use serde::{Deserialize, Serialize};

/// A fixed-depth circular return-address stack.
///
/// Calls push their return address; returns pop the predicted target. On
/// overflow the oldest entry is overwritten (the classic hardware
/// behavior), and popping an empty stack returns `None`.
///
/// # Examples
///
/// ```
/// use bmp_branch::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(0x1004);
/// ras.push(0x2004);
/// assert_eq!(ras.pop(), Some(0x2004));
/// assert_eq!(ras.pop(), Some(0x1004));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReturnAddressStack {
    slots: Vec<u64>,
    top: usize,
    live: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: u32) -> Self {
        assert!(depth > 0, "RAS depth must be at least 1");
        Self {
            slots: vec![0; depth as usize],
            top: 0,
            live: 0,
        }
    }

    /// Pushes a return address, overwriting the oldest entry when full.
    pub fn push(&mut self, return_addr: u64) {
        self.slots[self.top] = return_addr;
        self.top = (self.top + 1) % self.slots.len();
        self.live = (self.live + 1).min(self.slots.len());
    }

    /// Pops the most recent return address, or `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.live -= 1;
        Some(self.slots[self.top])
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        for a in [1u64, 2, 3] {
            ras.push(a);
        }
        assert_eq!(ras.len(), 3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut ras = ReturnAddressStack::new(4);
        assert_eq!(ras.pop(), None);
        ras.push(7);
        assert_eq!(ras.pop(), Some(7));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn rejects_zero_depth() {
        let _ = ReturnAddressStack::new(0);
    }
}
