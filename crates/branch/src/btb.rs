//! Branch target buffer.

use serde::{Deserialize, Serialize};

/// A direct-mapped branch target buffer.
///
/// Maps a branch PC to its last-seen target. A BTB miss on a
/// predicted-taken branch means the frontend cannot redirect and the fetch
/// group ends, so the BTB contributes to frontend bandwidth in the
/// simulator.
///
/// # Examples
///
/// ```
/// use bmp_branch::Btb;
///
/// let mut btb = Btb::new(256);
/// assert_eq!(btb.lookup(0x4000), None);
/// btb.update(0x4000, 0x4800);
/// assert_eq!(btb.lookup(0x4000), Some(0x4800));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (tag = pc, target)
    size: u32,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        Self {
            entries: vec![None; entries as usize],
            size: entries,
            lookups: 0,
            hits: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & u64::from(self.size - 1)) as usize
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.lookups += 1;
        let idx = self.index(pc);
        match self.entries[idx] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => None,
        }
    }

    /// Installs or refreshes the target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Fraction of lookups that hit (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(64);
        assert_eq!(btb.lookup(0x100), None);
        btb.update(0x100, 0x200);
        assert_eq!(btb.lookup(0x100), Some(0x200));
        assert!((btb.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut btb = Btb::new(4);
        btb.update(0x0, 0x10);
        // 0x40 >> 2 = 0x10, & 3 = 0 — same slot as 0x0.
        btb.update(0x40, 0x50);
        assert_eq!(btb.lookup(0x0), None, "evicted by aliasing update");
        assert_eq!(btb.lookup(0x40), Some(0x50));
    }

    #[test]
    fn tag_check_prevents_false_hits() {
        let mut btb = Btb::new(4);
        btb.update(0x0, 0x10);
        assert_eq!(btb.lookup(0x40), None, "alias with different tag misses");
    }

    #[test]
    fn updates_refresh_target() {
        let mut btb = Btb::new(64);
        btb.update(0x100, 0x200);
        btb.update(0x100, 0x300);
        assert_eq!(btb.lookup(0x100), Some(0x300));
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = Btb::new(100);
    }
}
