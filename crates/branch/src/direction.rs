//! Direction predictors.
//!
//! All predictors implement [`DirectionPredictor`]. The interface is
//! trace-driven: `predict` is handed the architected outcome so the
//! [`Perfect`] oracle fits the same trait; every real predictor ignores it.
//! History state is updated non-speculatively in `update`, which the
//! simulator calls at branch resolution.

use bmp_uarch::PredictorConfig;

use crate::counter::SaturatingCounter;
use crate::tage::Tage;

/// A conditional-branch direction predictor.
///
/// Implementors are sequential models: `predict` may be called once per
/// dynamic branch in trace order, followed by `update` with the resolved
/// outcome.
pub trait DirectionPredictor: Send {
    /// Predicts the direction of the branch at `pc`.
    ///
    /// `actual` is the architected outcome, supplied so oracle predictors
    /// can be modeled; concrete hardware predictors must not read it.
    fn predict(&mut self, pc: u64, actual: bool) -> bool;

    /// Trains the predictor with the resolved outcome of the branch at
    /// `pc`.
    fn update(&mut self, pc: u64, taken: bool);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Builds the predictor described by `cfg`.
///
/// # Panics
///
/// Panics if `cfg` fails [`PredictorConfig::validate`]; validate
/// configurations at machine-construction time.
///
/// # Examples
///
/// ```
/// use bmp_branch::build_predictor;
/// use bmp_uarch::PredictorConfig;
///
/// let p = build_predictor(&PredictorConfig::Bimodal { entries: 1024 });
/// assert_eq!(p.name(), "bimodal");
/// ```
pub fn build_predictor(cfg: &PredictorConfig) -> Box<dyn DirectionPredictor> {
    cfg.validate()
        .expect("predictor configuration must be valid");
    match *cfg {
        PredictorConfig::AlwaysTaken => Box::new(StaticPredictor { taken: true }),
        PredictorConfig::AlwaysNotTaken => Box::new(StaticPredictor { taken: false }),
        PredictorConfig::Bimodal { entries } => Box::new(Bimodal::new(entries)),
        PredictorConfig::GShare {
            entries,
            history_bits,
        } => Box::new(GShare::new(entries, history_bits)),
        PredictorConfig::Local {
            history_entries,
            history_bits,
            pattern_entries,
        } => Box::new(LocalTwoLevel::new(
            history_entries,
            history_bits,
            pattern_entries,
        )),
        PredictorConfig::Tournament {
            entries,
            history_bits,
        } => Box::new(Tournament::new(entries, history_bits)),
        PredictorConfig::Perceptron {
            entries,
            history_bits,
        } => Box::new(Perceptron::new(entries, history_bits)),
        PredictorConfig::Tage {
            base_entries,
            tagged_entries,
            tag_bits,
            num_tables,
            min_history,
            max_history,
        } => Box::new(Tage::new(
            base_entries,
            tagged_entries,
            tag_bits,
            num_tables,
            min_history,
            max_history,
        )),
        PredictorConfig::Perfect => Box::new(Perfect),
    }
}

/// The same concrete predictors as [`build_predictor`], behind an enum
/// instead of a vtable so a simulator hot loop can inline the per-branch
/// `predict`/`update` pair. Built from the same [`PredictorConfig`], the
/// enum holds identical state and produces identical predictions to the
/// boxed form — it exists purely so static dispatch is available where
/// the two virtual calls per conditional branch are measurable.
#[derive(Debug, Clone)]
pub enum InlinePredictor {
    /// Fixed-direction static prediction.
    Static(StaticPredictor),
    /// Oracle prediction.
    Perfect(Perfect),
    /// PC-indexed 2-bit counters.
    Bimodal(Bimodal),
    /// Global history XOR PC.
    GShare(GShare),
    /// Per-branch local history.
    Local(LocalTwoLevel),
    /// Bimodal/gshare with a chooser.
    Tournament(Tournament),
    /// Perceptron over global history.
    Perceptron(Perceptron),
    /// Tagged geometric-history tables.
    Tage(Tage),
}

impl InlinePredictor {
    /// Builds the predictor described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`PredictorConfig::validate`]; validate
    /// configurations at machine-construction time.
    pub fn build(cfg: &PredictorConfig) -> Self {
        cfg.validate()
            .expect("predictor configuration must be valid");
        match *cfg {
            PredictorConfig::AlwaysTaken => Self::Static(StaticPredictor { taken: true }),
            PredictorConfig::AlwaysNotTaken => Self::Static(StaticPredictor { taken: false }),
            PredictorConfig::Bimodal { entries } => Self::Bimodal(Bimodal::new(entries)),
            PredictorConfig::GShare {
                entries,
                history_bits,
            } => Self::GShare(GShare::new(entries, history_bits)),
            PredictorConfig::Local {
                history_entries,
                history_bits,
                pattern_entries,
            } => Self::Local(LocalTwoLevel::new(
                history_entries,
                history_bits,
                pattern_entries,
            )),
            PredictorConfig::Tournament {
                entries,
                history_bits,
            } => Self::Tournament(Tournament::new(entries, history_bits)),
            PredictorConfig::Perceptron {
                entries,
                history_bits,
            } => Self::Perceptron(Perceptron::new(entries, history_bits)),
            PredictorConfig::Tage {
                base_entries,
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            } => Self::Tage(Tage::new(
                base_entries,
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            )),
            PredictorConfig::Perfect => Self::Perfect(Perfect),
        }
    }

    /// Statically dispatched [`DirectionPredictor::predict`].
    #[inline]
    pub fn predict(&mut self, pc: u64, actual: bool) -> bool {
        match self {
            Self::Static(p) => p.predict(pc, actual),
            Self::Perfect(p) => p.predict(pc, actual),
            Self::Bimodal(p) => p.predict(pc, actual),
            Self::GShare(p) => p.predict(pc, actual),
            Self::Local(p) => p.predict(pc, actual),
            Self::Tournament(p) => p.predict(pc, actual),
            Self::Perceptron(p) => p.predict(pc, actual),
            Self::Tage(p) => p.predict(pc, actual),
        }
    }

    /// Statically dispatched [`DirectionPredictor::update`].
    #[inline]
    pub fn update(&mut self, pc: u64, taken: bool) {
        match self {
            Self::Static(p) => p.update(pc, taken),
            Self::Perfect(p) => p.update(pc, taken),
            Self::Bimodal(p) => p.update(pc, taken),
            Self::GShare(p) => p.update(pc, taken),
            Self::Local(p) => p.update(pc, taken),
            Self::Tournament(p) => p.update(pc, taken),
            Self::Perceptron(p) => p.update(pc, taken),
            Self::Tage(p) => p.update(pc, taken),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Static(p) => p.name(),
            Self::Perfect(p) => p.name(),
            Self::Bimodal(p) => p.name(),
            Self::GShare(p) => p.name(),
            Self::Local(p) => p.name(),
            Self::Tournament(p) => p.name(),
            Self::Perceptron(p) => p.name(),
            Self::Tage(p) => p.name(),
        }
    }
}

fn pc_index(pc: u64, entries: u32) -> usize {
    // Drop the 2 low bits (4-byte instructions) before indexing.
    ((pc >> 2) & u64::from(entries - 1)) as usize
}

/// Statically predicts a fixed direction.
#[derive(Debug, Clone)]
pub struct StaticPredictor {
    taken: bool,
}

impl DirectionPredictor for StaticPredictor {
    #[inline]
    fn predict(&mut self, _pc: u64, _actual: bool) -> bool {
        self.taken
    }

    #[inline]
    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn name(&self) -> &'static str {
        if self.taken {
            "always-taken"
        } else {
            "always-not-taken"
        }
    }
}

/// Oracle predictor: always right.
#[derive(Debug, Clone, Default)]
pub struct Perfect;

impl DirectionPredictor for Perfect {
    #[inline]
    fn predict(&mut self, _pc: u64, actual: bool) -> bool {
        actual
    }

    #[inline]
    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn name(&self) -> &'static str {
        "perfect"
    }
}

/// Bimodal predictor: a table of 2-bit counters indexed by PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SaturatingCounter>,
    entries: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        Self {
            table: vec![SaturatingCounter::two_bit(); entries as usize],
            entries,
        }
    }
}

impl DirectionPredictor for Bimodal {
    #[inline]
    fn predict(&mut self, pc: u64, _actual: bool) -> bool {
        self.table[pc_index(pc, self.entries)].predicts_taken()
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        self.table[pc_index(pc, self.entries)].train(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// GShare: global history XOR PC indexes a counter table.
#[derive(Debug, Clone)]
pub struct GShare {
    table: Vec<SaturatingCounter>,
    entries: u32,
    history: u64,
    history_mask: u64,
}

impl GShare {
    /// Creates a gshare predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` is 0 or
    /// greater than 24.
    pub fn new(entries: u32, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        assert!((1..=24).contains(&history_bits));
        Self {
            table: vec![SaturatingCounter::two_bit(); entries as usize],
            entries,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & u64::from(self.entries - 1)) as usize
    }
}

impl DirectionPredictor for GShare {
    #[inline]
    fn predict(&mut self, pc: u64, _actual: bool) -> bool {
        self.table[self.index(pc)].predicts_taken()
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// Local two-level predictor: per-branch history selects a pattern counter.
#[derive(Debug, Clone)]
pub struct LocalTwoLevel {
    histories: Vec<u32>,
    history_entries: u32,
    history_mask: u32,
    pattern: Vec<SaturatingCounter>,
    pattern_entries: u32,
}

impl LocalTwoLevel {
    /// Creates a local two-level predictor.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two table sizes or a history length of 0 or
    /// more than 16 bits.
    pub fn new(history_entries: u32, history_bits: u32, pattern_entries: u32) -> Self {
        assert!(history_entries.is_power_of_two() && history_entries > 0);
        assert!(pattern_entries.is_power_of_two() && pattern_entries > 0);
        assert!((1..=16).contains(&history_bits));
        Self {
            histories: vec![0; history_entries as usize],
            history_entries,
            history_mask: (1u32 << history_bits) - 1,
            pattern: vec![SaturatingCounter::two_bit(); pattern_entries as usize],
            pattern_entries,
        }
    }

    fn pattern_index(&self, pc: u64) -> usize {
        let h = self.histories[pc_index(pc, self.history_entries)];
        (h & (self.pattern_entries - 1)) as usize
    }
}

impl DirectionPredictor for LocalTwoLevel {
    #[inline]
    fn predict(&mut self, pc: u64, _actual: bool) -> bool {
        self.pattern[self.pattern_index(pc)].predicts_taken()
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        let pidx = self.pattern_index(pc);
        self.pattern[pidx].train(taken);
        let hidx = pc_index(pc, self.history_entries);
        self.histories[hidx] = ((self.histories[hidx] << 1) | u32::from(taken)) & self.history_mask;
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// Tournament predictor: bimodal and gshare components arbitrated by a
/// per-PC chooser table.
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: GShare,
    chooser: Vec<SaturatingCounter>,
    entries: u32,
}

impl Tournament {
    /// Creates a tournament predictor with `entries` counters per
    /// component.
    ///
    /// # Panics
    ///
    /// Panics on invalid component parameters (see [`Bimodal::new`] and
    /// [`GShare::new`]).
    pub fn new(entries: u32, history_bits: u32) -> Self {
        Self {
            bimodal: Bimodal::new(entries),
            gshare: GShare::new(entries, history_bits),
            // Chooser: upper half selects gshare.
            chooser: vec![SaturatingCounter::two_bit(); entries as usize],
            entries,
        }
    }
}

impl DirectionPredictor for Tournament {
    #[inline]
    fn predict(&mut self, pc: u64, actual: bool) -> bool {
        let use_gshare = self.chooser[pc_index(pc, self.entries)].predicts_taken();
        if use_gshare {
            self.gshare.predict(pc, actual)
        } else {
            self.bimodal.predict(pc, actual)
        }
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        let b = self.bimodal.predict(pc, taken);
        let g = self.gshare.predict(pc, taken);
        // Train the chooser only when the components disagree.
        if b != g {
            self.chooser[pc_index(pc, self.entries)].train(g == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

/// Perceptron predictor (Jiménez & Lin, HPCA 2001).
///
/// Each PC hashes to a weight vector over the global history (plus a bias
/// weight). The prediction is the sign of the dot product; training
/// adjusts weights on a misprediction or when the output magnitude is
/// below the threshold `θ = ⌊1.93·h + 14⌋`.
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// `entries × (history_bits + 1)` weights; index 0 of each row is the
    /// bias.
    weights: Vec<i16>,
    entries: u32,
    history_bits: u32,
    /// Global history as ±1 values packed into a bitset (bit i = 1 means
    /// taken).
    history: u64,
    threshold: i32,
    /// Output of the most recent `predict`, consumed by `update`.
    last_output: i32,
}

impl Perceptron {
    /// Creates a perceptron predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` is 0
    /// or greater than 48.
    pub fn new(entries: u32, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        assert!((1..=48).contains(&history_bits));
        Self {
            weights: vec![0; entries as usize * (history_bits as usize + 1)],
            entries,
            history_bits,
            history: 0,
            threshold: (1.93 * f64::from(history_bits) + 14.0) as i32,
            last_output: 0,
        }
    }

    fn row(&self, pc: u64) -> usize {
        pc_index(pc, self.entries) * (self.history_bits as usize + 1)
    }

    fn output(&self, pc: u64) -> i32 {
        let row = self.row(pc);
        let mut y = i32::from(self.weights[row]); // bias
        for i in 0..self.history_bits as usize {
            let x = if self.history >> i & 1 == 1 { 1 } else { -1 };
            y += i32::from(self.weights[row + 1 + i]) * x;
        }
        y
    }
}

impl DirectionPredictor for Perceptron {
    #[inline]
    fn predict(&mut self, pc: u64, _actual: bool) -> bool {
        self.last_output = self.output(pc);
        self.last_output >= 0
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool) {
        let y = self.output(pc);
        let predicted = y >= 0;
        if predicted != taken || y.abs() <= self.threshold {
            let row = self.row(pc);
            let t: i16 = if taken { 1 } else { -1 };
            let clamp = |w: i16, d: i16| (w + d).clamp(-128, 127);
            self.weights[row] = clamp(self.weights[row], t);
            for i in 0..self.history_bits as usize {
                let x: i16 = if self.history >> i & 1 == 1 { 1 } else { -1 };
                self.weights[row + 1 + i] = clamp(self.weights[row + 1 + i], t * x);
            }
        }
        self.history = (self.history << 1 | u64::from(taken)) & ((1u64 << self.history_bits) - 1);
    }

    fn name(&self) -> &'static str {
        "perceptron"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut dyn DirectionPredictor, pc: u64, outcomes: &[bool]) {
        for &t in outcomes {
            p.predict(pc, t);
            p.update(pc, t);
        }
    }

    #[test]
    fn static_predictors() {
        let mut t = build_predictor(&PredictorConfig::AlwaysTaken);
        let mut n = build_predictor(&PredictorConfig::AlwaysNotTaken);
        assert!(t.predict(0, false));
        assert!(!n.predict(0, true));
    }

    #[test]
    fn perfect_never_misses() {
        let mut p = build_predictor(&PredictorConfig::Perfect);
        for (pc, actual) in [(0u64, true), (4, false), (8, true), (8, false)] {
            assert_eq!(p.predict(pc, actual), actual);
            p.update(pc, actual);
        }
    }

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Bimodal::new(64);
        train(&mut p, 0x100, &[true; 4]);
        assert!(p.predict(0x100, true));
        train(&mut p, 0x100, &[false; 4]);
        assert!(!p.predict(0x100, false));
    }

    #[test]
    fn bimodal_aliasing_uses_pc_bits_above_two() {
        let mut p = Bimodal::new(4);
        // pc 0x0 and pc 0x40 alias in a 4-entry table ((pc>>2) & 3).
        train(&mut p, 0x0, &[true; 4]);
        assert!(p.predict(0x40, false), "aliased entry shares state");
        // pc 0x4 maps to a different entry.
        assert!(!p.predict(0x4, false));
    }

    #[test]
    fn gshare_learns_alternating_pattern_bimodal_cannot() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let mut g = GShare::new(1024, 8);
        let mut b = Bimodal::new(1024);
        let mut g_wrong = 0;
        let mut b_wrong = 0;
        for &t in &pattern {
            if g.predict(0x200, t) != t {
                g_wrong += 1;
            }
            if b.predict(0x200, t) != t {
                b_wrong += 1;
            }
            g.update(0x200, t);
            b.update(0x200, t);
        }
        assert!(
            g_wrong < 20,
            "gshare should lock onto T/NT alternation, {g_wrong} wrong"
        );
        assert!(
            b_wrong > 50,
            "bimodal cannot learn alternation, only {b_wrong} wrong"
        );
    }

    #[test]
    fn local_learns_short_loops() {
        // A loop taken 3 times then not taken, repeating: TTTN.
        let pattern: Vec<bool> = (0..400).map(|i| i % 4 != 3).collect();
        let mut l = LocalTwoLevel::new(256, 10, 1024);
        let mut wrong = 0;
        for &t in &pattern {
            if l.predict(0x300, t) != t {
                wrong += 1;
            }
            l.update(0x300, t);
        }
        assert!(
            wrong < 40,
            "local predictor should learn TTTN, {wrong} wrong"
        );
    }

    #[test]
    fn tournament_beats_or_matches_components_on_mixed_workload() {
        // Branch A: strongly biased (bimodal-friendly).
        // Branch B: alternating (gshare-friendly).
        let mut t = Tournament::new(4096, 10);
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..500 {
            for (pc, outcome) in [(0x100u64, true), (0x200, i % 2 == 0)] {
                if t.predict(pc, outcome) != outcome {
                    wrong += 1;
                }
                t.update(pc, outcome);
                total += 1;
            }
        }
        let miss_rate = wrong as f64 / total as f64;
        assert!(miss_rate < 0.1, "tournament miss rate {miss_rate} too high");
    }

    #[test]
    fn build_matches_names() {
        for (cfg, name) in [
            (PredictorConfig::AlwaysTaken, "always-taken"),
            (PredictorConfig::Bimodal { entries: 64 }, "bimodal"),
            (
                PredictorConfig::GShare {
                    entries: 64,
                    history_bits: 4,
                },
                "gshare",
            ),
            (
                PredictorConfig::Local {
                    history_entries: 64,
                    history_bits: 4,
                    pattern_entries: 64,
                },
                "local",
            ),
            (
                PredictorConfig::Tournament {
                    entries: 64,
                    history_bits: 4,
                },
                "tournament",
            ),
            (
                PredictorConfig::Perceptron {
                    entries: 64,
                    history_bits: 16,
                },
                "perceptron",
            ),
            (
                PredictorConfig::Tage {
                    base_entries: 64,
                    tagged_entries: 64,
                    tag_bits: 8,
                    num_tables: 4,
                    min_history: 2,
                    max_history: 16,
                },
                "tage",
            ),
            (PredictorConfig::Perfect, "perfect"),
        ] {
            assert_eq!(build_predictor(&cfg).name(), name);
        }
    }

    #[test]
    fn perceptron_learns_biased_branches() {
        let mut p = Perceptron::new(256, 16);
        train(&mut p, 0x100, &[true; 20]);
        assert!(p.predict(0x100, true));
        train(&mut p, 0x200, &[false; 20]);
        assert!(!p.predict(0x200, false));
    }

    #[test]
    fn perceptron_learns_history_correlation() {
        // Branch B's outcome equals branch A's previous outcome — a
        // linearly separable function of one history bit, the perceptron's
        // specialty.
        let mut p = Perceptron::new(256, 16);
        let mut a_prev = false;
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..600 {
            let a = i % 3 != 0;
            p.predict(0x100, a);
            p.update(0x100, a);
            let b = a_prev;
            if i > 200 {
                total += 1;
                if p.predict(0x200, b) != b {
                    wrong += 1;
                }
            } else {
                p.predict(0x200, b);
            }
            p.update(0x200, b);
            a_prev = a;
        }
        let rate = wrong as f64 / total as f64;
        assert!(
            rate < 0.10,
            "perceptron should learn correlation, miss {rate}"
        );
    }

    #[test]
    fn perceptron_weights_saturate() {
        let mut p = Perceptron::new(16, 4);
        for _ in 0..10_000 {
            p.predict(0x40, true);
            p.update(0x40, true);
        }
        // No panic and still functional after heavy training.
        assert!(p.predict(0x40, true));
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn build_rejects_invalid_config() {
        let _ = build_predictor(&PredictorConfig::Bimodal { entries: 3 });
    }
}
