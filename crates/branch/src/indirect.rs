//! Indirect-branch target prediction.

use bmp_uarch::IndirectPredictorConfig;

/// A history-hashed indirect-target cache ("gtarget", an ITTAGE
/// ancestor): tagged entries indexed by the branch PC xor a register of
/// recent indirect-target history.
///
/// Where a BTB can only repeat the *last* target of a site, the history
/// index gives each target-context its own entry, so deterministic target
/// sequences (state machines, interpreter dispatch following bytecode
/// patterns) become predictable.
///
/// # Examples
///
/// ```
/// use bmp_branch::GTarget;
///
/// let mut p = GTarget::new(256, 8);
/// // A two-target cycle A, B, A, B … — hopeless for a BTB, learned here.
/// let mut wrong = 0;
/// for i in 0..200u64 {
///     let actual = if i % 2 == 0 { 0xA000 } else { 0xB000 };
///     if p.predict(0x40) != Some(actual) && i > 20 {
///         wrong += 1;
///     }
///     p.update(0x40, actual);
/// }
/// assert!(wrong < 5, "cycle should be learned, {wrong} wrong");
/// ```
#[derive(Debug, Clone)]
pub struct GTarget {
    entries: Vec<Option<(u64, u64)>>, // (tag = pc, target)
    size: u32,
    history: u64,
    history_mask: u64,
}

impl GTarget {
    /// Creates a gtarget predictor with `entries` slots and
    /// `history_bits` of hashed target history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` is 0
    /// or greater than 16.
    pub fn new(entries: u32, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        assert!((1..=16).contains(&history_bits));
        Self {
            entries: vec![None; entries as usize],
            size: entries,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & u64::from(self.size - 1)) as usize
    }

    /// Predicted target for the indirect branch at `pc`, or `None` when
    /// the indexed entry belongs to another branch (or is cold).
    pub fn predict(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Trains on the resolved target and rolls the history.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
        // Fold target bits (low and high) into the history so targets
        // differing only in upper bits still produce distinct contexts.
        self.history = ((self.history << 3) ^ (target >> 2) ^ (target >> 12)) & self.history_mask;
    }
}

/// An indirect-target predictor assembled from configuration: either the
/// plain BTB-last-target policy (in which case this struct is inert and
/// the caller consults its BTB) or a [`GTarget`] overriding it.
#[derive(Debug, Clone)]
pub enum IndirectPredictor {
    /// Fall back entirely to the BTB.
    BtbOnly,
    /// History-hashed target cache; the BTB remains the fallback for
    /// cold/tag-missing entries.
    GTarget(GTarget),
}

impl IndirectPredictor {
    /// Builds the predictor described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn build(cfg: &IndirectPredictorConfig) -> Self {
        cfg.validate()
            .expect("indirect predictor config must be valid");
        match *cfg {
            IndirectPredictorConfig::BtbLastTarget => IndirectPredictor::BtbOnly,
            IndirectPredictorConfig::GTarget {
                entries,
                history_bits,
            } => IndirectPredictor::GTarget(GTarget::new(entries, history_bits)),
        }
    }

    /// Predicted target for the indirect branch at `pc`, given the BTB's
    /// prediction as fallback.
    pub fn predict(&self, pc: u64, btb_target: Option<u64>) -> Option<u64> {
        match self {
            IndirectPredictor::BtbOnly => btb_target,
            IndirectPredictor::GTarget(g) => g.predict(pc).or(btb_target),
        }
    }

    /// Trains on the resolved target.
    pub fn update(&mut self, pc: u64, target: u64) {
        if let IndirectPredictor::GTarget(g) = self {
            g.update(pc, target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_three_target_cycle() {
        let targets = [0x100u64, 0x200, 0x300];
        let mut g = GTarget::new(512, 9);
        let mut wrong = 0;
        for i in 0..600 {
            let actual = targets[i % 3];
            if i > 50 && g.predict(0x80) != Some(actual) {
                wrong += 1;
            }
            g.update(0x80, actual);
        }
        assert!(wrong < 10, "3-cycle should be learned, {wrong} wrong");
    }

    #[test]
    fn btb_only_passes_through() {
        let p = IndirectPredictor::build(&IndirectPredictorConfig::BtbLastTarget);
        assert_eq!(p.predict(0x40, Some(7)), Some(7));
        assert_eq!(p.predict(0x40, None), None);
    }

    #[test]
    fn gtarget_falls_back_to_btb_when_cold() {
        let p = IndirectPredictor::build(&IndirectPredictorConfig::GTarget {
            entries: 64,
            history_bits: 4,
        });
        assert_eq!(p.predict(0x40, Some(9)), Some(9), "cold entry uses BTB");
    }

    #[test]
    fn constant_target_is_trivially_learned() {
        let mut g = GTarget::new(64, 4);
        for _ in 0..20 {
            g.update(0x10, 0x999);
        }
        assert_eq!(g.predict(0x10), Some(0x999));
    }

    #[test]
    fn tag_mismatch_returns_none() {
        let mut g = GTarget::new(4, 2);
        g.update(0x10, 0x999);
        // A different pc that may alias must not produce a false hit.
        for pc in [0x20u64, 0x30, 0x50] {
            assert!(g.predict(pc).is_none());
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_geometry() {
        let _ = GTarget::new(100, 4);
    }
}
