//! Indirect-branch target prediction.

use bmp_uarch::IndirectPredictorConfig;

use crate::counter::SaturatingCounter;
use crate::tage::{fold_history, geometric_lengths, U_AGING_PERIOD, U_MAX};

/// A history-hashed indirect-target cache ("gtarget", an ITTAGE
/// ancestor): tagged entries indexed by the branch PC xor a register of
/// recent indirect-target history.
///
/// Where a BTB can only repeat the *last* target of a site, the history
/// index gives each target-context its own entry, so deterministic target
/// sequences (state machines, interpreter dispatch following bytecode
/// patterns) become predictable.
///
/// # Examples
///
/// ```
/// use bmp_branch::GTarget;
///
/// let mut p = GTarget::new(256, 8);
/// // A two-target cycle A, B, A, B … — hopeless for a BTB, learned here.
/// let mut wrong = 0;
/// for i in 0..200u64 {
///     let actual = if i % 2 == 0 { 0xA000 } else { 0xB000 };
///     if p.predict(0x40) != Some(actual) && i > 20 {
///         wrong += 1;
///     }
///     p.update(0x40, actual);
/// }
/// assert!(wrong < 5, "cycle should be learned, {wrong} wrong");
/// ```
#[derive(Debug, Clone)]
pub struct GTarget {
    entries: Vec<Option<(u64, u64)>>, // (tag = pc, target)
    size: u32,
    history: u64,
    history_mask: u64,
}

impl GTarget {
    /// Creates a gtarget predictor with `entries` slots and
    /// `history_bits` of hashed target history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` is 0
    /// or greater than 16.
    pub fn new(entries: u32, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        assert!((1..=16).contains(&history_bits));
        Self {
            entries: vec![None; entries as usize],
            size: entries,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & u64::from(self.size - 1)) as usize
    }

    /// Predicted target for the indirect branch at `pc`, or `None` when
    /// the indexed entry belongs to another branch (or is cold).
    pub fn predict(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Trains on the resolved target and rolls the history.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
        // Fold target bits (low and high) into the history so targets
        // differing only in upper bits still produce distinct contexts.
        self.history = ((self.history << 3) ^ (target >> 2) ^ (target >> 12)) & self.history_mask;
    }
}

/// One ITTAGE tagged-table entry: a partial tag, the cached target, a
/// 2-bit confidence counter gating its use, and a 2-bit useful counter
/// gating its replacement.
#[derive(Debug, Clone, Copy)]
struct IttageEntry {
    valid: bool,
    tag: u64,
    target: u64,
    conf: SaturatingCounter,
    u: u8,
}

impl IttageEntry {
    fn empty() -> Self {
        Self {
            valid: false,
            tag: 0,
            target: 0,
            conf: SaturatingCounter::new(2, 1),
            u: 0,
        }
    }
}

/// ITTAGE (Seznec, CBP-3 2011): the indirect-target sibling of TAGE.
///
/// `num_tables` tagged tables indexed by geometrically growing lengths of
/// a *path history* built from resolved indirect targets (two bits,
/// `((target >> 2) ^ (target >> 4) ^ (target >> 8)) & 0b11`, shifted in
/// per update — the XOR keeps targets that differ only in upper bits
/// distinguishable). The provider is the
/// longest-history tag match; its target is used when its confidence
/// counter is non-zero, otherwise the next matching table (then the BTB)
/// takes over. The exact update rules, pinned by
/// `crates/branch/tests/conformance.rs`:
///
/// 1. `predict_target` is pure: the first matching table (longest
///    history first) with non-zero confidence supplies the target;
///    `None` means "fall back to the BTB".
/// 2. `update` recomputes provider/altpred from pre-update state. A
///    correct provider trains confidence up; a wrong provider with zero
///    confidence is re-targeted (confidence reset weak), otherwise
///    trains confidence down. When an altpred target exists and differs
///    from the provider's, the provider's `u` moves up if the provider
///    was right and down if the altpred was right.
/// 3. When the tagged prediction (ignoring the BTB fallback) was not the
///    resolved target, one entry is allocated first-fit in a
///    longer-history table with `u == 0` (weak confidence, `u = 0`); if
///    all candidates are useful their `u` counters are decremented
///    instead.
/// 4. Path history then shifts in the two folded target bits
///    (`h' = (h << 2) | fold2(target)`), and every [`U_AGING_PERIOD`]
///    updates all `u` counters are halved.
///
/// Index/tag hashes mirror TAGE: `index = ((pc >> 2) ^ fold(h, L_i,
/// log2(entries))) % entries`, `tag = ((pc >> 2) ^ fold(h, L_i,
/// tag_bits)) % 2^tag_bits`.
///
/// [`U_AGING_PERIOD`]: crate::U_AGING_PERIOD
#[derive(Debug, Clone)]
pub struct Ittage {
    tables: Vec<Vec<IttageEntry>>,
    tagged_entries: u32,
    tag_mask: u64,
    index_bits: u32,
    tag_bits: u32,
    hist_lens: Vec<u32>,
    history: u64,
    updates: u64,
}

impl Ittage {
    /// Creates an ITTAGE predictor.
    ///
    /// # Panics
    ///
    /// Panics on parameters the [`IndirectPredictorConfig::Ittage`]
    /// validation would reject.
    pub fn new(
        tagged_entries: u32,
        tag_bits: u32,
        num_tables: u32,
        min_history: u32,
        max_history: u32,
    ) -> Self {
        assert!(tagged_entries.is_power_of_two() && tagged_entries > 0);
        assert!((4..=16).contains(&tag_bits));
        assert!((1..=8).contains(&num_tables));
        assert!(min_history >= 1 && min_history <= max_history && max_history <= 64);
        assert!(max_history - min_history + 1 >= num_tables);
        Self {
            tables: vec![vec![IttageEntry::empty(); tagged_entries as usize]; num_tables as usize],
            tagged_entries,
            tag_mask: (1u64 << tag_bits) - 1,
            index_bits: tagged_entries.trailing_zeros(),
            tag_bits,
            hist_lens: geometric_lengths(num_tables, min_history, max_history),
            history: 0,
            updates: 0,
        }
    }

    fn index(&self, level: usize, pc: u64) -> usize {
        let folded = fold_history(self.history, self.hist_lens[level], self.index_bits);
        (((pc >> 2) ^ folded) & u64::from(self.tagged_entries - 1)) as usize
    }

    fn tag(&self, level: usize, pc: u64) -> u64 {
        let folded = fold_history(self.history, self.hist_lens[level], self.tag_bits);
        ((pc >> 2) ^ folded) & self.tag_mask
    }

    /// The provider level (longest tag match) and the altpred level (the
    /// next match below it), pre-update.
    fn matches(&self, pc: u64) -> (Option<usize>, Option<usize>) {
        let mut provider = None;
        let mut alt = None;
        for level in (0..self.tables.len()).rev() {
            let e = &self.tables[level][self.index(level, pc)];
            if e.valid && e.tag == self.tag(level, pc) {
                if provider.is_none() {
                    provider = Some(level);
                } else {
                    alt = Some(level);
                    break;
                }
            }
        }
        (provider, alt)
    }

    fn entry(&self, level: usize, pc: u64) -> &IttageEntry {
        &self.tables[level][self.index(level, pc)]
    }

    /// Predicted target for `pc`, or `None` to fall back to the BTB. A
    /// pure function of the predictor state.
    pub fn predict_target(&self, pc: u64) -> Option<u64> {
        let (provider, alt) = self.matches(pc);
        for level in [provider, alt].into_iter().flatten() {
            let e = self.entry(level, pc);
            if e.conf.value() > 0 {
                return Some(e.target);
            }
        }
        None
    }

    /// The provider's table level for `pc` (0 = shortest history), or
    /// `None` when no tag matches.
    pub fn provider_level(&self, pc: u64) -> Option<usize> {
        self.matches(pc).0
    }

    /// Sum of all useful counters — the quantity drained by `u` aging.
    pub fn useful_total(&self) -> u64 {
        self.tables.iter().flatten().map(|e| u64::from(e.u)).sum()
    }

    /// Number of `update` calls so far (drives the aging schedule).
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Trains on the resolved target; see the type docs for the exact
    /// confidence/u-bit/allocation/aging schedule.
    pub fn update(&mut self, pc: u64, target: u64) {
        let (provider, alt) = self.matches(pc);
        let predicted = self.predict_target(pc);
        if let Some(level) = provider {
            let alt_target = alt.map(|l| self.entry(l, pc).target);
            let idx = self.index(level, pc);
            let e = &mut self.tables[level][idx];
            let provider_correct = e.target == target;
            if let Some(at) = alt_target {
                if at != e.target {
                    if provider_correct {
                        e.u = (e.u + 1).min(U_MAX);
                    } else if at == target {
                        e.u = e.u.saturating_sub(1);
                    }
                }
            }
            if provider_correct {
                e.conf.train(true);
            } else if e.conf.value() == 0 {
                e.target = target;
                e.conf = SaturatingCounter::new(2, 1);
            } else {
                e.conf.train(false);
            }
        }
        if predicted != Some(target) {
            self.allocate(pc, provider, target);
        }
        self.history =
            (self.history << 2) | (((target >> 2) ^ (target >> 4) ^ (target >> 8)) & 0b11);
        self.updates += 1;
        if self.updates.is_multiple_of(U_AGING_PERIOD) {
            for t in &mut self.tables {
                for e in t {
                    e.u >>= 1;
                }
            }
        }
    }

    /// First-fit allocation into a longer-history table (see rule 3).
    fn allocate(&mut self, pc: u64, provider_level: Option<usize>, target: u64) {
        let start = provider_level.map_or(0, |l| l + 1);
        if start >= self.tables.len() {
            return;
        }
        for level in start..self.tables.len() {
            let idx = self.index(level, pc);
            if self.tables[level][idx].u == 0 {
                let tag = self.tag(level, pc);
                self.tables[level][idx] = IttageEntry {
                    valid: true,
                    tag,
                    target,
                    conf: SaturatingCounter::new(2, 1),
                    u: 0,
                };
                return;
            }
        }
        for level in start..self.tables.len() {
            let idx = self.index(level, pc);
            let e = &mut self.tables[level][idx];
            e.u = e.u.saturating_sub(1);
        }
    }
}

/// An indirect-target predictor assembled from configuration: either the
/// plain BTB-last-target policy (in which case this struct is inert and
/// the caller consults its BTB) or a [`GTarget`]/[`Ittage`] overriding it.
#[derive(Debug, Clone)]
pub enum IndirectPredictor {
    /// Fall back entirely to the BTB.
    BtbOnly,
    /// History-hashed target cache; the BTB remains the fallback for
    /// cold/tag-missing entries.
    GTarget(GTarget),
    /// Tagged geometric path-history tables; the BTB remains the
    /// fallback for cold/unconfident entries.
    Ittage(Ittage),
}

impl IndirectPredictor {
    /// Builds the predictor described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn build(cfg: &IndirectPredictorConfig) -> Self {
        cfg.validate()
            .expect("indirect predictor config must be valid");
        match *cfg {
            IndirectPredictorConfig::BtbLastTarget => IndirectPredictor::BtbOnly,
            IndirectPredictorConfig::GTarget {
                entries,
                history_bits,
            } => IndirectPredictor::GTarget(GTarget::new(entries, history_bits)),
            IndirectPredictorConfig::Ittage {
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            } => IndirectPredictor::Ittage(Ittage::new(
                tagged_entries,
                tag_bits,
                num_tables,
                min_history,
                max_history,
            )),
        }
    }

    /// Predicted target for the indirect branch at `pc`, given the BTB's
    /// prediction as fallback.
    pub fn predict(&self, pc: u64, btb_target: Option<u64>) -> Option<u64> {
        match self {
            IndirectPredictor::BtbOnly => btb_target,
            IndirectPredictor::GTarget(g) => g.predict(pc).or(btb_target),
            IndirectPredictor::Ittage(t) => t.predict_target(pc).or(btb_target),
        }
    }

    /// Trains on the resolved target.
    pub fn update(&mut self, pc: u64, target: u64) {
        match self {
            IndirectPredictor::BtbOnly => {}
            IndirectPredictor::GTarget(g) => g.update(pc, target),
            IndirectPredictor::Ittage(t) => t.update(pc, target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_three_target_cycle() {
        let targets = [0x100u64, 0x200, 0x300];
        let mut g = GTarget::new(512, 9);
        let mut wrong = 0;
        for i in 0..600 {
            let actual = targets[i % 3];
            if i > 50 && g.predict(0x80) != Some(actual) {
                wrong += 1;
            }
            g.update(0x80, actual);
        }
        assert!(wrong < 10, "3-cycle should be learned, {wrong} wrong");
    }

    #[test]
    fn btb_only_passes_through() {
        let p = IndirectPredictor::build(&IndirectPredictorConfig::BtbLastTarget);
        assert_eq!(p.predict(0x40, Some(7)), Some(7));
        assert_eq!(p.predict(0x40, None), None);
    }

    #[test]
    fn gtarget_falls_back_to_btb_when_cold() {
        let p = IndirectPredictor::build(&IndirectPredictorConfig::GTarget {
            entries: 64,
            history_bits: 4,
        });
        assert_eq!(p.predict(0x40, Some(9)), Some(9), "cold entry uses BTB");
    }

    #[test]
    fn constant_target_is_trivially_learned() {
        let mut g = GTarget::new(64, 4);
        for _ in 0..20 {
            g.update(0x10, 0x999);
        }
        assert_eq!(g.predict(0x10), Some(0x999));
    }

    #[test]
    fn tag_mismatch_returns_none() {
        let mut g = GTarget::new(4, 2);
        g.update(0x10, 0x999);
        // A different pc that may alias must not produce a false hit.
        for pc in [0x20u64, 0x30, 0x50] {
            assert!(g.predict(pc).is_none());
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_geometry() {
        let _ = GTarget::new(100, 4);
    }

    #[test]
    fn ittage_cold_falls_back_to_btb() {
        let p = IndirectPredictor::build(&IndirectPredictorConfig::Ittage {
            tagged_entries: 64,
            tag_bits: 8,
            num_tables: 3,
            min_history: 2,
            max_history: 8,
        });
        assert_eq!(p.predict(0x40, Some(9)), Some(9), "cold entry uses BTB");
        assert_eq!(p.predict(0x40, None), None);
    }

    #[test]
    fn ittage_learns_constant_target() {
        let mut t = Ittage::new(64, 8, 3, 2, 8);
        for _ in 0..8 {
            t.update(0x10, 0x999);
        }
        assert_eq!(t.predict_target(0x10), Some(0x999));
    }

    #[test]
    fn ittage_learns_target_cycle_btb_cannot() {
        let targets = [0x100u64, 0x200, 0x300];
        let mut t = Ittage::new(512, 10, 4, 2, 16);
        let mut wrong = 0;
        for i in 0..600 {
            let actual = targets[i % 3];
            if i > 100 && t.predict_target(0x80) != Some(actual) {
                wrong += 1;
            }
            t.update(0x80, actual);
        }
        assert!(wrong < 25, "3-cycle should be learned, {wrong} wrong");
    }

    #[test]
    fn ittage_predict_is_pure() {
        let mut t = Ittage::new(64, 8, 3, 2, 8);
        for i in 0..50u64 {
            t.update(0x40 + (i % 3) * 4, 0x1000 + (i % 5) * 0x100);
        }
        let u = t.useful_total();
        let n = t.update_count();
        let p1 = t.predict_target(0x44);
        for _ in 0..10 {
            assert_eq!(t.predict_target(0x44), p1);
        }
        assert_eq!(t.useful_total(), u);
        assert_eq!(t.update_count(), n);
    }

    #[test]
    fn ittage_mispredict_allocates_first_fit() {
        let mut t = Ittage::new(64, 8, 3, 2, 8);
        t.update(0x20, 0x500);
        let allocated: usize = t
            .tables
            .iter()
            .map(|tbl| tbl.iter().filter(|e| e.valid).count())
            .sum();
        assert_eq!(allocated, 1);
        assert_eq!(
            t.tables[0].iter().filter(|e| e.valid).count(),
            1,
            "first-fit lands in the shortest-history table"
        );
    }
}
