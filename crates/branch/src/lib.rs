//! Branch prediction models for the `mispredict` workspace.
//!
//! The branch predictor is the source of the miss events this whole system
//! characterizes. This crate provides the classic direction predictors of
//! the paper's era — static, bimodal, gshare, local two-level and
//! tournament — plus a [`Perfect`](direction::Perfect) oracle used by
//! knock-out experiments, a branch target buffer and a return-address
//! stack.
//!
//! Predictors are trace-driven: [`DirectionPredictor::predict`] receives
//! the architected outcome so the oracle can be expressed in the same
//! interface; real predictors must ignore it.
//!
//! Predictors set the *number* of branch intervals; what each one costs
//! is the per-event accounting of `bmp-core` (the E-X1 study in
//! `EXPERIMENTS.md` separates the two, and `docs/OBSERVABILITY.md`
//! shows how to watch both in a live run).
//!
//! # Examples
//!
//! ```
//! use bmp_branch::{build_predictor, DirectionPredictor};
//! use bmp_uarch::PredictorConfig;
//!
//! let mut p = build_predictor(&PredictorConfig::Bimodal { entries: 1024 });
//! // After training, a strongly-biased branch is predicted taken.
//! for _ in 0..4 {
//!     p.predict(0x4000, true);
//!     p.update(0x4000, true);
//! }
//! assert!(p.predict(0x4000, true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod counter;
pub mod direction;
mod indirect;
mod ras;
mod stats;
pub mod tage;

pub use btb::Btb;
pub use counter::SaturatingCounter;
pub use direction::{build_predictor, DirectionPredictor, InlinePredictor};
pub use indirect::{GTarget, IndirectPredictor, Ittage};
pub use ras::ReturnAddressStack;
pub use stats::BranchStats;
pub use tage::{Tage, U_AGING_PERIOD};
