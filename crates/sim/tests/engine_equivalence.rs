//! Property-based equivalence of the event-driven engine and the frozen
//! reference engine.
//!
//! The event-driven core (compiled structure-of-arrays traces, wakeup
//! scheduling, idle-cycle skipping) is a pure performance transform: for
//! every machine configuration, workload, and seed it must produce a
//! [`SimResult`] bit-identical to the cycle-by-cycle reference engine's.
//! The unit tests in `engine.rs` pin that down for hand-picked cases;
//! this suite drives it across *random* `(MachineConfig,
//! WorkloadProfile, seed)` triples so a scheduling or skipping bug that
//! only shows under an odd width/window/latency combination still has a
//! chance to surface — and when one does, proptest shrinks it to a
//! minimal counterexample.

use bmp_sim::{SimOptions, Simulator};
use bmp_uarch::{
    presets, CacheGeometry, HierarchyConfig, IndirectPredictorConfig, LatencyTable, MachineConfig,
    MachineConfigBuilder, PredictorConfig,
};
use bmp_workloads::WorkloadProfile;
use proptest::prelude::*;

/// A strategy over valid workload profiles (a representative subspace,
/// mirroring the workspace-level `tests/properties.rs`).
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.05f64..0.4,                              // load_frac
        0.0f64..0.2,                               // store_frac
        1.5f64..10.0,                              // dep mean distance
        3.0f64..14.0,                              // avg block size
        0.0f64..0.8,                               // easy_frac
        0.0f64..0.2,                               // pattern_frac
        prop::sample::select(vec![8u64, 32, 128]), // code KiB
        0.3f64..1.0,                               // hot_frac
    )
        .prop_map(|(load, store, dep, block, easy, pattern, code_kib, hot)| {
            let mut p = WorkloadProfile {
                name: "prop".into(),
                ..WorkloadProfile::default()
            };
            p.load_frac = load;
            p.store_frac = store;
            p.deps.mean_distance = dep;
            p.branches.avg_block_size = block;
            p.branches.easy_frac = easy;
            p.branches.pattern_frac = pattern;
            p.branches.code_footprint = code_kib * 1024;
            p.memory.hot_frac = hot;
            p.memory.warm_frac = (1.0 - hot) * 0.7;
            p
        })
        .prop_filter("profile must validate", |p| p.validate().is_ok())
}

/// A strategy over direction predictors, covering every dispatch arm of
/// the engine's inline predictor — including TAGE geometries with
/// varying table counts and history spans, so the tagged-table
/// allocation and u-aging paths run under both engines.
fn arb_predictor() -> impl Strategy<Value = PredictorConfig> {
    (
        prop::sample::select((0usize..9).collect::<Vec<_>>()),
        prop::sample::select(vec![256u32, 1024]),
        2u32..=8,
        prop::sample::select(vec![1u32, 3, 5]), // TAGE tagged-table count
        8u32..=32,                              // TAGE max history
    )
        .prop_map(
            |(kind, entries, history_bits, num_tables, max_history)| match kind {
                0 => PredictorConfig::AlwaysTaken,
                1 => PredictorConfig::AlwaysNotTaken,
                2 => PredictorConfig::Perfect,
                3 => PredictorConfig::Bimodal { entries },
                4 => PredictorConfig::GShare {
                    entries,
                    history_bits,
                },
                5 => PredictorConfig::Local {
                    history_entries: entries,
                    history_bits,
                    pattern_entries: entries,
                },
                6 => PredictorConfig::Perceptron {
                    entries: 256,
                    history_bits: history_bits * 3,
                },
                7 => PredictorConfig::Tage {
                    base_entries: entries,
                    tagged_entries: 256,
                    tag_bits: 8,
                    num_tables,
                    min_history: 2,
                    max_history,
                },
                _ => PredictorConfig::Tournament {
                    entries,
                    history_bits,
                },
            },
        )
}

/// A strategy over indirect-target predictors: the plain BTB policy,
/// the gtarget cache, and ITTAGE geometries.
fn arb_indirect() -> impl Strategy<Value = IndirectPredictorConfig> {
    (
        prop::sample::select((0usize..3).collect::<Vec<_>>()),
        prop::sample::select(vec![64u32, 256]),
        prop::sample::select(vec![1u32, 2, 4]), // ITTAGE table count
    )
        .prop_map(|(kind, entries, num_tables)| match kind {
            0 => IndirectPredictorConfig::BtbLastTarget,
            1 => IndirectPredictorConfig::GTarget {
                entries,
                history_bits: 8,
            },
            _ => IndirectPredictorConfig::Ittage {
                tagged_entries: entries,
                tag_bits: 8,
                num_tables,
                min_history: 2,
                max_history: 16,
            },
        })
}

/// A strategy over machine configurations stressing the event core's
/// moving parts: narrow and wide pipelines, windows from tiny (frequent
/// dispatch stalls) to large (deep wakeup wheels), shallow and deep
/// frontends (idle-gap lengths), scaled latencies (timer-wheel overflow
/// paths), and varying L1I line sizes (superblock segmentation — region
/// boundaries and batched fetch fills move with the line size).
fn arb_config() -> impl Strategy<Value = MachineConfig> {
    (
        prop::sample::select(vec![1u32, 2, 4, 8]),      // width
        prop::sample::select(vec![16u32, 32, 64, 256]), // window
        prop::sample::select(vec![1u32, 5, 12, 30]),    // frontend depth
        prop::sample::select(vec![1.0f64, 2.0, 5.0]),   // latency scale
        prop::sample::select(vec![16u32, 32, 64, 128]), // L1I line bytes
        arb_predictor(),
        arb_indirect(),
    )
        .prop_map(|(width, window, depth, lat, line, predictor, indirect)| {
            let d = HierarchyConfig::default();
            let l1i = CacheGeometry::new(
                d.l1i().size_bytes(),
                line,
                d.l1i().ways(),
                d.l1i().hit_latency(),
            )
            .expect("power-of-two line sizes keep the geometry valid");
            let caches = HierarchyConfig::new(l1i, d.l1d(), d.l2(), d.mem_latency())
                .expect("only the L1I line size changed");
            MachineConfigBuilder::new()
                .width(width)
                .window_size(window)
                .rob_size(window * 2)
                .frontend_depth(depth)
                .latencies(LatencyTable::default().scaled(lat))
                .caches(caches)
                .predictor(predictor)
                .indirect_predictor(indirect)
                .build()
                .expect("strategy only emits valid configs")
        })
}

proptest! {
    // Each case runs both engines over a few-thousand-op trace, so keep
    // the case count moderate; the space is re-sampled every CI run.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The event-driven engine and the reference engine agree bit-for-bit
    /// on the full `SimResult` — cycles, events, mispredict records, ROB
    /// histogram, cache hierarchy, everything `PartialEq` sees.
    #[test]
    fn engines_agree_on_random_triples(
        cfg in arb_config(),
        profile in arb_profile(),
        seed in 0u64..1000,
    ) {
        let trace = profile.generate(3_000, seed);
        let sim = Simulator::new(cfg);
        let event = sim.run_compiled(&trace.compile());
        let reference = sim.run_reference(&trace);
        prop_assert_eq!(event, reference);
    }

    /// Same equivalence with cache warmup enabled: the warmup boundary
    /// interacts with idle-cycle skipping (events before the boundary are
    /// dropped from the stats but still shape timing).
    #[test]
    fn engines_agree_under_warmup(
        cfg in arb_config(),
        profile in arb_profile(),
        seed in 0u64..1000,
    ) {
        let trace = profile.generate(3_000, seed);
        let sim = Simulator::with_options(cfg, SimOptions::with_warmup(1_000));
        let event = sim.run_compiled(&trace.compile());
        let reference = sim.run_reference(&trace);
        prop_assert_eq!(event, reference);
    }

    /// Run-to-run determinism of the event engine itself: rerunning the
    /// same compiled trace on the same simulator (scratch buffers now
    /// warm and recycled) changes nothing.
    #[test]
    fn event_engine_is_deterministic_across_reruns(
        profile in arb_profile(),
        seed in 0u64..1000,
    ) {
        let trace = profile.generate(2_000, seed);
        let ct = trace.compile();
        let sim = Simulator::new(presets::baseline_4wide());
        let first = sim.run_compiled(&ct);
        let second = sim.run_compiled(&ct);
        prop_assert_eq!(first, second);
    }

    /// Equivalence of the observability layer: with per-interval
    /// accounting enabled (and a warmup boundary slicing through it),
    /// both engines emit bit-identical `interval_records`, and the
    /// records obey the structural invariants the metrics pipeline
    /// relies on — contiguity, one branch record per mispredict record
    /// (with matching resolution/occupancy), refill pinned to the
    /// frontend depth, and commit cycles monotone within the run.
    #[test]
    fn engines_agree_on_interval_accounting(
        cfg in arb_config(),
        profile in arb_profile(),
        seed in 0u64..1000,
        warmup in prop::sample::select(vec![0u64, 500]),
    ) {
        use bmp_core::intervals::IntervalEventKind;

        let trace = profile.generate(3_000, seed);
        let sim = Simulator::with_options(cfg, SimOptions::with_warmup(warmup).intervals());
        let event = sim.run_compiled(&trace.compile());
        let reference = sim.run_reference(&trace);
        prop_assert_eq!(&event, &reference);

        let records = &event.interval_records;
        // Contiguity: each record's interval starts right after the
        // previous one ends (the warmup reset rebases `start`, but the
        // records themselves are cleared with it, so the chain holds).
        for pair in records.windows(2) {
            prop_assert_eq!(pair[1].start, pair[0].pos + 1);
            prop_assert!(pair[1].commit_cycle >= pair[0].commit_cycle);
        }
        for r in records {
            prop_assert!(r.pos >= r.start);
            prop_assert_eq!(r.penalty(), r.resolution + u64::from(r.refill));
        }
        // Branch-kind records are 1:1 (in order) with mispredict
        // records, and carry the same resolution and occupancy.
        let bmiss: Vec<_> = records
            .iter()
            .filter(|r| r.kind == IntervalEventKind::BranchMispredict)
            .collect();
        prop_assert_eq!(bmiss.len(), event.mispredicts.len());
        for (r, m) in bmiss.iter().zip(&event.mispredicts) {
            prop_assert_eq!(r.pos, m.branch_idx as u64);
            prop_assert_eq!(r.resolution, m.resolve_cycle.saturating_sub(m.dispatch_cycle));
            prop_assert_eq!(r.occupancy, m.window_occupancy);
            prop_assert_eq!(u64::from(r.refill), u64::from(event.frontend_depth));
        }
    }
}
