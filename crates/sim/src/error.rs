//! Structured simulation failures.
//!
//! The simulator is a terminating algorithm on well-formed inputs, but a
//! pathological [`MachineConfig`](bmp_uarch::MachineConfig) (or a bug in
//! an engine) can keep a run from committing instructions while the
//! clock advances without bound. The cycle-budget watchdog turns that
//! failure mode from a hung worker thread into a structured
//! [`SimError::BudgetExceeded`] carrying enough forensic state to see
//! *where* the machine was stuck.

use std::fmt;

/// Machine state captured at the moment a run aborts, so a failure
/// report can show where the pipeline was stuck without re-running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetForensics {
    /// The cycle budget the run was allowed (see
    /// [`SimOptions::cycle_budget`](crate::SimOptions::cycle_budget)).
    pub budget: u64,
    /// The cycle the run stopped at (always equal to `budget`).
    pub cycle: u64,
    /// Instructions committed when the budget tripped.
    pub committed: u64,
    /// Total instructions in the trace (the run needed all of them).
    pub trace_ops: u64,
    /// Instructions fetched when the budget tripped.
    pub fetched: u64,
    /// ROB occupancy (dispatched, uncommitted instructions) at the stop.
    pub window_occupancy: u32,
}

/// A simulation that could not produce a [`SimResult`](crate::SimResult).
///
/// Both engines produce *identical* errors for the same
/// `(config, options, trace)` — the forensic snapshot is part of the
/// engine-equivalence contract, and the equivalence suite asserts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The cycle-budget watchdog fired: the run reached its cycle budget
    /// with instructions still uncommitted.
    BudgetExceeded(BudgetForensics),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded(s) => write!(
                f,
                "cycle budget exceeded: {} cycles elapsed with {}/{} instructions \
                 committed ({} fetched, window occupancy {})",
                s.cycle, s.committed, s.trace_ops, s.fetched, s.window_occupancy
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_forensics() {
        let e = SimError::BudgetExceeded(BudgetForensics {
            budget: 100,
            cycle: 100,
            committed: 7,
            trace_ops: 50,
            fetched: 12,
            window_occupancy: 5,
        });
        let s = e.to_string();
        assert!(s.contains("100 cycles"));
        assert!(s.contains("7/50"));
        assert!(s.contains("occupancy 5"));
    }
}
