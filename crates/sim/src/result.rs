//! Simulation outputs: aggregate results, miss events and
//! per-misprediction penalty records.

use bmp_branch::BranchStats;
use bmp_cache::HierarchyStats;
use serde::{Deserialize, Serialize};

/// The kinds of interval-terminating miss events distinguished by
/// interval analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissEventKind {
    /// A mispredicted conditional branch (or a return with a wrong RAS
    /// target).
    BranchMispredict,
    /// An L1 instruction-cache miss that was served by the L2.
    ICacheMiss,
    /// An instruction fetch that went to memory.
    ICacheLongMiss,
    /// A load that went to memory (long data miss).
    LongDCacheMiss,
}

impl MissEventKind {
    /// Short label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            MissEventKind::BranchMispredict => "bmiss",
            MissEventKind::ICacheMiss => "il1",
            MissEventKind::ICacheLongMiss => "il2",
            MissEventKind::LongDCacheMiss => "dlong",
        }
    }
}

/// One miss event, positioned both in the instruction stream and in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissEvent {
    /// The dynamic-instruction index the event is attached to (the
    /// mispredicted branch, the instruction whose fetch missed, or the
    /// long-missing load).
    pub trace_idx: usize,
    /// Cycle at which the event was observed.
    pub cycle: u64,
    /// What happened.
    pub kind: MissEventKind,
}

/// Everything measured about one branch misprediction.
///
/// The paper's penalty definition is
/// `penalty = resolution + frontend refill`: [`resolution`] is measured
/// directly, and the refill component equals the configured frontend
/// depth.
///
/// [`resolution`]: MispredictRecord::resolution
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MispredictRecord {
    /// Dynamic index of the mispredicted branch.
    pub branch_idx: usize,
    /// Cycle the branch was fetched.
    pub fetch_cycle: u64,
    /// Cycle the branch dispatched into the window.
    pub dispatch_cycle: u64,
    /// Cycle the branch finished executing; fetch redirects here.
    pub resolve_cycle: u64,
    /// Number of instructions in flight (ROB occupancy, the branch
    /// included) when the branch dispatched — the window-occupancy input
    /// to contributor (ii).
    pub window_occupancy: u32,
}

impl MispredictRecord {
    /// The branch resolution time: dispatch-to-execute, the window-drain
    /// component of the penalty.
    pub fn resolution(&self) -> u64 {
        self.resolve_cycle.saturating_sub(self.dispatch_cycle)
    }

    /// The full penalty under the paper's definition, given the machine's
    /// frontend depth.
    pub fn penalty(&self, frontend_depth: u32) -> u64 {
        self.resolution() + u64::from(frontend_depth)
    }
}

/// Where the machine's dispatch slots went — the lost-slot accounting
/// that complements the interval model's CPI stack.
///
/// Every cycle offers `dispatch_width` slots; each is either used or
/// charged to the resource that blocked it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotAccounting {
    /// Slots that dispatched an instruction.
    pub used: u64,
    /// Slots lost because the frontend had nothing deliverable (fetch
    /// stalled on a miss or redirect, or the pipe is refilling).
    pub frontend_starved: u64,
    /// Slots lost to a full reorder buffer (typically a long D-miss at
    /// the head).
    pub rob_full: u64,
    /// Slots lost to a full issue window (backlog of un-issued work).
    pub window_full: u64,
}

impl SlotAccounting {
    /// Total slots offered.
    pub fn total(&self) -> u64 {
        self.used + self.frontend_starved + self.rob_full + self.window_full
    }

    /// Fraction of slots used (0 when no slots were offered).
    pub fn utilization(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.used as f64 / t as f64
        }
    }
}

/// Why the fetch unit was not delivering, cycle by cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchAccounting {
    /// Cycles fetch waited for a mispredicted branch to resolve.
    pub redirect_wait: u64,
    /// Cycles fetch was stalled on an I-cache miss or a BTB bubble.
    pub stall: u64,
}

/// Per-operation-class issue accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassIssueStats {
    /// Instructions of this class issued.
    pub issued: u64,
    /// Summed dispatch-to-issue wait cycles.
    pub wait_cycles: u64,
}

impl ClassIssueStats {
    /// Mean cycles an instruction of this class waited in the window
    /// before issuing (0 when none issued).
    pub fn mean_wait(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.wait_cycles as f64 / self.issued as f64
        }
    }
}

/// Aggregate outcome of one simulation run.
///
/// Derives `PartialEq` so the compiled/event-driven engine can be checked
/// field-for-field against the reference engine (see
/// `tests/engine_equivalence.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Conditional-branch prediction accounting.
    pub branch_stats: BranchStats,
    /// Cache-hierarchy accounting.
    pub hierarchy: HierarchyStats,
    /// Every miss event, in trace order.
    pub events: Vec<MissEvent>,
    /// One record per branch misprediction, in trace order.
    pub mispredicts: Vec<MispredictRecord>,
    /// Per-interval cycle accounting, when requested via
    /// [`SimOptions::collect_intervals`](crate::SimOptions): one record
    /// per miss-event interval, emitted at commit boundaries, in commit
    /// order. Empty when collection is off. Part of the engine
    /// bit-equivalence contract (see `docs/OBSERVABILITY.md`).
    pub interval_records: Vec<bmp_core::IntervalRecord>,
    /// Per-cycle dispatch counts, when requested via
    /// [`SimOptions::record_dispatch_timeline`](crate::SimOptions).
    pub dispatch_timeline: Option<Vec<u8>>,
    /// Frontend depth of the simulated machine (echoed so penalty
    /// computations need no separate config handle).
    pub frontend_depth: u32,
    /// Dispatch-slot accounting.
    pub slots: SlotAccounting,
    /// Fetch-blockage accounting.
    pub fetch: FetchAccounting,
    /// Histogram of ROB occupancy sampled once per cycle:
    /// `rob_occupancy[n]` counts cycles with exactly `n` instructions in
    /// flight. Length is `rob_size + 1`.
    pub rob_occupancy: Vec<u64>,
    /// Per-class issue statistics, indexed by
    /// [`OpClass::index`](bmp_uarch::OpClass::index).
    pub class_issue: [ClassIssueStats; 9],
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Mean branch resolution time over all mispredictions, or `None`
    /// when the run had none.
    pub fn mean_resolution(&self) -> Option<f64> {
        if self.mispredicts.is_empty() {
            return None;
        }
        let sum: u64 = self.mispredicts.iter().map(|m| m.resolution()).sum();
        Some(sum as f64 / self.mispredicts.len() as f64)
    }

    /// Mean full misprediction penalty (resolution + frontend refill), or
    /// `None` when the run had none.
    pub fn mean_penalty(&self) -> Option<f64> {
        self.mean_resolution()
            .map(|r| r + f64::from(self.frontend_depth))
    }

    /// Summed branch resolution time over all mispredictions — the exact
    /// integer total the static-bounds envelope brackets (see
    /// `docs/STATIC_ANALYSIS.md`).
    pub fn resolution_total(&self) -> u64 {
        self.mispredicts.iter().map(|m| m.resolution()).sum()
    }

    /// Summed frontend-refill cycles over all mispredictions. Exactly
    /// `mispredicts × frontend_depth` — every redirect refills the full
    /// pipe.
    pub fn refill_total(&self) -> u64 {
        self.mispredicts.len() as u64 * u64::from(self.frontend_depth)
    }

    /// Mean ROB occupancy over all simulated cycles (0 for an empty run).
    pub fn mean_rob_occupancy(&self) -> f64 {
        let cycles: u64 = self.rob_occupancy.iter().sum();
        if cycles == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .rob_occupancy
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        weighted as f64 / cycles as f64
    }

    /// Fraction of cycles the ROB was completely full.
    pub fn rob_full_fraction(&self) -> f64 {
        let cycles: u64 = self.rob_occupancy.iter().sum();
        if cycles == 0 {
            return 0.0;
        }
        self.rob_occupancy.last().copied().unwrap_or(0) as f64 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dispatch: u64, resolve: u64) -> MispredictRecord {
        MispredictRecord {
            branch_idx: 0,
            fetch_cycle: dispatch.saturating_sub(5),
            dispatch_cycle: dispatch,
            resolve_cycle: resolve,
            window_occupancy: 10,
        }
    }

    #[test]
    fn resolution_and_penalty() {
        let r = record(100, 112);
        assert_eq!(r.resolution(), 12);
        assert_eq!(r.penalty(5), 17);
    }

    #[test]
    fn result_rates() {
        let res = SimResult {
            cycles: 500,
            instructions: 1000,
            branch_stats: BranchStats::default(),
            hierarchy: HierarchyStats::default(),
            events: vec![],
            mispredicts: vec![record(10, 20), record(50, 54)],
            dispatch_timeline: None,
            interval_records: vec![],
            frontend_depth: 5,
            slots: SlotAccounting::default(),
            fetch: FetchAccounting::default(),
            rob_occupancy: vec![0; 129],
            class_issue: [ClassIssueStats::default(); 9],
        };
        assert!((res.ipc() - 2.0).abs() < 1e-12);
        assert!((res.cpi() - 0.5).abs() < 1e-12);
        assert!((res.mean_resolution().unwrap() - 7.0).abs() < 1e-12);
        assert!((res.mean_penalty().unwrap() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_yields_none() {
        let res = SimResult {
            cycles: 0,
            instructions: 0,
            branch_stats: BranchStats::default(),
            hierarchy: HierarchyStats::default(),
            events: vec![],
            mispredicts: vec![],
            dispatch_timeline: None,
            interval_records: vec![],
            frontend_depth: 5,
            slots: SlotAccounting::default(),
            fetch: FetchAccounting::default(),
            rob_occupancy: vec![],
            class_issue: [ClassIssueStats::default(); 9],
        };
        assert_eq!(res.ipc(), 0.0);
        assert_eq!(res.cpi(), 0.0);
        assert!(res.mean_resolution().is_none());
        assert!(res.mean_penalty().is_none());
    }

    #[test]
    fn occupancy_statistics() {
        let mut res = SimResult {
            cycles: 10,
            instructions: 10,
            branch_stats: BranchStats::default(),
            hierarchy: HierarchyStats::default(),
            events: vec![],
            mispredicts: vec![],
            dispatch_timeline: None,
            interval_records: vec![],
            frontend_depth: 5,
            slots: SlotAccounting::default(),
            fetch: FetchAccounting::default(),
            rob_occupancy: vec![0; 5],
            class_issue: [ClassIssueStats::default(); 9],
        };
        // 4 cycles at occupancy 0, 4 at 2, 2 at 4 (full).
        res.rob_occupancy[0] = 4;
        res.rob_occupancy[2] = 4;
        res.rob_occupancy[4] = 2;
        assert!((res.mean_rob_occupancy() - 1.6).abs() < 1e-12);
        assert!((res.rob_full_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn class_issue_mean_wait() {
        let s = ClassIssueStats {
            issued: 4,
            wait_cycles: 10,
        };
        assert!((s.mean_wait() - 2.5).abs() < 1e-12);
        assert_eq!(ClassIssueStats::default().mean_wait(), 0.0);
    }

    #[test]
    fn slot_accounting_rates() {
        let s = SlotAccounting {
            used: 50,
            frontend_starved: 30,
            rob_full: 15,
            window_full: 5,
        };
        assert_eq!(s.total(), 100);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(SlotAccounting::default().utilization(), 0.0);
    }

    #[test]
    fn event_labels() {
        assert_eq!(MissEventKind::BranchMispredict.label(), "bmiss");
        assert_eq!(MissEventKind::LongDCacheMiss.label(), "dlong");
    }
}
