//! Cycle-level out-of-order superscalar simulator.
//!
//! This is the measurement substrate of the reproduction: a trace-driven
//! model of a pipelined superscalar processor with
//!
//! * a fetch unit with I-cache, direction predictor, BTB and RAS,
//! * an `frontend_depth`-cycle frontend pipe between fetch and dispatch
//!   (contributor i of the misprediction penalty),
//! * a dispatch stage bounded by ROB and issue-window occupancy,
//! * oldest-first issue constrained by functional-unit pools and
//!   latencies (contributor iv), with loads resolved by the cache
//!   hierarchy (contributor v and the long-miss events),
//! * in-order commit.
//!
//! Because the trace is correct-path-only, a misprediction is modeled
//! exactly as interval analysis describes it: the frontend stops
//! delivering useful instructions at the mispredicted branch, the window
//! drains until the branch executes (the *resolution time*), then fetch
//! redirects and the frontend refills. Per-misprediction
//! [`MispredictRecord`]s capture dispatch, resolution and window occupancy
//! so the five penalty contributors can be read directly off the run.
//!
//! # Examples
//!
//! ```
//! use bmp_sim::Simulator;
//! use bmp_uarch::presets;
//! use bmp_workloads::micro;
//! use bmp_uarch::OpClass;
//!
//! let trace = micro::chain_kernel(2_000, 4, 64, OpClass::IntAlu);
//! let result = Simulator::new(presets::baseline_4wide()).run(&trace);
//! assert_eq!(result.instructions, 2_000);
//! assert!(result.ipc() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod engine;
mod error;
mod options;
mod reference;
mod result;
mod sched;

pub use engine::{reference_engine_forced, RunPhases, Simulator};
pub use error::{BudgetForensics, SimError};
pub use options::SimOptions;
pub use result::{
    ClassIssueStats, FetchAccounting, MispredictRecord, MissEvent, MissEventKind, SimResult,
    SlotAccounting,
};
